#include "net/poller.h"

#include <errno.h>
#include <poll.h>
#include <string.h>

namespace auditgame::net {

void Poller::Watch(int fd, bool read, bool write) {
  interest_[fd] = Interest{read, write};
}

void Poller::Forget(int fd) { interest_.erase(fd); }

util::StatusOr<std::vector<PollEvent>> Poller::Wait(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, interest] : interest_) {
    pollfd p;
    p.fd = fd;
    p.events = 0;
    if (interest.read) p.events |= POLLIN;
    if (interest.write) p.events |= POLLOUT;
    p.revents = 0;
    fds.push_back(p);
  }

  int ready;
  do {
    ready = ::poll(fds.data(), fds.size(), timeout_ms);
    // Retry on EINTR rather than reporting an empty set: callers treat an
    // empty result as "nothing is pending" (the audit server's drain uses
    // it as the exit proof), which a signal interruption is not. Wakeups
    // that must interrupt the wait go through a watched pipe instead.
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) {
    return util::InternalError("poll: " + std::string(strerror(errno)));
  }

  std::vector<PollEvent> events;
  if (ready == 0) return events;
  events.reserve(static_cast<size_t>(ready));
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    PollEvent event;
    event.fd = p.fd;
    event.readable = (p.revents & POLLIN) != 0;
    event.writable = (p.revents & POLLOUT) != 0;
    event.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    events.push_back(event);
  }
  return events;
}

}  // namespace auditgame::net
