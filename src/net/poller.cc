#include "net/poller.h"

#include <errno.h>
#include <poll.h>
#include <string.h>

#include <map>

#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#define AUDITGAME_HAVE_EPOLL 1
#endif

namespace auditgame::net {

namespace {

/// Portable poll(2) backend: rebuilds the pollfd array per wait, O(n) in
/// the watched-set size. Fine for hundreds of descriptors; the reference
/// semantics the epoll backend must match.
class PollPoller final : public Poller {
 public:
  void Watch(int fd, bool read, bool write) override {
    interest_[fd] = Interest{read, write};
  }

  void Forget(int fd) override { interest_.erase(fd); }

  size_t watched() const override { return interest_.size(); }

  util::StatusOr<std::vector<PollEvent>> Wait(int timeout_ms) override {
    std::vector<pollfd> fds;
    fds.reserve(interest_.size());
    for (const auto& [fd, interest] : interest_) {
      pollfd p;
      p.fd = fd;
      p.events = 0;
      if (interest.read) p.events |= POLLIN;
      if (interest.write) p.events |= POLLOUT;
      p.revents = 0;
      fds.push_back(p);
    }

    int ready;
    do {
      ready = ::poll(fds.data(), fds.size(), timeout_ms);
      // Retry on EINTR rather than reporting an empty set: callers treat an
      // empty result as "nothing is pending" (the audit server's drain uses
      // it as the exit proof), which a signal interruption is not. Wakeups
      // that must interrupt the wait go through a watched descriptor.
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      return util::InternalError("poll: " + std::string(strerror(errno)));
    }

    std::vector<PollEvent> events;
    if (ready == 0) return events;
    events.reserve(static_cast<size_t>(ready));
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      PollEvent event;
      event.fd = p.fd;
      event.readable = (p.revents & POLLIN) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      event.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      events.push_back(event);
    }
    return events;
  }

  const char* backend_name() const override { return "poll"; }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };
  std::map<int, Interest> interest_;
};

#ifdef AUDITGAME_HAVE_EPOLL

/// Linux epoll backend, level-triggered (no EPOLLET) so its semantics are
/// interchangeable with poll(2): a ready descriptor keeps reporting until
/// drained, and a missed wakeup costs one loop iteration, never a stall.
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}

  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  void Watch(int fd, bool read, bool write) override {
    epoll_event ev;
    ev.events = 0;
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    const bool known = interest_.count(fd) != 0;
    if (::epoll_ctl(epfd_, known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev) ==
        0) {
      interest_.emplace(fd, 0);
      return;
    }
    // The kernel's view can disagree with ours after an fd was closed and
    // its number reused (close() silently deregisters); retry with the
    // opposite op before giving up.
    if (::epoll_ctl(epfd_, known ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd, &ev) ==
        0) {
      interest_.emplace(fd, 0);
    }
  }

  void Forget(int fd) override {
    if (interest_.erase(fd) == 0) return;
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  size_t watched() const override { return interest_.size(); }

  util::StatusOr<std::vector<PollEvent>> Wait(int timeout_ms) override {
    epoll_event ready[256];
    int n;
    do {
      n = ::epoll_wait(epfd_, ready, 256, timeout_ms);
    } while (n < 0 && errno == EINTR);  // same EINTR contract as poll
    if (n < 0) {
      return util::InternalError("epoll_wait: " +
                                 std::string(strerror(errno)));
    }
    std::vector<PollEvent> events;
    events.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollEvent event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.hangup = (ready[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      events.push_back(event);
    }
    return events;
  }

  const char* backend_name() const override { return "epoll"; }

 private:
  int epfd_ = -1;
  /// fds we believe the kernel is watching (epoll needs ADD vs MOD).
  std::map<int, int> interest_;
};

#endif  // AUDITGAME_HAVE_EPOLL

}  // namespace

std::unique_ptr<Poller> MakePoller(PollerBackend backend) {
#ifdef AUDITGAME_HAVE_EPOLL
  if (backend == PollerBackend::kDefault || backend == PollerBackend::kEpoll) {
    return std::make_unique<EpollPoller>();
  }
#else
  if (backend == PollerBackend::kEpoll) return nullptr;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace auditgame::net
