#include "net/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace auditgame::net {

util::StatusOr<FrameClient> FrameClient::Connect(const std::string& host,
                                                 uint16_t port,
                                                 int connect_wait_ms,
                                                 size_t max_frame_payload) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(connect_wait_ms);
  for (;;) {
    auto sock = ConnectTcp(host, port);
    if (sock.ok()) {
      return FrameClient(std::move(sock).value(), max_frame_payload);
    }
    // Only transient refusals (listener not up yet) are worth retrying; a
    // malformed address can never start succeeding.
    if (sock.status().code() == util::StatusCode::kInvalidArgument) {
      return sock.status();
    }
    if (std::chrono::steady_clock::now() >= deadline) return sock.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

util::Status FrameClient::SetReceiveTimeout(int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(socket_.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return util::InternalError("setsockopt(SO_RCVTIMEO): " +
                               std::string(strerror(errno)));
  }
  return util::OkStatus();
}

util::Status FrameClient::Send(std::string_view payload) {
  if (!broken_.ok()) return broken_;
  const std::string frame = EncodeFrame(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(socket_.fd(), frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::InternalError("send: " + std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return util::OkStatus();
}

void FrameClient::QueueSend(std::string_view payload) {
  send_buffer_ += EncodeFrame(payload);
}

util::Status FrameClient::FlushSends() {
  if (!broken_.ok()) return broken_;
  size_t sent = 0;
  while (sent < send_buffer_.size()) {
    const ssize_t n = ::send(socket_.fd(), send_buffer_.data() + sent,
                             send_buffer_.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      send_buffer_.erase(0, sent);
      return util::InternalError("send: " + std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  send_buffer_.clear();
  return util::OkStatus();
}

util::StatusOr<bool> FrameClient::ReceiveBuffered(std::string* payload) {
  if (!broken_.ok()) return broken_;
  auto next = decoder_.Next(payload);
  if (!next.ok()) {
    broken_ = next.status();
    return broken_;
  }
  return *next;
}

util::StatusOr<std::string> FrameClient::Receive() {
  if (!broken_.ok()) return broken_;
  const auto fail = [this](std::string message) {
    // Sticky: after a timeout the response may still arrive later, and
    // returning it for the *next* request would silently desynchronize
    // the request/response pairing. The connection is done.
    broken_ = util::InternalError(std::move(message));
    return broken_;
  };
  for (;;) {
    std::string payload;
    auto next = decoder_.Next(&payload);
    if (!next.ok()) return fail(next.status().message());
    if (*next) return payload;

    char chunk[16 * 1024];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      decoder_.Append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return fail("connection closed mid-response");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return fail("receive timed out");
    }
    return fail("recv: " + std::string(strerror(errno)));
  }
}

util::StatusOr<std::string> FrameClient::Call(std::string_view payload) {
  RETURN_IF_ERROR(Send(payload));
  return Receive();
}

}  // namespace auditgame::net
