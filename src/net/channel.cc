#include "net/channel.h"

#include <errno.h>
#include <sys/socket.h>

#include <algorithm>
#include <utility>

namespace auditgame::net {

namespace {
/// Idle loop granularity: bounds how stale the shutdown flag and delayed-
/// frame due times can get if a wake notification is lost.
constexpr int kPumpPollMs = 250;
constexpr size_t kReadChunk = 64 * 1024;

int MillisUntil(std::chrono::steady_clock::time_point now,
                std::chrono::steady_clock::time_point when) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(when - now)
          .count();
  return ms < 0 ? 0 : static_cast<int>(std::min<int64_t>(ms, kPumpPollMs));
}
}  // namespace

FrameChannel::FrameChannel(std::string host, uint16_t port,
                           FrameChannelOptions options, Events events)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      events_(std::move(events)) {
  if (options_.window < 1) options_.window = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (options_.reconnect_backoff_min_ms < 1)
    options_.reconnect_backoff_min_ms = 1;
  if (options_.reconnect_backoff_max_ms < options_.reconnect_backoff_min_ms)
    options_.reconnect_backoff_max_ms = options_.reconnect_backoff_min_ms;
}

FrameChannel::~FrameChannel() {
  BeginShutdown();
  Join();
}

util::Status FrameChannel::Start() {
  if (thread_.joinable()) {
    return util::FailedPreconditionError("already started");
  }
  ASSIGN_OR_RETURN(wake_, WakeChannel::Make());
  if (!MakePoller(options_.poller_backend)) {
    return util::InvalidArgumentError(
        "requested poller backend unavailable on this platform");
  }
  thread_ = std::thread([this] { Run(); });
  return util::OkStatus();
}

FrameChannel::Submit FrameChannel::TrySubmit(std::string payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || !connected_) {
      rejected_down_.fetch_add(1, std::memory_order_relaxed);
      return Submit::kDown;
    }
    if (accepted_unanswered_ >= options_.queue_capacity) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      return Submit::kFull;
    }
    ++accepted_unanswered_;
    outstanding_.store(static_cast<int64_t>(accepted_unanswered_),
                       std::memory_order_relaxed);
    inbox_.push_back(std::move(payload));
  }
  wake_.Notify();
  return Submit::kAccepted;
}

FrameChannel::Submit FrameChannel::TrySubmitAfter(std::string payload,
                                                  int delay_ms) {
  if (delay_ms <= 0) return TrySubmit(std::move(payload));
  const auto due =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(delay_ms);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || !connected_) {
      rejected_down_.fetch_add(1, std::memory_order_relaxed);
      return Submit::kDown;
    }
    if (accepted_unanswered_ >= options_.queue_capacity) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      return Submit::kFull;
    }
    ++accepted_unanswered_;
    outstanding_.store(static_cast<int64_t>(accepted_unanswered_),
                       std::memory_order_relaxed);
    delayed_.push_back(DelayedFrame{std::move(payload), due});
  }
  wake_.Notify();
  return Submit::kAccepted;
}

void FrameChannel::BeginShutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.Notify();
}

void FrameChannel::Join() {
  if (thread_.joinable()) thread_.join();
}

void FrameChannel::DropOutstanding() {
  size_t dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dropped = accepted_unanswered_;
    accepted_unanswered_ = 0;
    outstanding_.store(0, std::memory_order_relaxed);
    inbox_.clear();
    delayed_.clear();
  }
  pending_.clear();
  in_flight_.clear();
  write_buffer_.clear();
  dropped_on_disconnect_.fetch_add(static_cast<int64_t>(dropped),
                                   std::memory_order_relaxed);
}

void FrameChannel::Run() {
  auto poller = MakePoller(options_.poller_backend);
  if (!poller) return;  // checked in Start(); kDefault never fails
  poller->Watch(wake_.read_fd(), /*read=*/true, /*write=*/false);

  int backoff_ms = options_.reconnect_backoff_min_ms;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) break;
    }
    auto socket = ConnectTcp(host_, port_);
    if (!socket.ok()) {
      // Backoff, interruptible by BeginShutdown's wake.
      auto events = poller->Wait(backoff_ms);
      if (events.ok()) {
        for (const PollEvent& event : *events) {
          if (event.fd == wake_.read_fd()) wake_.Drain();
        }
      }
      backoff_ms =
          std::min(backoff_ms * 2, options_.reconnect_backoff_max_ms);
      continue;
    }
    if (!SetNonBlocking(socket->fd()).ok()) continue;
    (void)SetNoDelay(socket->fd());
    backoff_ms = options_.reconnect_backoff_min_ms;
    connects_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      connected_ = true;
    }
    up_.store(true, std::memory_order_release);
    if (events_.on_state) events_.on_state(true);

    PumpConnection(std::move(*socket), *poller);

    up_.store(false, std::memory_order_release);
    bool shutting_down;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      connected_ = false;
      shutting_down = shutdown_;
    }
    DropOutstanding();
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    if (events_.on_state) events_.on_state(false);
    if (shutting_down) break;
    // Reconnect immediately: a refused connect falls into the backoff
    // path above on its own.
  }
}

void FrameChannel::PumpConnection(Socket socket, Poller& poller) {
  FrameDecoder decoder(options_.max_frame_payload);
  poller.Watch(socket.fd(), /*read=*/true, /*write=*/false);
  bool write_interest = false;
  std::vector<std::string> received;

  for (;;) {
    bool dead = false;

    // Intake: adopt fresh submissions and due retries under the lock, and
    // learn the next retry due time and the shutdown flag while there.
    std::chrono::steady_clock::time_point next_due{};
    bool have_due = false;
    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) {
        poller.Forget(socket.fd());
        return;
      }
      while (!inbox_.empty()) {
        pending_.push_back(std::move(inbox_.front()));
        inbox_.pop_front();
      }
      for (size_t i = 0; i < delayed_.size();) {
        if (delayed_[i].due <= now) {
          pending_.push_back(std::move(delayed_[i].payload));
          delayed_[i] = std::move(delayed_.back());
          delayed_.pop_back();
        } else {
          if (!have_due || delayed_[i].due < next_due) {
            next_due = delayed_[i].due;
            have_due = true;
          }
          ++i;
        }
      }
    }

    // Top up the wire to the window and flush what the socket accepts.
    while (in_flight_.size() < static_cast<size_t>(options_.window) &&
           !pending_.empty()) {
      write_buffer_ += EncodeFrame(pending_.front());
      pending_.pop_front();
      in_flight_.push_back(now);
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
    }
    while (!write_buffer_.empty()) {
      const ssize_t n = ::send(socket.fd(), write_buffer_.data(),
                               write_buffer_.size(), MSG_NOSIGNAL);
      if (n > 0) {
        write_buffer_.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      dead = true;
      break;
    }
    if (dead) {
      poller.Forget(socket.fd());
      return;
    }
    if (write_buffer_.empty() == write_interest) {
      write_interest = !write_buffer_.empty();
      poller.Watch(socket.fd(), /*read=*/true, write_interest);
    }

    int timeout_ms = kPumpPollMs;
    if (!in_flight_.empty()) {
      timeout_ms = std::min(
          timeout_ms,
          MillisUntil(now, in_flight_.front() + std::chrono::milliseconds(
                                                    options_.response_timeout_ms)));
    }
    if (have_due) timeout_ms = std::min(timeout_ms, MillisUntil(now, next_due));

    auto events = poller.Wait(timeout_ms);
    if (!events.ok()) {
      poller.Forget(socket.fd());
      return;
    }
    received.clear();
    for (const PollEvent& event : *events) {
      if (event.fd == wake_.read_fd()) {
        wake_.Drain();
        continue;
      }
      if (event.fd != socket.fd()) continue;
      if (event.readable || event.hangup) {
        // Drain the kernel buffer even on hangup: responses written before
        // the peer died are still answers.
        char buf[kReadChunk];
        for (;;) {
          const ssize_t n = ::recv(socket.fd(), buf, sizeof(buf), 0);
          if (n > 0) {
            decoder.Append(buf, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          dead = true;  // EOF or socket error
          break;
        }
        std::string payload;
        for (;;) {
          auto next = decoder.Next(&payload);
          if (!next.ok()) {  // oversized frame: stream unusable
            dead = true;
            break;
          }
          if (!*next) break;
          received.push_back(std::move(payload));
        }
      }
    }

    if (!received.empty()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const size_t settled =
            std::min(received.size(), accepted_unanswered_);
        accepted_unanswered_ -= settled;
        outstanding_.store(static_cast<int64_t>(accepted_unanswered_),
                           std::memory_order_relaxed);
      }
      for (size_t i = 0; i < received.size() && !in_flight_.empty(); ++i) {
        in_flight_.pop_front();
      }
      frames_received_.fetch_add(static_cast<int64_t>(received.size()),
                                 std::memory_order_relaxed);
      // No locks held: on_frame may re-enter TrySubmit.
      if (events_.on_frame) {
        for (std::string& frame : received) {
          events_.on_frame(std::move(frame));
        }
      }
      received.clear();
    }

    if (!dead && !in_flight_.empty() &&
        std::chrono::steady_clock::now() - in_flight_.front() >=
            std::chrono::milliseconds(options_.response_timeout_ms)) {
      response_timeouts_.fetch_add(1, std::memory_order_relaxed);
      dead = true;
    }
    if (dead) {
      poller.Forget(socket.fd());
      return;
    }
  }
}

}  // namespace auditgame::net
