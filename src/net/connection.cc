#include "net/connection.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

namespace auditgame::net {

util::StatusOr<bool> Connection::ReadFrames(std::vector<std::string>* frames) {
  char chunk[16 * 1024];
  bool open = true;
  for (;;) {
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      decoder_.Append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // orderly peer close
      open = false;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    open = false;  // ECONNRESET and friends
    break;
  }

  // Drain every complete frame buffered so far, even when the peer already
  // closed — pipelined requests before a half-close still deserve answers.
  for (;;) {
    std::string payload;
    auto next = decoder_.Next(&payload);
    // Framing violation (oversized frame): the caller drops the connection.
    if (!next.ok()) return next.status();
    if (!*next) break;
    frames->push_back(std::move(payload));
  }
  return open;
}

bool Connection::QueueFrame(std::string_view payload) {
  const std::string frame = EncodeFrame(payload);
  if (write_buffer_.size() - write_offset_ + frame.size() >
      max_write_buffer_) {
    return false;
  }
  // Compact the flushed prefix before growing the buffer further.
  if (write_offset_ > 0 && write_offset_ * 2 >= write_buffer_.size()) {
    write_buffer_.erase(0, write_offset_);
    write_offset_ = 0;
  }
  write_buffer_ += frame;
  return true;
}

bool Connection::Flush() {
  while (wants_write()) {
    const ssize_t n =
        ::send(socket_.fd(), write_buffer_.data() + write_offset_,
               write_buffer_.size() - write_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      write_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET: peer is gone
  }
  if (!wants_write() && !write_buffer_.empty()) {
    write_buffer_.clear();
    write_offset_ = 0;
  }
  return true;
}

}  // namespace auditgame::net
