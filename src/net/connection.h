#ifndef AUDIT_GAME_NET_CONNECTION_H_
#define AUDIT_GAME_NET_CONNECTION_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::net {

/// One accepted, non-blocking connection: the socket plus its per-connection
/// read decoder and write buffer. The event loop calls ReadFrames() when the
/// fd polls readable and Flush() when it polls writable; both handle partial
/// transfers (short reads, EAGAIN mid-write) by construction.
///
/// Memory is bounded on both sides: the read side by the frame decoder's
/// payload cap, the write side by `max_write_buffer` — a peer that stops
/// reading while responses accumulate is disconnected rather than buffered
/// without limit (the server counts these as slow-consumer closes).
class Connection {
 public:
  Connection(Socket socket, size_t max_frame_payload,
             size_t max_write_buffer)
      : socket_(std::move(socket)),
        decoder_(max_frame_payload),
        max_write_buffer_(max_write_buffer) {}

  int fd() const { return socket_.fd(); }

  /// Reads everything currently available and appends each complete frame
  /// payload to *frames (possibly none). Returns false when the connection
  /// is finished — peer closed, fatal socket error, or a framing violation
  /// (oversized frame) — in which case the caller drops it. Frames decoded
  /// before the terminating condition are still delivered.
  util::StatusOr<bool> ReadFrames(std::vector<std::string>* frames);

  /// Queues one encoded response frame. Returns false when accepting it
  /// would exceed the write-buffer cap; the caller should close the
  /// connection (the peer is not consuming).
  bool QueueFrame(std::string_view payload);

  /// Writes as much buffered output as the socket accepts right now.
  /// Returns false on a fatal write error (EPIPE/ECONNRESET — the
  /// connection should be dropped).
  bool Flush();

  /// True while buffered output remains — the event loop's POLLOUT signal.
  bool wants_write() const { return write_offset_ < write_buffer_.size(); }

 private:
  Socket socket_;
  FrameDecoder decoder_;
  size_t max_write_buffer_;
  std::string write_buffer_;
  size_t write_offset_ = 0;
};

}  // namespace auditgame::net

#endif  // AUDIT_GAME_NET_CONNECTION_H_
