#ifndef AUDIT_GAME_NET_FRAME_H_
#define AUDIT_GAME_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::net {

/// Wire format of the audit-server protocol: each message is one frame —
/// a 4-byte big-endian payload length followed by that many bytes of UTF-8
/// JSON. Length-prefixing (rather than newline-delimiting) keeps the codec
/// independent of the payload's content, so pretty-printed JSON, embedded
/// newlines and binary-ish escapes all pass through unchanged.
///
/// The decoder enforces a hard payload cap: a peer announcing a frame
/// larger than the cap is a protocol violation (or an attack), and since
/// the stream cannot be resynchronized past an untrusted length word, the
/// error is sticky and the caller must drop the connection. Malformed
/// *JSON* inside a well-framed payload is NOT the codec's concern — the
/// server answers it with an error frame and keeps the connection (see
/// server/protocol.h).
constexpr size_t kFrameHeaderBytes = 4;
constexpr size_t kDefaultMaxFramePayload = 1 << 20;  // 1 MiB

/// Frames `payload` (header + bytes), ready to write to a socket.
std::string EncodeFrame(std::string_view payload);

/// Incremental decoder with partial-read handling: feed whatever the
/// socket produced with Append(), then drain complete frames with Next().
/// Bytes split anywhere — mid-header, mid-payload, several frames per
/// chunk — reassemble identically (frame_codec_test feeds one byte at a
/// time).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Buffers `size` bytes of raw stream data.
  void Append(const char* data, size_t size);
  void Append(std::string_view data) { Append(data.data(), data.size()); }

  /// On success: true and *payload filled if a complete frame was
  /// buffered, false if more bytes are needed. On a protocol violation
  /// (announced payload exceeds the cap) returns an error status; the
  /// decoder is then poisoned and every later call fails the same way.
  util::StatusOr<bool> Next(std::string* payload);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

  size_t max_payload() const { return max_payload_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;
  util::Status poisoned_ = util::OkStatus();
};

}  // namespace auditgame::net

#endif  // AUDIT_GAME_NET_FRAME_H_
