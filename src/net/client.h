#ifndef AUDIT_GAME_NET_CLIENT_H_
#define AUDIT_GAME_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/frame.h"
#include "net/socket.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::net {

/// Blocking frame client — the counterpart of the server's event loop for
/// callers that want simple request/response control flow: tools/loadgen's
/// per-tenant worker threads and the server tests. One FrameClient belongs
/// to one thread.
class FrameClient {
 public:
  /// Connects to a numeric IPv4 `host:port`, retrying for up to
  /// `connect_wait_ms` while the listener is not up yet (CI starts the
  /// server as a background process and races it).
  static util::StatusOr<FrameClient> Connect(
      const std::string& host, uint16_t port, int connect_wait_ms = 0,
      size_t max_frame_payload = kDefaultMaxFramePayload);

  /// Caps how long Receive() blocks waiting for bytes (0 = forever).
  util::Status SetReceiveTimeout(int timeout_ms);

  /// Writes one full frame (blocking until every byte is accepted).
  util::Status Send(std::string_view payload);

  /// Appends one frame to the local send buffer without touching the
  /// socket — pipelined callers queue a whole request window, then pay one
  /// FlushSends() syscall for all of it.
  void QueueSend(std::string_view payload);

  /// Writes every queued frame (blocking until the kernel accepted all of
  /// it). No-op when nothing is queued.
  util::Status FlushSends();

  size_t queued_send_bytes() const { return send_buffer_.size(); }

  /// Decodes one frame from bytes already buffered by a previous Receive()
  /// — never reads the socket, never blocks. Returns true with *payload
  /// filled, or false when draining the buffer needs more socket data.
  /// Pipelined callers drain buffered responses before topping the window
  /// up, so a burst of responses costs one recv(2), not one per frame.
  util::StatusOr<bool> ReceiveBuffered(std::string* payload);

  /// Blocks until one complete frame arrives; error on EOF, timeout, or a
  /// framing violation. Any such error breaks the client permanently: a
  /// timed-out response may still arrive (or sit half-buffered in the
  /// decoder), so a later Call() could pair it with the wrong request —
  /// every subsequent Send/Receive fails instead. Reconnect to recover.
  util::StatusOr<std::string> Receive();

  /// Send + Receive — one round trip.
  util::StatusOr<std::string> Call(std::string_view payload);

  int fd() const { return socket_.fd(); }

 private:
  FrameClient(Socket socket, size_t max_frame_payload)
      : socket_(std::move(socket)), decoder_(max_frame_payload) {}

  Socket socket_;
  FrameDecoder decoder_;
  std::string send_buffer_;
  /// Set on the first receive failure; sticky (see Receive()).
  util::Status broken_ = util::OkStatus();
};

}  // namespace auditgame::net

#endif  // AUDIT_GAME_NET_CLIENT_H_
