#include "net/frame.h"

#include <cstdlib>

namespace auditgame::net {

std::string EncodeFrame(std::string_view payload) {
  // A payload that does not fit the 4-byte length word cannot be framed;
  // truncating the length silently would desynchronize the stream, so an
  // impossible size is a programming error (every real payload is bounded
  // far lower by the decoder's cap).
  if (payload.size() > 0xffffffffu) std::abort();
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame.append(payload.data(), payload.size());
  return frame;
}

void FrameDecoder::Append(const char* data, size_t size) {
  buffer_.append(data, size);
}

util::StatusOr<bool> FrameDecoder::Next(std::string* payload) {
  if (!poisoned_.ok()) return poisoned_;
  if (buffered() < kFrameHeaderBytes) return false;

  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const uint32_t n = (static_cast<uint32_t>(h[0]) << 24) |
                     (static_cast<uint32_t>(h[1]) << 16) |
                     (static_cast<uint32_t>(h[2]) << 8) |
                     static_cast<uint32_t>(h[3]);
  if (n > max_payload_) {
    poisoned_ = util::ResourceExhaustedError(
        "frame payload of " + std::to_string(n) + " bytes exceeds the " +
        std::to_string(max_payload_) + "-byte cap");
    return poisoned_;
  }
  if (buffered() < kFrameHeaderBytes + n) return false;

  payload->assign(buffer_, consumed_ + kFrameHeaderBytes, n);
  consumed_ += kFrameHeaderBytes + n;
  // Compact once the dead prefix dominates, so a long-lived connection's
  // buffer stays proportional to its unconsumed bytes.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return true;
}

}  // namespace auditgame::net
