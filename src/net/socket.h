#ifndef AUDIT_GAME_NET_SOCKET_H_
#define AUDIT_GAME_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::net {

/// RAII owner of a file descriptor (socket or pipe end). Move-only; the
/// descriptor is closed on destruction. All networking in this project goes
/// through plain POSIX descriptors — no external dependencies — so the
/// serving stack builds anywhere the toolchain does.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

 private:
  int fd_ = -1;
};

/// Puts `fd` into non-blocking mode.
util::Status SetNonBlocking(int fd);

/// Disables Nagle's algorithm (the frames here are small request/response
/// pairs, so coalescing only adds latency). Failure is ignored by callers
/// that pass non-TCP descriptors.
util::Status SetNoDelay(int fd);

/// Creates a non-blocking TCP listener bound to `host:port` with
/// SO_REUSEADDR. `port` 0 binds an ephemeral port — read it back with
/// LocalPort(). `host` must be a numeric IPv4 address ("127.0.0.1",
/// "0.0.0.0"); name resolution is deliberately out of scope.
util::StatusOr<Socket> ListenTcp(const std::string& host, uint16_t port,
                                 int backlog = 128);

/// Blocking TCP connect to a numeric IPv4 `host:port` (the client side:
/// loadgen, tests). The returned socket stays blocking.
util::StatusOr<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Accepts every connection currently pending on the non-blocking
/// `listener`; returns an empty vector when none are pending. Accepted
/// sockets come back non-blocking with TCP_NODELAY set.
util::StatusOr<std::vector<Socket>> AcceptAll(const Socket& listener);

/// The locally bound port of a socket (after an ephemeral bind).
util::StatusOr<uint16_t> LocalPort(const Socket& socket);

/// A cross-thread wakeup channel: other threads (or a signal handler —
/// Notify() is one async-signal-safe write(2)) call Notify(), the owning
/// event loop watches read_fd() and calls Drain() when it polls readable.
/// Backed by eventfd(2) on Linux (one fd, one word, notifications coalesce
/// in the kernel) and a non-blocking pipe elsewhere; each reactor owns one,
/// replacing the single shared wake pipe of the one-loop server.
class WakeChannel {
 public:
  /// Invalid until assigned from Make() — Notify()/Drain() are no-ops.
  WakeChannel() = default;

  static util::StatusOr<WakeChannel> Make();

  /// The descriptor the event loop registers for read interest.
  int read_fd() const { return rx_.fd(); }

  bool valid() const { return rx_.valid(); }

  /// Wakes the owning loop. Async-signal-safe; a full channel already
  /// guarantees a pending wakeup, so the result is ignored.
  void Notify();

  /// Consumes pending notifications so the level-triggered poller stops
  /// reporting the channel readable.
  void Drain();

 private:
  WakeChannel(Socket rx, Socket tx) : rx_(std::move(rx)), tx_(std::move(tx)) {}

  Socket rx_;
  /// Pipe write end; invalid when rx_ is an eventfd (which is written and
  /// read through the same descriptor).
  Socket tx_;
};

}  // namespace auditgame::net

#endif  // AUDIT_GAME_NET_SOCKET_H_
