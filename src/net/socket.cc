#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/eventfd.h>
#endif

namespace auditgame::net {

namespace {

util::Status ErrnoError(const std::string& what) {
  return util::InternalError(what + ": " + std::string(strerror(errno)));
}

util::StatusOr<sockaddr_in> MakeAddress(const std::string& host,
                                        uint16_t port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::InvalidArgumentError("not a numeric IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoError("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoError("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return util::OkStatus();
}

util::Status SetNoDelay(int fd) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoError("setsockopt(TCP_NODELAY)");
  }
  return util::OkStatus();
}

util::StatusOr<Socket> ListenTcp(const std::string& host, uint16_t port,
                                 int backlog) {
  ASSIGN_OR_RETURN(const sockaddr_in addr, MakeAddress(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoError("socket");
  int one = 1;
  if (setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return ErrnoError("setsockopt(SO_REUSEADDR)");
  }
  if (bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return ErrnoError("bind " + host + ":" + std::to_string(port));
  }
  if (listen(sock.fd(), backlog) < 0) return ErrnoError("listen");
  RETURN_IF_ERROR(SetNonBlocking(sock.fd()));
  return sock;
}

util::StatusOr<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  ASSIGN_OR_RETURN(const sockaddr_in addr, MakeAddress(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoError("socket");
  int rc;
  do {
    rc = connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return ErrnoError("connect " + host + ":" + std::to_string(port));
  }
  // Best effort: a frame is one logical message, don't let Nagle delay it.
  (void)SetNoDelay(sock.fd());
  return sock;
}

util::StatusOr<std::vector<Socket>> AcceptAll(const Socket& listener) {
  std::vector<Socket> accepted;
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return ErrnoError("accept");
    }
    Socket sock(fd);
    RETURN_IF_ERROR(SetNonBlocking(sock.fd()));
    (void)SetNoDelay(sock.fd());
    accepted.push_back(std::move(sock));
  }
  return accepted;
}

util::StatusOr<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoError("getsockname");
  }
  return ntohs(addr.sin_port);
}

util::StatusOr<WakeChannel> WakeChannel::Make() {
#ifdef __linux__
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (efd >= 0) return WakeChannel(Socket(efd), Socket());
  // eventfd can fail only on fd exhaustion; the pipe below would too, but
  // fall through so both platforms share one error path.
#endif
  int fds[2];
  if (pipe(fds) < 0) return ErrnoError("pipe");
  Socket read_end(fds[0]);
  Socket write_end(fds[1]);
  RETURN_IF_ERROR(SetNonBlocking(read_end.fd()));
  RETURN_IF_ERROR(SetNonBlocking(write_end.fd()));
  return WakeChannel(std::move(read_end), std::move(write_end));
}

void WakeChannel::Notify() {
  if (tx_.valid()) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(tx_.fd(), &byte, 1);
    return;
  }
  if (rx_.valid()) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(rx_.fd(), &one, sizeof(one));
  }
}

void WakeChannel::Drain() {
  if (!rx_.valid()) return;
  char buf[256];
  while (::read(rx_.fd(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace auditgame::net
