#ifndef AUDIT_GAME_NET_CHANNEL_H_
#define AUDIT_GAME_NET_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "util/status.h"

namespace auditgame::net {

struct FrameChannelOptions {
  /// Max frames on the wire awaiting responses before submission queues.
  int window = 256;
  /// Total accepted-but-unanswered bound (queued + in flight); beyond it
  /// TrySubmit answers kFull — the channel's backpressure knob.
  size_t queue_capacity = 1024;
  /// No response for this long while requests are outstanding ⇒ the peer
  /// is wedged: drop the connection and let reconnect probe it. The
  /// caller's periodic pings guarantee outstanding traffic exists, so a
  /// silently dead peer (not just a closed one) is detected too.
  int response_timeout_ms = 5000;
  /// Reconnect backoff: doubles from min to max on consecutive failures,
  /// resets on success.
  int reconnect_backoff_min_ms = 50;
  int reconnect_backoff_max_ms = 2000;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  PollerBackend poller_backend = PollerBackend::kDefault;
};

/// A pipelined frame client owned by its own IO thread: the building block
/// of the router's backend pool. Callers hand it raw frame payloads from
/// any thread (TrySubmit — non-blocking, bounded, never waits on the
/// network) and get every response payload back through `on_frame`, plus
/// up/down transitions through `on_state`. The channel itself is
/// correlation-agnostic: it relies only on the protocol's one-response-
/// per-request contract to track the in-flight window and response
/// timeouts by count, so it carries JSON and binary frames alike and the
/// caller owns id matching.
///
/// Lifecycle of a connection: connect (blocking, on the channel thread) →
/// `on_state(true)` → pump until error/EOF/timeout → drop everything not
/// yet answered, `on_state(false)` → backoff → reconnect. A down
/// transition means every accepted-but-unanswered submission is lost; the
/// caller resolves them at that moment (the router answers `backend_down`)
/// — the channel will not replay them.
///
/// Callbacks run on the channel thread with no channel lock held, so they
/// may call back into TrySubmit (the router's replica-retry path does).
class FrameChannel {
 public:
  enum class Submit { kAccepted, kFull, kDown };

  struct Events {
    /// One decoded response payload.
    std::function<void(std::string payload)> on_frame;
    /// Connection established (true) / lost (false). Guaranteed to
    /// alternate, starting with true.
    std::function<void(bool up)> on_state;
  };

  FrameChannel(std::string host, uint16_t port, FrameChannelOptions options,
               Events events);
  ~FrameChannel();

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Creates the wake channel + poller and spawns the IO thread (which
  /// starts connecting immediately).
  util::Status Start();

  /// Queues one frame payload for transmission. kDown while disconnected
  /// (including before the first connect), kFull when queue_capacity
  /// accepted submissions are unanswered.
  Submit TrySubmit(std::string payload);

  /// Like TrySubmit but the frame is held back for `delay_ms` before
  /// entering the send queue — the retry-with-backoff primitive. Delayed
  /// frames do not preserve order relative to later TrySubmits.
  Submit TrySubmitAfter(std::string payload, int delay_ms);

  /// Stops reconnecting, abandons queued frames and exits the IO thread.
  void BeginShutdown();
  void Join();

  bool up() const { return up_.load(std::memory_order_acquire); }

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  /// --- counters (atomic; readable from any thread for stats) ---

  int64_t frames_sent() const { return Load(frames_sent_); }
  int64_t frames_received() const { return Load(frames_received_); }
  int64_t connects() const { return Load(connects_); }
  int64_t disconnects() const { return Load(disconnects_); }
  int64_t response_timeouts() const { return Load(response_timeouts_); }
  int64_t rejected_full() const { return Load(rejected_full_); }
  int64_t rejected_down() const { return Load(rejected_down_); }
  int64_t dropped_on_disconnect() const {
    return Load(dropped_on_disconnect_);
  }
  int64_t outstanding() const { return Load(outstanding_); }

 private:
  struct DelayedFrame {
    std::string payload;
    std::chrono::steady_clock::time_point due;
  };

  static int64_t Load(const std::atomic<int64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  }

  void Run();
  /// One connection's lifetime; returns when it died or shutdown began.
  void PumpConnection(Socket socket, Poller& poller);
  /// Clears all accepted-but-unanswered state after a connection died.
  void DropOutstanding();

  const std::string host_;
  const uint16_t port_;
  FrameChannelOptions options_;  // clamped to sane minima in the ctor
  const Events events_;

  WakeChannel wake_;
  std::thread thread_;

  std::mutex mutex_;
  /// Frames accepted by TrySubmit, not yet picked up by the IO thread.
  std::deque<std::string> inbox_;
  std::vector<DelayedFrame> delayed_;
  /// Accepted and unanswered (inbox + loop queue + wire) — the
  /// queue_capacity bound. Under mutex_ for the admit decision; mirrored
  /// in outstanding_ for lock-free stats.
  size_t accepted_unanswered_ = 0;
  bool connected_ = false;
  bool shutdown_ = false;

  std::atomic<bool> up_{false};

  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> frames_received_{0};
  std::atomic<int64_t> connects_{0};
  std::atomic<int64_t> disconnects_{0};
  std::atomic<int64_t> response_timeouts_{0};
  std::atomic<int64_t> rejected_full_{0};
  std::atomic<int64_t> rejected_down_{0};
  std::atomic<int64_t> dropped_on_disconnect_{0};
  std::atomic<int64_t> outstanding_{0};

  // IO-thread-only state.
  std::deque<std::string> pending_;
  /// Send timestamps of in-flight frames, FIFO: each arriving response
  /// settles the oldest — the count-based window and timeout tracker.
  std::deque<std::chrono::steady_clock::time_point> in_flight_;
  std::string write_buffer_;
};

}  // namespace auditgame::net

#endif  // AUDIT_GAME_NET_CHANNEL_H_
