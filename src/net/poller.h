#ifndef AUDIT_GAME_NET_POLLER_H_
#define AUDIT_GAME_NET_POLLER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::net {

/// One descriptor's readiness after a Wait().
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Peer hangup or socket error: the connection is dead regardless of any
  /// data still buffered (a final read drains what the kernel has).
  bool hangup = false;
};

/// Readiness notifier: the level-triggered event-loop primitive behind each
/// reactor. Two backends implement the same interface:
///
///  * `kEpoll` (Linux): O(1) dispatch independent of the watched-set size —
///    the serving backend, where one reactor may own tens of thousands of
///    pipelined connections.
///  * `kPoll`: portable POSIX poll(2), O(n) per wait. The fallback for
///    non-Linux builds and the reference the epoll backend is tested
///    against; at small fd counts the two are indistinguishable.
///
/// `kDefault` picks epoll where compiled in, poll otherwise. Both backends
/// are level-triggered with identical semantics, so callers never branch on
/// which one they got.
///
/// Not thread-safe: one Poller belongs to one event-loop thread.
class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `fd` or updates its interest set. `read`/`write` select the
  /// events to wake on (hangup/error always wake).
  virtual void Watch(int fd, bool read, bool write) = 0;

  /// Stops watching `fd` (no-op if unknown).
  virtual void Forget(int fd) = 0;

  virtual size_t watched() const = 0;

  /// Blocks until at least one watched descriptor is ready or `timeout_ms`
  /// elapses (-1 = forever). Returns the ready set; an empty result means
  /// the timeout genuinely expired with nothing pending (EINTR is retried
  /// internally — anything that must interrupt the wait writes to a
  /// watched descriptor, as the reactors' wake channels do).
  virtual util::StatusOr<std::vector<PollEvent>> Wait(int timeout_ms) = 0;

  /// "epoll" or "poll" — for logs and the stats verb.
  virtual const char* backend_name() const = 0;
};

enum class PollerBackend { kDefault, kPoll, kEpoll };

/// Creates a poller. `kEpoll` returns nullptr on platforms without epoll;
/// `kDefault` never fails.
std::unique_ptr<Poller> MakePoller(PollerBackend backend = PollerBackend::kDefault);

}  // namespace auditgame::net

#endif  // AUDIT_GAME_NET_POLLER_H_
