#ifndef AUDIT_GAME_NET_POLLER_H_
#define AUDIT_GAME_NET_POLLER_H_

#include <cstddef>
#include <map>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::net {

/// One descriptor's readiness after a Wait().
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Peer hangup or socket error: the connection is dead regardless of any
  /// data still buffered (a final read drains what the kernel has).
  bool hangup = false;
};

/// Readiness notifier over poll(2). poll — not epoll — keeps the code
/// portable across every POSIX the toolchain targets, and the server's fd
/// counts (hundreds of connections, one listener, one wake pipe) are far
/// below where epoll's O(1) dispatch starts to matter; the interface is
/// level-triggered so a switch to epoll(LT) later is a drop-in.
///
/// Not thread-safe: one Poller belongs to one event-loop thread.
class Poller {
 public:
  /// Registers `fd` or updates its interest set. `read`/`write` select the
  /// events to wake on (hangup/error always wake).
  void Watch(int fd, bool read, bool write);

  /// Stops watching `fd` (no-op if unknown).
  void Forget(int fd);

  size_t watched() const { return interest_.size(); }

  /// Blocks until at least one watched descriptor is ready or `timeout_ms`
  /// elapses (-1 = forever). Returns the ready set; an empty result means
  /// the timeout genuinely expired with nothing pending (EINTR is retried
  /// internally — anything that must interrupt the wait writes to a
  /// watched pipe, as the audit server's wake pipe does).
  util::StatusOr<std::vector<PollEvent>> Wait(int timeout_ms);

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };
  std::map<int, Interest> interest_;
};

}  // namespace auditgame::net

#endif  // AUDIT_GAME_NET_POLLER_H_
