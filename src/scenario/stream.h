#ifndef AUDIT_GAME_SCENARIO_STREAM_H_
#define AUDIT_GAME_SCENARIO_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "prob/count_distribution.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::scenario {

/// How a stream's per-cycle alert-count distributions evolve away from the
/// baseline the game was generated with.
enum class StreamKind {
  /// Independent per-cycle jitter of the *baseline* pmfs (the audit_serve
  /// model): drift is bounded, cycles are exchangeable.
  kJitter,
  /// Jitter of the *previous* cycle's pmfs: drift accumulates, so warm
  /// starts eventually stop being trusted and the service re-solves cold.
  kRandomWalk,
  /// Deterministic exponential tilt of the baseline with sinusoidal
  /// amplitude (weekday/weekend load swings) plus a small jitter.
  kSeasonal,
  /// Cycles come from an external CycleSource (a trace adapter replaying a
  /// real dataset, an adversary model) instead of a synthetic drift rule.
  /// The stream still owns the revisit schedule: revisit cycles replay the
  /// baseline without consuming the source.
  kExternal,
};

/// Producer of per-cycle alert-count distributions for StreamKind::kExternal
/// — the seam the adversary subsystem's trace adapters plug into so real
/// EMR/credit replays flow through the same ScenarioStream (revisit
/// schedule, byte-determinism contract) as the synthetic families.
class CycleSource {
 public:
  virtual ~CycleSource() = default;

  /// Distributions for the next cycle the source produces. Deterministic:
  /// two sources built from the same configuration yield identical
  /// sequences.
  virtual util::StatusOr<std::vector<prob::CountDistribution>> NextCycle() = 0;
};

struct StreamSpec {
  StreamKind kind = StreamKind::kJitter;
  /// Pmf jitter amplitude per cycle (see prob::JitterPmf); also scales the
  /// seasonal tilt.
  double drift_amplitude = 0.05;
  /// Every k-th cycle replays the baseline exactly (the policy-cache
  /// revisit path); 0 = never.
  int revisit_period = 5;
  /// Cycles per seasonal oscillation (kSeasonal only).
  int season_period = 7;
  uint64_t seed = 1;
};

/// Parses "jitter" / "walk" / "seasonal" (the workload_replay flag values).
util::StatusOr<StreamKind> StreamKindFromName(const std::string& name);

/// A deterministic multi-cycle alert stream: each Next() yields the
/// per-type alert-count distributions one audit cycle would refit from its
/// logs, ready for AuditService::UpdateAlertDistributions. Two streams
/// built from the same baseline and spec produce identical cycles
/// (scenario_test enforces byte equality), so replay experiments are
/// reproducible end to end.
class ScenarioStream {
 public:
  ScenarioStream(std::vector<prob::CountDistribution> baseline,
                 const StreamSpec& spec);

  /// External-source stream: `source` (borrowed, must outlive the stream)
  /// produces the non-revisit cycles; the spec's kind is forced to
  /// kExternal and only its revisit_period applies.
  ScenarioStream(std::vector<prob::CountDistribution> baseline,
                 const StreamSpec& spec, CycleSource* source);

  /// Distributions for the next cycle (the first call is cycle 1).
  util::StatusOr<std::vector<prob::CountDistribution>> Next();

  /// Cycles produced so far.
  int cycle() const { return cycle_; }

  /// True iff the given 1-based cycle replays the baseline exactly.
  bool IsRevisit(int cycle) const {
    return spec_.revisit_period > 0 && cycle % spec_.revisit_period == 0;
  }

  const std::vector<prob::CountDistribution>& baseline() const {
    return baseline_;
  }

 private:
  StreamSpec spec_;
  std::vector<prob::CountDistribution> baseline_;
  /// The random walk's current state (== baseline_ for the other kinds).
  std::vector<prob::CountDistribution> current_;
  util::Rng rng_;
  /// Borrowed producer for kExternal; null otherwise.
  CycleSource* source_ = nullptr;
  int cycle_ = 0;
};

/// Reweights `dist` by exp(theta * z) on the same support, renormalized —
/// a smooth, deterministic mean shift (theta > 0 raises it). The seasonal
/// stream's load-swing primitive.
util::StatusOr<prob::CountDistribution> ExponentialTilt(
    const prob::CountDistribution& dist, double theta);

}  // namespace auditgame::scenario

#endif  // AUDIT_GAME_SCENARIO_STREAM_H_
