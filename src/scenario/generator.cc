#include "scenario/generator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "prob/count_distribution.h"
#include "util/random.h"

namespace auditgame::scenario {
namespace {

util::Status ValidateSpec(const ScenarioSpec& spec) {
  if (spec.num_types < 1) {
    return util::InvalidArgumentError("num_types must be >= 1");
  }
  if (spec.num_adversaries < 1) {
    return util::InvalidArgumentError("num_adversaries must be >= 1");
  }
  if (spec.zipf_exponent < 0) {
    return util::InvalidArgumentError("zipf_exponent must be >= 0");
  }
  if (spec.base_alert_mean <= 0 || spec.uniform_alert_mean <= 0) {
    return util::InvalidArgumentError("alert means must be positive");
  }
  if (spec.group_size < 1) {
    return util::InvalidArgumentError("group_size must be >= 1");
  }
  if (spec.primary_type_prob <= 0 || spec.primary_type_prob > 1) {
    return util::InvalidArgumentError("primary_type_prob must be in (0, 1]");
  }
  if (spec.correlation_spill < 0 || spec.correlation_spill > 1) {
    return util::InvalidArgumentError("correlation_spill must be in [0, 1]");
  }
  if (spec.benefit_lo > spec.benefit_hi) {
    return util::InvalidArgumentError("benefit_lo must be <= benefit_hi");
  }
  if (spec.penalty < 0 || spec.attack_cost < 0) {
    return util::InvalidArgumentError("penalty and attack_cost must be >= 0");
  }
  return util::OkStatus();
}

// Per-type mean alert counts — the part that distinguishes the families'
// alert streams.
std::vector<double> AlertMeans(const ScenarioSpec& spec, util::Rng& rng) {
  std::vector<double> means(static_cast<size_t>(spec.num_types));
  switch (spec.family) {
    case Family::kZipfAlerts:
      for (int t = 0; t < spec.num_types; ++t) {
        means[static_cast<size_t>(t)] =
            spec.base_alert_mean *
            std::pow(static_cast<double>(t + 1), -spec.zipf_exponent);
      }
      break;
    case Family::kCorrelatedGroups:
      for (double& mean : means) mean = rng.Uniform(4.0, 10.0);
      break;
    case Family::kUniformBaseline:
      for (double& mean : means) mean = spec.uniform_alert_mean;
      break;
  }
  return means;
}

// The alert mix one attack produces: full mass on the primary type, except
// in the correlated family where the rest of the primary's group shares
// the spill-over mass.
std::vector<double> VictimTypeProbs(const ScenarioSpec& spec, int primary) {
  std::vector<double> probs(static_cast<size_t>(spec.num_types), 0.0);
  if (spec.family != Family::kCorrelatedGroups) {
    probs[static_cast<size_t>(primary)] = 1.0;
    return probs;
  }
  const int group = primary / spec.group_size;
  const int group_begin = group * spec.group_size;
  const int group_end =
      std::min(spec.num_types, group_begin + spec.group_size);
  const int spill_targets = group_end - group_begin - 1;
  probs[static_cast<size_t>(primary)] = spec.primary_type_prob;
  if (spill_targets > 0) {
    const double spill = (1.0 - spec.primary_type_prob) *
                         spec.correlation_spill / spill_targets;
    for (int t = group_begin; t < group_end; ++t) {
      if (t != primary) probs[static_cast<size_t>(t)] = spill;
    }
  }
  return probs;
}

}  // namespace

util::StatusOr<core::GameInstance> Generate(const ScenarioSpec& spec) {
  RETURN_IF_ERROR(ValidateSpec(spec));
  util::Rng rng(spec.seed);
  core::GameInstance instance;

  const std::vector<double> means = AlertMeans(spec, rng);
  for (int t = 0; t < spec.num_types; ++t) {
    instance.type_names.push_back("t" + std::to_string(t));
    // Per-type triage cost, drawn i.i.d. from {1.0, 1.5} so orderings have
    // to weigh heterogeneous costs (independent of the type's alert mean).
    instance.audit_costs.push_back(1.0 +
                                   0.5 * static_cast<double>(rng.UniformInt(2)));
    const double mean = means[static_cast<size_t>(t)];
    const double stddev = std::max(0.8, std::sqrt(mean));
    ASSIGN_OR_RETURN(
        prob::CountDistribution dist,
        prob::CountDistribution::DiscretizedGaussianWithCoverage(mean, stddev));
    instance.alert_distributions.push_back(std::move(dist));
  }

  const int victims = std::max(1, spec.victims_per_adversary);
  for (int e = 0; e < spec.num_adversaries; ++e) {
    core::Adversary adversary;
    adversary.attack_probability = 1.0;
    adversary.can_opt_out = true;
    for (int v = 0; v < victims; ++v) {
      const int primary =
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(spec.num_types)));
      core::VictimProfile victim;
      victim.type_probs = VictimTypeProbs(spec, primary);
      victim.benefit = rng.Uniform(spec.benefit_lo, spec.benefit_hi);
      victim.penalty = spec.penalty;
      victim.attack_cost = spec.attack_cost;
      adversary.victims.push_back(std::move(victim));
    }
    instance.adversaries.push_back(std::move(adversary));
  }

  RETURN_IF_ERROR(instance.Validate());
  return instance;
}

std::vector<double> BudgetSweep(double lo, double hi, int steps) {
  std::vector<double> budgets;
  if (steps <= 0) return budgets;
  if (steps == 1) {
    budgets.push_back(lo);
    return budgets;
  }
  for (int i = 0; i < steps; ++i) {
    budgets.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(steps - 1));
  }
  return budgets;
}

const std::vector<NamedScenario>& Catalog() {
  static const std::vector<NamedScenario>* catalog = [] {
    auto* entries = new std::vector<NamedScenario>;
    {
      NamedScenario s;
      s.name = "zipf";
      s.description = "heavy-tailed Zipf alert volumes, 10 types";
      s.spec.family = Family::kZipfAlerts;
      s.spec.num_types = 10;
      s.spec.num_adversaries = 8;
      s.spec.seed = 11;
      entries->push_back(std::move(s));
    }
    {
      NamedScenario s;
      s.name = "zipf-deep";
      s.description = "steeper Zipf tail (s=1.5), 12 types";
      s.spec.family = Family::kZipfAlerts;
      s.spec.num_types = 12;
      s.spec.num_adversaries = 10;
      s.spec.zipf_exponent = 1.5;
      s.spec.base_alert_mean = 32.0;
      s.spec.seed = 12;
      entries->push_back(std::move(s));
    }
    {
      NamedScenario s;
      s.name = "correlated";
      s.description = "correlated detector groups of 3, 9 types";
      s.spec.family = Family::kCorrelatedGroups;
      s.spec.num_types = 9;
      s.spec.num_adversaries = 8;
      s.spec.group_size = 3;
      s.spec.seed = 13;
      entries->push_back(std::move(s));
    }
    {
      NamedScenario s;
      s.name = "uniform";
      s.description = "independent homogeneous types (control), 8 types";
      s.spec.family = Family::kUniformBaseline;
      s.spec.num_types = 8;
      s.spec.num_adversaries = 6;
      s.spec.seed = 14;
      entries->push_back(std::move(s));
    }
    return entries;
  }();
  return *catalog;
}

util::StatusOr<ScenarioSpec> SpecByName(const std::string& name) {
  std::string known;
  for (const NamedScenario& scenario : Catalog()) {
    if (scenario.name == name) return scenario.spec;
    if (!known.empty()) known += ", ";
    known += scenario.name;
  }
  return util::NotFoundError("unknown scenario '" + name + "' (have: " +
                             known + ")");
}

void DefineScenarioFlags(util::FlagParser& flags,
                         const std::string& default_scenario,
                         const std::string& default_types) {
  flags.Define("scenario", default_scenario,
               "catalog scenario (zipf, zipf-deep, correlated, uniform)");
  flags.Define("types", default_types,
               "override the scenario's type count (0 = keep)");
  flags.Define("adversaries", "0",
               "override the scenario's adversary count (0 = keep)");
  flags.Define("game_seed", "0", "override the scenario's seed (0 = keep)");
}

util::StatusOr<ScenarioSpec> SpecFromFlags(const util::FlagParser& flags) {
  ASSIGN_OR_RETURN(ScenarioSpec spec,
                   SpecByName(flags.GetString("scenario")));
  if (const int types = flags.GetInt("types"); types > 0) {
    spec.num_types = types;
  }
  if (const int adversaries = flags.GetInt("adversaries"); adversaries > 0) {
    spec.num_adversaries = adversaries;
  }
  if (const int seed = flags.GetInt("game_seed"); seed > 0) {
    spec.seed = static_cast<uint64_t>(seed);
  }
  return spec;
}

}  // namespace auditgame::scenario
