#ifndef AUDIT_GAME_SCENARIO_GENERATOR_H_
#define AUDIT_GAME_SCENARIO_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/game.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::scenario {

/// Deterministic, seed-parameterized generators for diverse audit-game
/// families, so the solvers and the serving layer can be exercised far
/// beyond the paper's three instances (Syn A / EMR / credit). Every
/// generator draws exclusively from one util::Rng seeded by
/// ScenarioSpec::seed: the same spec always produces the same
/// GameInstance, byte for byte (core::FingerprintGame equality —
/// scenario_test enforces this), so generated games are valid policy-cache
/// keys and regression anchors.
enum class Family {
  /// Heavy-tailed alert volumes: type of rank r has mean alert count
  /// base_alert_mean * r^(-zipf_exponent) — a few noisy types dominate the
  /// stream while a long tail of rare types carries most of the attack
  /// surface, the shape real SIEM alert taxonomies have.
  kZipfAlerts,
  /// Types partitioned into correlated groups: an attack raises the
  /// primary type's alert with high probability and the other types of
  /// its group with the remainder, modeling families of detectors that
  /// fire together on one behavior.
  kCorrelatedGroups,
  /// Independent, homogeneous types — the control family.
  kUniformBaseline,
};

/// Full parameterization of one generated game. Fields irrelevant to the
/// selected family are ignored (but still hashed by the game fingerprint
/// only through the content they produce).
struct ScenarioSpec {
  Family family = Family::kUniformBaseline;
  int num_types = 8;
  int num_adversaries = 6;
  /// Victims offered to each adversary (clamped to >= 1).
  int victims_per_adversary = 4;
  uint64_t seed = 1;

  // --- kZipfAlerts ---
  /// Exponent s of the Zipf mean profile; larger = heavier head.
  double zipf_exponent = 1.1;
  /// Mean alert count of the rank-1 (noisiest) type.
  double base_alert_mean = 24.0;

  // --- kCorrelatedGroups ---
  /// Types per correlated group (last group may be smaller).
  int group_size = 3;
  /// Probability mass on the victim's primary type; the rest of the
  /// group shares (1 - primary_type_prob) * correlation_spill.
  double primary_type_prob = 0.6;
  double correlation_spill = 0.8;

  // --- kUniformBaseline ---
  double uniform_alert_mean = 6.0;

  // --- shared adversary economics (jittered per victim) ---
  double benefit_lo = 2.5;
  double benefit_hi = 6.5;
  double penalty = 5.0;
  double attack_cost = 0.5;
};

/// Generates the family's instance; Validate() is guaranteed to pass on
/// anything returned. Fails on nonsensical specs (num_types < 1,
/// zipf_exponent < 0, probabilities outside [0, 1], ...).
util::StatusOr<core::GameInstance> Generate(const ScenarioSpec& spec);

/// Evenly spaced audit-budget sweep [lo, hi] with `steps` points
/// (steps >= 2 gets both endpoints; steps == 1 gets lo). The standard way
/// workloads vary budget, mirroring the paper's budget sweeps.
std::vector<double> BudgetSweep(double lo, double hi, int steps);

/// A named preset: the catalog the bench suite and workload_replay share,
/// so "zipf" means the same game everywhere.
struct NamedScenario {
  std::string name;
  std::string description;
  ScenarioSpec spec;
};

/// The built-in presets ("zipf", "correlated", "uniform", ...).
const std::vector<NamedScenario>& Catalog();

/// Looks up a catalog preset by name; NotFoundError lists the valid names.
util::StatusOr<ScenarioSpec> SpecByName(const std::string& name);

/// The standard scenario flag set every scenario-driven tool shares
/// (workload_replay, audit_server, loadgen): --scenario plus the
/// --types / --adversaries / --game_seed overrides. Defaults vary per
/// tool; 0 means "keep the preset's value".
void DefineScenarioFlags(util::FlagParser& flags,
                         const std::string& default_scenario,
                         const std::string& default_types);

/// Resolves the flags defined by DefineScenarioFlags into a spec: catalog
/// lookup plus the nonzero overrides.
util::StatusOr<ScenarioSpec> SpecFromFlags(const util::FlagParser& flags);

}  // namespace auditgame::scenario

#endif  // AUDIT_GAME_SCENARIO_GENERATOR_H_
