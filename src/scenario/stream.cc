#include "scenario/stream.h"

#include <cmath>
#include <utility>

namespace auditgame::scenario {

util::StatusOr<StreamKind> StreamKindFromName(const std::string& name) {
  if (name == "jitter") return StreamKind::kJitter;
  if (name == "walk") return StreamKind::kRandomWalk;
  if (name == "seasonal") return StreamKind::kSeasonal;
  return util::NotFoundError("unknown stream kind '" + name +
                             "' (have: jitter, walk, seasonal)");
}

util::StatusOr<prob::CountDistribution> ExponentialTilt(
    const prob::CountDistribution& dist, double theta) {
  std::vector<double> pmf(static_cast<size_t>(dist.support_size()));
  for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
    // Anchor the exponent at min_value so the weights stay O(1) for the
    // small tilts the seasonal stream uses.
    pmf[static_cast<size_t>(z - dist.min_value())] =
        dist.Pmf(z) * std::exp(theta * static_cast<double>(z - dist.min_value()));
  }
  return prob::CountDistribution::FromPmf(dist.min_value(), std::move(pmf));
}

ScenarioStream::ScenarioStream(std::vector<prob::CountDistribution> baseline,
                               const StreamSpec& spec)
    : spec_(spec),
      baseline_(std::move(baseline)),
      current_(baseline_),
      rng_(spec.seed) {}

ScenarioStream::ScenarioStream(std::vector<prob::CountDistribution> baseline,
                               const StreamSpec& spec, CycleSource* source)
    : ScenarioStream(std::move(baseline), spec) {
  spec_.kind = StreamKind::kExternal;
  source_ = source;
}

util::StatusOr<std::vector<prob::CountDistribution>> ScenarioStream::Next() {
  ++cycle_;
  if (IsRevisit(cycle_)) return baseline_;

  if (spec_.kind == StreamKind::kExternal) {
    if (source_ == nullptr) {
      return util::FailedPreconditionError(
          "kExternal stream has no CycleSource");
    }
    return source_->NextCycle();
  }

  std::vector<prob::CountDistribution> next;
  next.reserve(baseline_.size());
  switch (spec_.kind) {
    case StreamKind::kJitter:
      for (const prob::CountDistribution& d : baseline_) {
        ASSIGN_OR_RETURN(prob::CountDistribution jittered,
                         prob::JitterPmf(d, spec_.drift_amplitude, rng_));
        next.push_back(std::move(jittered));
      }
      break;
    case StreamKind::kRandomWalk:
      for (const prob::CountDistribution& d : current_) {
        ASSIGN_OR_RETURN(prob::CountDistribution jittered,
                         prob::JitterPmf(d, spec_.drift_amplitude, rng_));
        next.push_back(std::move(jittered));
      }
      current_ = next;
      break;
    case StreamKind::kSeasonal: {
      const int period = spec_.season_period > 0 ? spec_.season_period : 7;
      const double phase = 2.0 * M_PI * static_cast<double>(cycle_) /
                           static_cast<double>(period);
      const double theta = spec_.drift_amplitude * std::sin(phase);
      for (const prob::CountDistribution& d : baseline_) {
        ASSIGN_OR_RETURN(prob::CountDistribution tilted,
                         ExponentialTilt(d, theta));
        ASSIGN_OR_RETURN(
            prob::CountDistribution jittered,
            prob::JitterPmf(tilted, 0.2 * spec_.drift_amplitude, rng_));
        next.push_back(std::move(jittered));
      }
      break;
    }
    case StreamKind::kExternal:
      break;  // handled above
  }
  return next;
}

}  // namespace auditgame::scenario
