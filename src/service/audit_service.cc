#include "service/audit_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/policy.h"
#include "util/serializer.h"
#include "util/timer.h"

namespace auditgame::service {

AuditService::AuditService(core::GameInstance instance,
                           AuditServiceOptions options)
    : options_(std::move(options)),
      instance_(std::move(instance)),
      engine_(options_.num_threads),
      cache_(options_.cache_capacity) {}

util::Status AuditService::UpdateAlertDistributions(
    std::vector<prob::CountDistribution> distributions) {
  if (static_cast<int>(distributions.size()) != instance_.num_types()) {
    return util::InvalidArgumentError(
        "alert distribution update has " +
        std::to_string(distributions.size()) + " entries for " +
        std::to_string(instance_.num_types()) + " types");
  }
  std::swap(instance_.alert_distributions, distributions);
  util::Status valid = instance_.Validate();
  if (!valid.ok()) {
    // Roll back: a rejected update must leave the service serving the
    // previous distributions.
    std::swap(instance_.alert_distributions, distributions);
    return valid;
  }
  return util::OkStatus();
}

util::StatusOr<std::vector<double>> AuditService::MixedDetectionForPolicy(
    const CyclePolicy& policy) const {
  ASSIGN_OR_RETURN(core::DetectionModel model,
                   core::DetectionModel::Create(instance_, policy.budget,
                                                options_.detection_options));
  return core::MixedDetectionProbabilities(model, policy.result.policy);
}

double AuditService::MeasureDrift(
    const std::vector<prob::CountDistribution>& a,
    const std::vector<prob::CountDistribution>& b) {
  if (a.size() != b.size()) return 1.0;
  double drift = 0.0;
  for (size_t t = 0; t < a.size(); ++t) {
    drift = std::max(drift, prob::TotalVariationDistance(a[t], b[t]));
  }
  return drift;
}

solver::EngineRequest AuditService::BaseRequest(double budget) const {
  solver::EngineRequest request;
  request.solver = options_.solver;
  request.instance = &instance_;
  request.budget = budget;
  request.detection_options = options_.detection_options;
  request.options = options_.solver_options;
  return request;
}

util::StatusOr<AuditService::CycleReport> AuditService::RunCycle() {
  util::Timer timer;
  CycleReport report;
  report.cycle = ++cycles_run_;
  report.policies.resize(options_.budgets.size());

  // Pass 1: serve fingerprint hits from the cache; queue the rest as one
  // engine batch (the workers then share the compile cache, and any other
  // thread reading this PolicyCache sees each configuration solved once).
  struct Pending {
    size_t slot = 0;
    util::Fingerprint key;
  };
  std::vector<Pending> pending;
  std::vector<solver::EngineRequest> to_solve;
  for (size_t i = 0; i < options_.budgets.size(); ++i) {
    const double budget = options_.budgets[i];
    CyclePolicy& policy = report.policies[i];
    policy.budget = budget;

    const auto last = last_solves_.find(budget);
    policy.drift = last == last_solves_.end()
                       ? 0.0
                       : MeasureDrift(last->second.distributions,
                                      instance_.alert_distributions);

    solver::EngineRequest request = BaseRequest(budget);
    const util::Fingerprint key = FingerprintRequest(request);
    if (std::optional<solver::SolveResult> cached = cache_.Lookup(key)) {
      policy.source = Source::kCache;
      ++served_from_cache_;
      policy.result = *std::move(cached);
      // The served policy becomes the drift baseline and warm seed for the
      // next cycle, exactly as if it had been re-solved.
      last_solves_[budget] =
          LastSolve{instance_.alert_distributions, policy.result};
      continue;
    }

    // warm_start_max_drift = 0 disables warm solves outright (the
    // documented only-cold-results-cached mode) — without the > 0 guard a
    // zero-drift re-solve after a cache eviction would still warm-start.
    const bool warm = last != last_solves_.end() &&
                      options_.warm_start_max_drift > 0.0 &&
                      policy.drift <= options_.warm_start_max_drift;
    if (warm) {
      policy.source = Source::kWarmSolve;
      request.options.ishm.max_subset_size = options_.warm_subset_cap;
      request.warm_start.thresholds = last->second.result.thresholds;
      request.warm_start.orderings = last->second.result.policy.orderings;
    } else {
      policy.source = Source::kColdSolve;
    }
    pending.push_back(Pending{i, key});
    to_solve.push_back(std::move(request));
  }

  // Pass 2: batch-solve the misses and publish them.
  const std::vector<util::StatusOr<solver::SolveResult>> solved =
      engine_.SolveAll(to_solve);
  for (size_t j = 0; j < pending.size(); ++j) {
    if (!solved[j].ok()) return solved[j].status();
    CyclePolicy& policy = report.policies[pending[j].slot];
    // Counted here, not at queue time, so stats() only reflects solves
    // that actually completed (a failed batch aborts the cycle above).
    if (policy.source == Source::kWarmSolve) {
      ++warm_solves_;
    } else {
      ++cold_solves_;
    }
    policy.result = *solved[j];
    cache_.Insert(pending[j].key, policy.result);
    last_solves_[policy.budget] =
        LastSolve{instance_.alert_distributions, policy.result};
  }

  report.seconds = timer.ElapsedSeconds();
  last_cycle_seconds_ = report.seconds;
  total_cycle_seconds_ += report.seconds;
  return report;
}

AuditService::Stats AuditService::stats() const {
  Stats stats;
  stats.cycles = cycles_run_;
  stats.served_from_cache = served_from_cache_;
  stats.warm_solves = warm_solves_;
  stats.cold_solves = cold_solves_;
  stats.total_cycle_seconds = total_cycle_seconds_;
  stats.last_cycle_seconds = last_cycle_seconds_;
  stats.cache = cache_.stats();
  stats.compile = engine_.compile_cache_stats();
  return stats;
}

util::Fingerprint FingerprintServiceConfig(const AuditServiceOptions& options) {
  util::FingerprintBuilder fp;
  fp.AppendString("audit-service-config-v1");
  // Reuse the request fingerprint per budget (instance-free: the null
  // instance gets its own marker) so any option FingerprintRequest treats
  // as solve-relevant is automatically config-relevant here too.
  fp.AppendI64(static_cast<int64_t>(options.budgets.size()));
  for (double budget : options.budgets) {
    solver::EngineRequest request;
    request.solver = options.solver;
    request.budget = budget;
    request.detection_options = options.detection_options;
    request.options = options.solver_options;
    const util::Fingerprint key = FingerprintRequest(request);
    fp.AppendU64(key.hi);
    fp.AppendU64(key.lo);
  }
  fp.AppendDouble(options.warm_start_max_drift);
  fp.AppendI64(options.warm_subset_cap);
  fp.AppendU64(options.cache_capacity);
  return fp.Build();
}

void AuditService::StreamState(util::Serializer& s) {
  s.Section("audit_service", 1);
  s.Object(instance_);
  s.I64(cycles_run_);
  s.I64(served_from_cache_);
  s.I64(warm_solves_);
  s.I64(cold_solves_);
  s.TimingF64(total_cycle_seconds_);
  s.TimingF64(last_cycle_seconds_);
  uint64_t num_baselines = last_solves_.size();
  s.U64(num_baselines);
  if (s.reading()) {
    last_solves_.clear();
    for (uint64_t i = 0; i < num_baselines && s.ok(); ++i) {
      double budget = 0.0;
      s.F64(budget);
      LastSolve last;
      s.VecObj(last.distributions);
      s.Object(last.result);
      if (s.ok()) last_solves_.emplace(budget, std::move(last));
    }
  } else {
    for (auto& [budget, last] : last_solves_) {
      double key = budget;
      s.F64(key);
      s.VecObj(last.distributions);
      s.Object(last.result);
    }
  }
  s.Object(cache_);
}

}  // namespace auditgame::service
