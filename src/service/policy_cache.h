#ifndef AUDIT_GAME_SERVICE_POLICY_CACHE_H_
#define AUDIT_GAME_SERVICE_POLICY_CACHE_H_

#include <cstdint>
#include <cstddef>
#include <mutex>
#include <optional>

#include "solver/engine.h"
#include "util/hash.h"
#include "util/lru_cache.h"

namespace auditgame::util {
class Serializer;
}  // namespace auditgame::util

namespace auditgame::service {

/// Content fingerprint of the full configured request: the game instance
/// (by content, via core::FingerprintGame), the budget, the
/// detection-model options, the solver name, the fixed thresholds, and
/// every solver option — including search seeds and caps
/// (IshmOptions::initial_thresholds / max_subset_size,
/// CggsOptions::initial_orderings, EngineRequest::warm_start), since a
/// differently configured search can reach different heuristic optima.
/// Two services sharing one cache with different standing configurations
/// therefore never collide.
///
/// AuditService deliberately fingerprints the *base* (cold) request before
/// applying its per-cycle warm-start overrides, so a warm re-solve is
/// cached under the configuration's key; see AuditService for why that is
/// sound.
util::Fingerprint FingerprintRequest(const solver::EngineRequest& request);

/// Thread-safe LRU cache of solved policies, keyed by request fingerprint.
/// Shared by every worker of an AuditService (and safe to share across
/// several services serving the same corpus): each distinct configuration
/// is solved once and then served from memory until evicted.
class PolicyCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
  };

  explicit PolicyCache(size_t capacity = 256) : cache_(capacity) {}

  PolicyCache(const PolicyCache&) = delete;
  PolicyCache& operator=(const PolicyCache&) = delete;

  /// Returns a copy of the cached result (copies are cheap next to a solve
  /// and let the caller use it without holding the lock), refreshing the
  /// entry's recency. std::nullopt on miss.
  std::optional<solver::SolveResult> Lookup(const util::Fingerprint& key);

  /// Inserts or overwrites the entry for `key`.
  void Insert(const util::Fingerprint& key, solver::SolveResult result);

  Stats stats() const;
  size_t size() const;
  size_t capacity() const;

  /// Streams every entry (oldest-first, so restore reproduces the LRU
  /// order), the hit/miss/insertion/eviction counters, and the capacity as
  /// a guard (a snapshot taken under one capacity must not be restored
  /// into a differently sized cache — recency-dependent eviction would
  /// diverge from the original process). Takes the cache lock.
  void StreamState(util::Serializer& s);

 private:
  mutable std::mutex mutex_;
  util::LruCache<util::Fingerprint, solver::SolveResult> cache_;
  Stats stats_;
};

}  // namespace auditgame::service

#endif  // AUDIT_GAME_SERVICE_POLICY_CACHE_H_
