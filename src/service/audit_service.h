#ifndef AUDIT_GAME_SERVICE_AUDIT_SERVICE_H_
#define AUDIT_GAME_SERVICE_AUDIT_SERVICE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/game.h"
#include "prob/count_distribution.h"
#include "service/policy_cache.h"
#include "solver/engine.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::service {

/// Configuration of an AuditService (fixed for the service's lifetime;
/// per-cycle variation comes from the ingested alert distributions).
struct AuditServiceOptions {
  /// Registry name of the backend used for every solve.
  std::string solver = "ishm-cggs";
  solver::SolverOptions solver_options;
  core::DetectionModel::Options detection_options;
  /// Budgets served each cycle — one policy per budget, solved as one
  /// engine batch so the workers share the policy and compile caches.
  std::vector<double> budgets = {10.0};
  /// Drift (max per-type total variation distance between the ingested
  /// alert distributions and the ones the previous policy was solved
  /// under) at or below which a re-solve is warm-started from that policy.
  /// Above it the previous optimum is no longer trusted as a seed — the
  /// shrink-only warm search cannot grow thresholds, so large drifts get a
  /// cold solve from the full-coverage upper bounds. 0 disables warm
  /// solves entirely (even at exactly zero drift), so only cold results
  /// ever enter the cache.
  double warm_start_max_drift = 0.25;
  /// ISHM shrink-subset cap for warm-started re-solves (see
  /// IshmOptions::max_subset_size); 0 keeps the backend's full sweep.
  int warm_subset_cap = 1;
  size_t cache_capacity = 256;
  /// Engine worker threads; 0 = one per core, < 0 = inline mode (the
  /// engine solves on the calling thread, spawning nothing — what the
  /// audit server uses so ten thousand tenant services cost zero threads).
  int num_threads = 0;
};

/// Content fingerprint of everything in `options` that shapes solve results
/// or cache behaviour (solver + per-budget request configuration, warm-start
/// gates, cache capacity) — num_threads excluded, since threading is
/// result-neutral by contract. Durable snapshots store this as a guard:
/// restoring state produced under one configuration into a service
/// configured differently would silently change replay, so recovery refuses
/// on mismatch instead.
util::Fingerprint FingerprintServiceConfig(const AuditServiceOptions& options);

/// The serving loop of a live auditing deployment: each audit cycle the
/// operator ingests the day's refreshed alert-count distributions and asks
/// for the optimal policies. The service fingerprints the resulting
/// configuration, serves unchanged (or previously seen) configurations
/// straight from the PolicyCache, and re-solves the rest — warm-started
/// from the previous cycle's policy when the drift is small, cold
/// otherwise. See docs/DESIGN.md "Serving layer".
///
/// Caching semantics: each budget's request is fingerprinted in its *base*
/// (cold) configuration, and warm-started re-solve results are cached
/// under that base key. A warm solve is a valid (heuristic) solve of the
/// same configuration — the drift gate bounds how far its seed can be from
/// the optimum, and `bench/micro_cache` tracks the resulting objective gap
/// (float-rounding level on Syn A) — so serving it on an exact revisit
/// trades a provably-searched-the-same-space guarantee for an
/// order-of-magnitude latency win. Deployments that want only cold results
/// cached can set `warm_start_max_drift = 0`.
///
/// Threading: RunCycle() fans its solves across the internal SolverEngine,
/// but the service object itself is a single-writer loop — call
/// UpdateAlertDistributions()/RunCycle() from one thread at a time. The
/// PolicyCache is thread-safe and may be read concurrently.
class AuditService {
 public:
  /// Where a cycle's policy came from.
  enum class Source { kCache, kWarmSolve, kColdSolve };

  struct CyclePolicy {
    double budget = 0.0;
    Source source = Source::kColdSolve;
    /// Drift against the distributions of the previous solve at this
    /// budget (0 when there is none yet).
    double drift = 0.0;
    solver::SolveResult result;
  };

  struct CycleReport {
    int64_t cycle = 0;
    std::vector<CyclePolicy> policies;
    /// Wall-clock of the whole cycle (lookups + batched solves).
    double seconds = 0.0;
  };

  /// Lifetime counters of the serving loop, for operational reporting (the
  /// audit server's `stats` verb, the replay tools' summaries) — callers
  /// read real served/warm/cold splits here instead of recomputing them
  /// from per-cycle reports. Single-writer like the service itself: read
  /// from the thread that runs the cycles (the embedded cache/compile
  /// stats are additionally safe to read from anywhere, see PolicyCache).
  struct Stats {
    int64_t cycles = 0;
    /// Policies by source, summed over all cycles and budgets.
    int64_t served_from_cache = 0;
    int64_t warm_solves = 0;
    int64_t cold_solves = 0;
    /// Per-cycle wall time: total across all cycles, and the most recent.
    double total_cycle_seconds = 0.0;
    double last_cycle_seconds = 0.0;
    PolicyCache::Stats cache;
    solver::SolverEngine::CompileCacheStats compile;
  };

  /// Takes the initial game instance (validated on first use) and the
  /// serving configuration.
  AuditService(core::GameInstance instance, AuditServiceOptions options = {});

  /// Ingests one cycle's refreshed per-type alert-count distributions
  /// (e.g. refit from the day's logs). Everything else about the game is
  /// unchanged. Fails without side effects if the update does not match
  /// the instance's type count or breaks instance validity.
  util::Status UpdateAlertDistributions(
      std::vector<prob::CountDistribution> distributions);

  /// Serves one cycle: a policy per configured budget, from cache where
  /// the configuration fingerprint is known, re-solved otherwise. The
  /// first failing solve aborts the cycle with its status.
  util::StatusOr<CycleReport> RunCycle();

  const core::GameInstance& instance() const { return instance_; }
  const AuditServiceOptions& options() const { return options_; }
  Stats stats() const;
  PolicyCache::Stats cache_stats() const { return cache_.stats(); }
  solver::SolverEngine::CompileCacheStats compile_cache_stats() const {
    return engine_.compile_cache_stats();
  }

  /// Expected per-type detection probabilities (mixed Pal) of a served
  /// policy, evaluated under the *current* alert distributions — for a
  /// cached or stale policy this reflects what the policy actually detects
  /// today, not what it detected when solved. This is the observable a
  /// strategic attacker best-responds to, and — because the adversary
  /// utility of Eq. 3 is linear in Pal — everything needed to evaluate the
  /// defender's true loss remotely (see adversary/loop.h). Builds a fresh
  /// DetectionModel per call; keep it off the hot serving path.
  util::StatusOr<std::vector<double>> MixedDetectionForPolicy(
      const CyclePolicy& policy) const;

  /// Max over types of the total variation distance between two
  /// distribution sets; 1 (maximal) on a size mismatch.
  static double MeasureDrift(const std::vector<prob::CountDistribution>& a,
                             const std::vector<prob::CountDistribution>& b);

  /// Streams the full serving state: the current instance (validated on
  /// read), lifetime counters, per-budget warm-start baselines, and the
  /// policy cache. The engine's compile cache is deliberately NOT streamed
  /// — it is derived state, rebuilt on demand from the instance. Call from
  /// the service's single-writer thread.
  void StreamState(util::Serializer& s);

 private:
  /// The cold request for one budget under the current instance.
  solver::EngineRequest BaseRequest(double budget) const;

  struct LastSolve {
    std::vector<prob::CountDistribution> distributions;
    solver::SolveResult result;
  };

  AuditServiceOptions options_;
  core::GameInstance instance_;
  solver::SolverEngine engine_;
  PolicyCache cache_;
  /// Previous solved state per budget: warm-start seed + drift baseline.
  std::map<double, LastSolve> last_solves_;
  int64_t cycles_run_ = 0;
  /// Lifetime counters behind stats() (cache/compile stats live in their
  /// owners).
  int64_t served_from_cache_ = 0;
  int64_t warm_solves_ = 0;
  int64_t cold_solves_ = 0;
  double total_cycle_seconds_ = 0.0;
  double last_cycle_seconds_ = 0.0;
};

}  // namespace auditgame::service

#endif  // AUDIT_GAME_SERVICE_AUDIT_SERVICE_H_
