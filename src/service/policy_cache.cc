#include "service/policy_cache.h"

#include <string>
#include <utility>

#include "core/game_io.h"
#include "util/serializer.h"

namespace auditgame::service {

util::Fingerprint FingerprintRequest(const solver::EngineRequest& request) {
  util::FingerprintBuilder fp;
  // Game content. A null instance is a (rejected) request in its own right;
  // give it a distinct marker rather than crashing the fingerprinter.
  if (request.instance == nullptr) {
    fp.AppendString("null-instance");
  } else {
    const util::Fingerprint game = core::FingerprintGame(*request.instance);
    fp.AppendU64(game.hi);
    fp.AppendU64(game.lo);
  }
  fp.AppendDouble(request.budget);

  const core::DetectionModel::Options& d = request.detection_options;
  fp.AppendI64(static_cast<int64_t>(d.mode));
  fp.AppendI64(static_cast<int64_t>(d.semantics));
  fp.AppendI64(static_cast<int64_t>(d.consumption));
  fp.AppendI64(d.mc_samples);
  fp.AppendU64(d.seed);
  fp.AppendDouble(d.budget_unit);

  fp.AppendString(request.solver);
  fp.AppendI64(static_cast<int64_t>(request.thresholds.size()));
  for (double b : request.thresholds) fp.AppendDouble(b);

  const auto append_doubles = [&fp](const std::vector<double>& values) {
    fp.AppendI64(static_cast<int64_t>(values.size()));
    for (double v : values) fp.AppendDouble(v);
  };
  const auto append_orderings =
      [&fp](const std::vector<std::vector<int>>& orderings) {
        fp.AppendI64(static_cast<int64_t>(orderings.size()));
        for (const auto& ordering : orderings) {
          fp.AppendI64(static_cast<int64_t>(ordering.size()));
          for (int t : ordering) fp.AppendI64(t);
        }
      };

  const solver::SolverOptions& o = request.options;
  fp.AppendDouble(o.ishm.step_size);
  fp.AppendU64(o.ishm.floor_to_audit_cost ? 1 : 0);
  append_doubles(o.ishm.initial_thresholds);
  fp.AppendI64(o.ishm.max_subset_size);
  // The master mode changes which heuristic path the dual-driven pricing
  // walks (the modes can reach different degenerate optima), so results
  // solved under different modes must not share a cache entry.
  fp.AppendI64(static_cast<int64_t>(o.cggs.master_mode));
  fp.AppendI64(o.cggs.max_columns);
  fp.AppendDouble(o.cggs.reduced_cost_tolerance);
  fp.AppendI64(o.cggs.random_probes);
  fp.AppendU64(o.cggs.seed);
  // pricing_threads is result-neutral by contract (see CggsOptions), but
  // it is still configuration: hashing it keeps the key a faithful image
  // of the request and costs at most a duplicate solve per thread count.
  fp.AppendI64(o.cggs.pricing_threads);
  append_orderings(o.cggs.initial_orderings);
  fp.AppendU64(o.brute_force.require_sum_at_least_budget ? 1 : 0);
  append_doubles(request.warm_start.thresholds);
  append_orderings(request.warm_start.orderings);
  return fp.Build();
}

std::optional<solver::SolveResult> PolicyCache::Lookup(
    const util::Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (solver::SolveResult* cached = cache_.Lookup(key)) {
    ++stats_.hits;
    return *cached;
  }
  ++stats_.misses;
  return std::nullopt;
}

void PolicyCache::Insert(const util::Fingerprint& key,
                         solver::SolveResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.Insert(key, std::move(result));
  ++stats_.insertions;
}

PolicyCache::Stats PolicyCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.evictions = cache_.evictions();
  return stats;
}

size_t PolicyCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

size_t PolicyCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.capacity();
}

void PolicyCache::StreamState(util::Serializer& s) {
  std::lock_guard<std::mutex> lock(mutex_);
  s.Section("policy_cache", 1);
  uint64_t capacity = cache_.capacity();
  s.U64(capacity);
  if (s.reading() && s.ok() && capacity != cache_.capacity()) {
    s.Fail(util::FailedPreconditionError(
        "PolicyCache: snapshot capacity " + std::to_string(capacity) +
        " != configured capacity " + std::to_string(cache_.capacity())));
  }
  s.I64(stats_.hits);
  s.I64(stats_.misses);
  s.I64(stats_.insertions);
  int64_t evictions = cache_.evictions();
  s.I64(evictions);
  uint64_t count = cache_.size();
  s.U64(count);
  if (s.ok() && s.reading()) {
    cache_.Clear();
    cache_.SetEvictions(evictions);
    for (uint64_t i = 0; i < count; ++i) {
      util::Fingerprint key;
      solver::SolveResult result;
      s.Object(key);
      s.Object(result);
      if (!s.ok()) return;
      // Oldest-first re-insertion reproduces the recency list; count never
      // exceeds capacity (checked above), so nothing evicts here.
      cache_.Insert(key, std::move(result));
    }
  } else if (s.ok()) {
    cache_.ForEachOldestFirst(
        [&s](const util::Fingerprint& key, const solver::SolveResult& result) {
          util::Fingerprint k = key;
          s.Object(k);
          s.Object(const_cast<solver::SolveResult&>(result));
        });
  }
}

}  // namespace auditgame::service
