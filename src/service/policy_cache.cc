#include "service/policy_cache.h"

#include <utility>

#include "core/game_io.h"

namespace auditgame::service {

util::Fingerprint FingerprintRequest(const solver::EngineRequest& request) {
  util::FingerprintBuilder fp;
  // Game content. A null instance is a (rejected) request in its own right;
  // give it a distinct marker rather than crashing the fingerprinter.
  if (request.instance == nullptr) {
    fp.AppendString("null-instance");
  } else {
    const util::Fingerprint game = core::FingerprintGame(*request.instance);
    fp.AppendU64(game.hi);
    fp.AppendU64(game.lo);
  }
  fp.AppendDouble(request.budget);

  const core::DetectionModel::Options& d = request.detection_options;
  fp.AppendI64(static_cast<int64_t>(d.mode));
  fp.AppendI64(static_cast<int64_t>(d.semantics));
  fp.AppendI64(static_cast<int64_t>(d.consumption));
  fp.AppendI64(d.mc_samples);
  fp.AppendU64(d.seed);
  fp.AppendDouble(d.budget_unit);

  fp.AppendString(request.solver);
  fp.AppendI64(static_cast<int64_t>(request.thresholds.size()));
  for (double b : request.thresholds) fp.AppendDouble(b);

  const auto append_doubles = [&fp](const std::vector<double>& values) {
    fp.AppendI64(static_cast<int64_t>(values.size()));
    for (double v : values) fp.AppendDouble(v);
  };
  const auto append_orderings =
      [&fp](const std::vector<std::vector<int>>& orderings) {
        fp.AppendI64(static_cast<int64_t>(orderings.size()));
        for (const auto& ordering : orderings) {
          fp.AppendI64(static_cast<int64_t>(ordering.size()));
          for (int t : ordering) fp.AppendI64(t);
        }
      };

  const solver::SolverOptions& o = request.options;
  fp.AppendDouble(o.ishm.step_size);
  fp.AppendU64(o.ishm.floor_to_audit_cost ? 1 : 0);
  append_doubles(o.ishm.initial_thresholds);
  fp.AppendI64(o.ishm.max_subset_size);
  // The master mode changes which heuristic path the dual-driven pricing
  // walks (the modes can reach different degenerate optima), so results
  // solved under different modes must not share a cache entry.
  fp.AppendI64(static_cast<int64_t>(o.cggs.master_mode));
  fp.AppendI64(o.cggs.max_columns);
  fp.AppendDouble(o.cggs.reduced_cost_tolerance);
  fp.AppendI64(o.cggs.random_probes);
  fp.AppendU64(o.cggs.seed);
  // pricing_threads is result-neutral by contract (see CggsOptions), but
  // it is still configuration: hashing it keeps the key a faithful image
  // of the request and costs at most a duplicate solve per thread count.
  fp.AppendI64(o.cggs.pricing_threads);
  append_orderings(o.cggs.initial_orderings);
  fp.AppendU64(o.brute_force.require_sum_at_least_budget ? 1 : 0);
  append_doubles(request.warm_start.thresholds);
  append_orderings(request.warm_start.orderings);
  return fp.Build();
}

std::optional<solver::SolveResult> PolicyCache::Lookup(
    const util::Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (solver::SolveResult* cached = cache_.Lookup(key)) {
    ++stats_.hits;
    return *cached;
  }
  ++stats_.misses;
  return std::nullopt;
}

void PolicyCache::Insert(const util::Fingerprint& key,
                         solver::SolveResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.Insert(key, std::move(result));
  ++stats_.insertions;
}

PolicyCache::Stats PolicyCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.evictions = cache_.evictions();
  return stats;
}

size_t PolicyCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

size_t PolicyCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.capacity();
}

}  // namespace auditgame::service
