#ifndef AUDIT_GAME_PROB_COUNT_DISTRIBUTION_H_
#define AUDIT_GAME_PROB_COUNT_DISTRIBUTION_H_

#include <vector>

#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::util {
class Serializer;
}  // namespace auditgame::util

namespace auditgame::prob {

/// Standard normal CDF.
double NormalCdf(double x);

/// Standard normal quantile (inverse CDF) via bisection on NormalCdf.
/// Requires p in (0, 1).
double NormalQuantile(double p);

/// A discrete probability distribution over a contiguous integer support
/// [min_value, max_value], used to model the number of benign alerts of a
/// type raised per audit period — the paper's F_t(n).
///
/// The paper's construction (Section IV-A): take a Gaussian over alert
/// counts, discretize its CDF onto integers, and truncate to a finite
/// support covering ~99.5% of the mass; probabilities are renormalized over
/// the truncated support.
class CountDistribution {
 public:
  /// Builds from an explicit pmf over [min_value, min_value + pmf.size()).
  /// The pmf is normalized; all entries must be non-negative with positive
  /// sum.
  static util::StatusOr<CountDistribution> FromPmf(int min_value,
                                                   std::vector<double> pmf);

  /// Gaussian discretized on integers z in [lo, hi]:
  ///   p(z) ∝ Phi((z+1/2-mean)/std) - Phi((z-1/2-mean)/std),
  /// renormalized. Requires std > 0 and 0 <= lo <= hi.
  static util::StatusOr<CountDistribution> DiscretizedGaussian(double mean,
                                                               double stddev,
                                                               int lo, int hi);

  /// Gaussian with the support chosen symmetrically around the mean to
  /// cover `coverage` of the mass (e.g. 0.995 per the paper), clipped at 0.
  /// The half-width is ceil(z_{(1+coverage)/2} * stddev).
  static util::StatusOr<CountDistribution> DiscretizedGaussianWithCoverage(
      double mean, double stddev, double coverage = 0.995);

  /// Poisson(lambda) truncated at its `coverage` quantile.
  static util::StatusOr<CountDistribution> TruncatedPoisson(
      double lambda, double coverage = 0.9999);

  /// Empirical distribution from observed counts (e.g. per-day alert counts
  /// from an audit log). Support is [min(samples), max(samples)].
  static util::StatusOr<CountDistribution> FromSamples(
      const std::vector<int>& samples);

  /// Degenerate distribution: always `value`.
  static CountDistribution Constant(int value);

  /// Empty placeholder, only meaningful as a StreamState restore target
  /// (every factory above yields a non-empty support).
  CountDistribution() : min_value_(0) {}

  /// Streams the support and both probability tables as raw double bits —
  /// deliberately NOT via FromPmf, whose renormalization would perturb
  /// values by a few ULPs and break bit-for-bit replay.
  void StreamState(util::Serializer& s);

  int min_value() const { return min_value_; }
  int max_value() const { return min_value_ + static_cast<int>(pmf_.size()) - 1; }
  int support_size() const { return static_cast<int>(pmf_.size()); }

  /// P(Z = z); zero outside the support.
  double Pmf(int z) const;

  /// The raw pmf table over [min_value, max_value] — contiguous access for
  /// the numeric kernels (math/kernels.h) on drift/convolution hot paths.
  const std::vector<double>& pmf_data() const { return pmf_; }

  /// F(n) = P(Z <= n). This is the paper's F_t.
  double Cdf(int n) const;

  /// Smallest n with Cdf(n) >= coverage. With coverage ~ 1 this is the
  /// paper's approximate upper bound on useful audit thresholds.
  int UpperBound(double coverage = 0.9995) const;

  double Mean() const;
  double Variance() const;

  /// Draws one sample (inverse-CDF method against the precomputed table).
  int Sample(util::Rng& rng) const;

 private:
  CountDistribution(int min_value, std::vector<double> pmf);

  int min_value_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;  // cumulative, same length as pmf_
};

/// Samples one realization Z = (Z_1 .. Z_T) of independent per-type counts.
std::vector<int> SampleJoint(const std::vector<CountDistribution>& dists,
                             util::Rng& rng);

/// Total variation distance (1/2) * sum_z |P(z) - Q(z)| over the union of
/// the supports, in [0, 1]. The serving layer's drift measure between the
/// alert-count distributions a policy was solved under and the ones just
/// ingested (see service/audit_service.h).
double TotalVariationDistance(const CountDistribution& p,
                              const CountDistribution& q);

/// Multiplicative pmf jitter on the same support: p'(z) ∝ p(z)(1 + u_z),
/// u_z ~ U(-amplitude, amplitude), renormalized. Small amplitudes yield
/// small total-variation drift; used by the serving drivers
/// (tools/audit_serve, bench/micro_cache) to synthesize drifting alert
/// streams. Requires amplitude in [0, 1).
util::StatusOr<CountDistribution> JitterPmf(const CountDistribution& dist,
                                            double amplitude, util::Rng& rng);

}  // namespace auditgame::prob

#endif  // AUDIT_GAME_PROB_COUNT_DISTRIBUTION_H_
