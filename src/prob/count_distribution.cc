#include "prob/count_distribution.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "math/kernels.h"
#include "util/serializer.h"

namespace auditgame::prob {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  double lo = -12.0, hi = 12.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (NormalCdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

CountDistribution::CountDistribution(int min_value, std::vector<double> pmf)
    : min_value_(min_value), pmf_(std::move(pmf)) {
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  // Guard against accumulated rounding: force the final CDF value to 1.
  if (!cdf_.empty()) cdf_.back() = 1.0;
}

util::StatusOr<CountDistribution> CountDistribution::FromPmf(
    int min_value, std::vector<double> pmf) {
  if (min_value < 0) {
    return util::InvalidArgumentError("alert counts cannot be negative");
  }
  if (pmf.empty()) return util::InvalidArgumentError("empty pmf");
  for (double p : pmf) {
    if (p < 0 || !std::isfinite(p)) {
      return util::InvalidArgumentError("pmf entries must be finite and >= 0");
    }
  }
  // Canonical blocked-order normalization (math/kernels.h): the mass sum
  // and the renormalization are defined in kernel semantics, so the pmf is
  // bit-identical whichever backend is active.
  const double total = math::Sum(pmf.data(), pmf.size());
  if (total <= 0) return util::InvalidArgumentError("pmf sums to zero");
  math::Scale(1.0 / total, pmf.data(), pmf.size());
  return CountDistribution(min_value, std::move(pmf));
}

util::StatusOr<CountDistribution> CountDistribution::DiscretizedGaussian(
    double mean, double stddev, int lo, int hi) {
  if (stddev <= 0) return util::InvalidArgumentError("stddev must be > 0");
  if (lo < 0 || hi < lo) {
    return util::InvalidArgumentError("invalid support [" +
                                      std::to_string(lo) + ", " +
                                      std::to_string(hi) + "]");
  }
  std::vector<double> pmf(static_cast<size_t>(hi - lo) + 1);
  for (int z = lo; z <= hi; ++z) {
    const double upper = NormalCdf((z + 0.5 - mean) / stddev);
    const double lower = NormalCdf((z - 0.5 - mean) / stddev);
    pmf[static_cast<size_t>(z - lo)] = std::max(0.0, upper - lower);
  }
  return FromPmf(lo, std::move(pmf));
}

util::StatusOr<CountDistribution>
CountDistribution::DiscretizedGaussianWithCoverage(double mean, double stddev,
                                                   double coverage) {
  if (coverage <= 0 || coverage >= 1) {
    return util::InvalidArgumentError("coverage must be in (0, 1)");
  }
  if (stddev <= 0) return util::InvalidArgumentError("stddev must be > 0");
  const double z = NormalQuantile(0.5 * (1.0 + coverage));
  const int half_width = static_cast<int>(std::ceil(z * stddev));
  const int center = static_cast<int>(std::llround(mean));
  const int lo = std::max(0, center - half_width);
  const int hi = std::max(lo, center + half_width);
  return DiscretizedGaussian(mean, stddev, lo, hi);
}

util::StatusOr<CountDistribution> CountDistribution::TruncatedPoisson(
    double lambda, double coverage) {
  if (lambda <= 0) return util::InvalidArgumentError("lambda must be > 0");
  if (coverage <= 0 || coverage >= 1) {
    return util::InvalidArgumentError("coverage must be in (0, 1)");
  }
  std::vector<double> pmf;
  double p = std::exp(-lambda);
  double acc = 0.0;
  int z = 0;
  // Accumulate Poisson mass until the requested coverage is reached; the
  // hard cap guards against pathological lambdas.
  const int hard_cap = static_cast<int>(lambda + 20 * std::sqrt(lambda) + 50);
  while (acc < coverage && z <= hard_cap) {
    pmf.push_back(p);
    acc += p;
    ++z;
    p *= lambda / z;
  }
  return FromPmf(0, std::move(pmf));
}

util::StatusOr<CountDistribution> CountDistribution::FromSamples(
    const std::vector<int>& samples) {
  if (samples.empty()) return util::InvalidArgumentError("no samples");
  int lo = samples[0], hi = samples[0];
  for (int s : samples) {
    if (s < 0) return util::InvalidArgumentError("negative count sample");
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  std::vector<double> pmf(static_cast<size_t>(hi - lo) + 1, 0.0);
  for (int s : samples) pmf[static_cast<size_t>(s - lo)] += 1.0;
  return FromPmf(lo, std::move(pmf));
}

CountDistribution CountDistribution::Constant(int value) {
  return CountDistribution(value, {1.0});
}

void CountDistribution::StreamState(util::Serializer& s) {
  s.Section("pcd", 1);
  s.I32(min_value_);
  s.VecF64(pmf_);
  s.VecF64(cdf_);
  if (s.reading() && s.ok() && cdf_.size() != pmf_.size()) {
    s.Fail(util::InvalidArgumentError(
        "CountDistribution: pmf/cdf length mismatch in stream"));
  }
}

double CountDistribution::Pmf(int z) const {
  if (z < min_value_ || z > max_value()) return 0.0;
  return pmf_[static_cast<size_t>(z - min_value_)];
}

double CountDistribution::Cdf(int n) const {
  if (n < min_value_) return 0.0;
  if (n >= max_value()) return 1.0;
  return cdf_[static_cast<size_t>(n - min_value_)];
}

int CountDistribution::UpperBound(double coverage) const {
  for (int z = min_value_; z <= max_value(); ++z) {
    if (Cdf(z) >= coverage) return z;
  }
  return max_value();
}

double CountDistribution::Mean() const {
  math::BlockedAccumulator mean;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    mean.Add(pmf_[i] * (min_value_ + static_cast<int>(i)));
  }
  return mean.Total();
}

double CountDistribution::Variance() const {
  const double mean = Mean();
  math::BlockedAccumulator var;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    const double d = (min_value_ + static_cast<int>(i)) - mean;
    var.Add(pmf_[i] * d * d);
  }
  return var.Total();
}

int CountDistribution::Sample(util::Rng& rng) const {
  const double u = rng.Uniform();
  // Binary search the CDF table.
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const size_t idx =
      it == cdf_.end() ? cdf_.size() - 1
                       : static_cast<size_t>(it - cdf_.begin());
  return min_value_ + static_cast<int>(idx);
}

std::vector<int> SampleJoint(const std::vector<CountDistribution>& dists,
                             util::Rng& rng) {
  std::vector<int> z;
  z.reserve(dists.size());
  for (const auto& d : dists) z.push_back(d.Sample(rng));
  return z;
}

util::StatusOr<CountDistribution> JitterPmf(const CountDistribution& dist,
                                            double amplitude,
                                            util::Rng& rng) {
  if (amplitude < 0.0 || amplitude >= 1.0) {
    return util::InvalidArgumentError("jitter amplitude must be in [0, 1)");
  }
  std::vector<double> pmf;
  pmf.reserve(static_cast<size_t>(dist.support_size()));
  for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
    pmf.push_back(dist.Pmf(z) * (1.0 + rng.Uniform(-amplitude, amplitude)));
  }
  return CountDistribution::FromPmf(dist.min_value(), std::move(pmf));
}

double TotalVariationDistance(const CountDistribution& p,
                              const CountDistribution& q) {
  // Aligned supports (the common serving case: drift between a pmf and its
  // jittered successor) reduce to one AbsDiffSum kernel call over the raw
  // tables; mismatched supports fall back to the padded loop, in the same
  // canonical blocked order.
  if (p.min_value() == q.min_value() && p.max_value() == q.max_value()) {
    return 0.5 * math::AbsDiffSum(p.pmf_data().data(), q.pmf_data().data(),
                                  p.pmf_data().size());
  }
  const int lo = std::min(p.min_value(), q.min_value());
  const int hi = std::max(p.max_value(), q.max_value());
  math::BlockedAccumulator sum;
  for (int z = lo; z <= hi; ++z) {
    sum.Add(std::fabs(p.Pmf(z) - q.Pmf(z)));
  }
  return 0.5 * sum.Total();
}

}  // namespace auditgame::prob
