#ifndef AUDIT_GAME_CORE_MASTER_LP_H_
#define AUDIT_GAME_CORE_MASTER_LP_H_

#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "core/game_lp.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::core {

/// The restricted master LP of the CGGS column-generation loop (Eq. 5 over
/// a growing candidate set Q), kept *alive across pricing iterations*:
///
///   min  sum_g w_g u_g
///   s.t. u_g - sum_{o in Q} p_o Ua(o, b, <g,v>) >= 0   per victim row
///        sum_o p_o = 1,  p_o >= 0
///
/// Each pricing round appends the newly priced ordering as one column
/// (AddOrdering) and re-solves from the previous optimal basis (Solve).
/// Appending a column cannot break primal feasibility of the old basis —
/// the new variable enters nonbasic at zero — so the warm re-solve skips
/// phase 1 entirely and typically needs a handful of pivots, where the
/// pre-incremental path paid a full cold two-phase solve per round.
///
/// The Pal vectors of added orderings are computed against the thresholds
/// installed in `detection` at AddOrdering time; callers that change
/// thresholds must build a fresh master (CGGS installs thresholds once,
/// before its loop).
class RestrictedMasterLp {
 public:
  struct Options {
    /// LP backend for the master solves. The revised simplex supports
    /// basis warm starts; the dense tableau is the cold reference path.
    lp::SimplexBackend backend = lp::SimplexBackend::kRevised;
    /// Re-solve from the previous basis (kRevised only). With false, every
    /// Solve() is a cold start even on the revised backend.
    bool incremental = true;
    /// Tolerances and iteration caps for the underlying solver; the
    /// `backend` field above wins over lp.backend.
    lp::SimplexSolver::Options lp;
    /// Expected number of AddOrdering calls over the master's lifetime —
    /// an allocation hint only (CGGS passes its column cap): the model's
    /// row storage is reserved once in the constructor so appending
    /// columns never regrows it. Appending beyond the hint stays correct.
    int expected_orderings = 0;
  };

  struct Stats {
    int solves = 0;
    /// Solves that resumed from an accepted previous basis.
    int warm_solves = 0;
    /// Simplex iterations summed over all solves (both phases).
    long iterations = 0;
  };

  /// `game` and `detection` must outlive the master.
  RestrictedMasterLp(const CompiledGame& game, const DetectionModel& detection,
                     Options options);
  RestrictedMasterLp(const CompiledGame& game, const DetectionModel& detection)
      : RestrictedMasterLp(game, detection, Options()) {}

  /// Appends `ordering` as a new master column. The caller is responsible
  /// for deduplication (a duplicate column is harmless but wasteful).
  util::Status AddOrdering(const std::vector<int>& ordering);

  int num_orderings() const { return static_cast<int>(po_vars_.size()); }

  /// Solves the current restricted master; requires at least one ordering.
  /// Incremental mode re-solves from the previous optimal basis when one
  /// is available.
  util::StatusOr<RestrictedLpSolution> Solve();

  /// Allocation-reusing form for the pricing loop: `out`'s vectors are
  /// resized in place, so a caller that keeps one RestrictedLpSolution
  /// across rounds (CGGS) re-solves without touching the heap once the
  /// buffers reach steady-state size.
  util::Status SolveInto(RestrictedLpSolution& out);

  const Stats& stats() const { return stats_; }

 private:
  const CompiledGame& game_;
  const DetectionModel& detection_;
  Options options_;

  lp::LpModel model_;
  std::vector<int> po_vars_;
  std::vector<int> u_vars_;
  std::vector<std::vector<int>> victim_rows_;
  int convexity_row_ = -1;
  std::vector<std::vector<double>> pal_per_ordering_;

  lp::Basis basis_;
  bool has_basis_ = false;
  Stats stats_;

  // Reused across solves/additions so the steady-state pricing loop is
  // allocation-free: the revised backend refills `revised_` in place (its
  // basis buffers swap with `basis_` each accepted solve), and AddOrdering
  // evaluates Pal into `pal_prefix_`/`pal_scratch_` before copying the one
  // persistent vector into pal_per_ordering_.
  lp::RevisedSolution revised_;
  DetectionModel::Prefix pal_prefix_;
  std::vector<double> pal_scratch_;
};

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_MASTER_LP_H_
