#include "core/cggs.h"

#include <algorithm>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "core/game_lp.h"
#include "core/master_lp.h"
#include "util/arena.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace auditgame::core {
namespace {

// Dual-weighted utility sum_{g,v} y_{g,v} * Ua(pal, <g,v>) — the variable
// part of a column's reduced cost (the full reduced cost subtracts the
// convexity dual). `pal` holds one entry per type; the pointer form lets
// pricing score arena-backed candidate buffers without materializing
// vectors.
double DualWeightedUtility(const CompiledGame& game,
                           const std::vector<std::vector<double>>& duals,
                           const double* pal) {
  double total = 0.0;
  for (size_t g = 0; g < game.groups.size(); ++g) {
    const auto& victims = game.groups[g].victims;
    for (size_t v = 0; v < victims.size(); ++v) {
      const double y = duals[g][v];
      if (y > 0) total += y * AdversaryUtility(victims[v], pal);
    }
  }
  return total;
}

// True iff `ordering` is a permutation of {0 .. t_count-1}. Warm-start
// orderings arrive from cached policies that may have been solved for a
// different instance shape; anything else would corrupt the master LP.
bool IsValidOrdering(const std::vector<int>& ordering, int t_count) {
  if (static_cast<int>(ordering.size()) != t_count) return false;
  std::vector<bool> seen(static_cast<size_t>(t_count), false);
  for (int t : ordering) {
    if (t < 0 || t >= t_count || seen[static_cast<size_t>(t)]) return false;
    seen[static_cast<size_t>(t)] = true;
  }
  return true;
}

// Seed of the Rng that shuffles probe candidate `probe` of pricing round
// `round`: a pure function of the solve seed and the candidate's position,
// so the probe set is identical no matter which thread generates it (and
// identical between the serial and parallel paths).
uint64_t ProbeSeed(uint64_t seed, int round, int probe) {
  util::Fnv1a hash(seed);
  hash.AppendU64(static_cast<uint64_t>(round));
  hash.AppendU64(static_cast<uint64_t>(probe));
  return hash.value();
}

// Runs fn(chunk) for chunk in [0, num_chunks) — inline when `pool` is null
// or there is only one chunk, fanned across the pool otherwise. Callers
// write results into slots preassigned by chunk, so the outcome does not
// depend on scheduling; Wait-for-all happens via the futures.
template <typename Fn>
void RunChunks(util::ThreadPool* pool, int num_chunks, const Fn& fn) {
  if (pool == nullptr || num_chunks <= 1) {
    for (int chunk = 0; chunk < num_chunks; ++chunk) fn(chunk);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(num_chunks));
  for (int chunk = 0; chunk < num_chunks; ++chunk) {
    futures.push_back(pool->Submit([&fn, chunk] { fn(chunk); }));
  }
  // Drain every chunk before propagating a failure: rethrowing from the
  // first get() would unwind the caller's slots while later chunks still
  // reference them.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

// Greedy pricing (Algorithm 1, lines 4-7): grow an ordering one type at a
// time, always appending the type that minimizes the dual-weighted utility
// of the partial ordering (un-placed types contribute Pal = 0). Each step's
// per-type candidate scores are independent; with a pool they are computed
// in contiguous chunks into per-type slots (each chunk scoring against its
// own copy of the placed-prefix Pal vector, so the arithmetic per candidate
// is exactly the serial path's), then reduced to the minimum score with
// ties broken by the smallest type index.
// Every buffer is carved from `arena` up front (and rewound on return), so
// steady-state pricing rounds run with zero heap allocations: the chunk-
// local Pal copies live in rows of one block preassigned by chunk index —
// never by thread identity — which keeps the arithmetic, and therefore the
// result, bit-identical across thread counts. `prefix` and `ordering_out`
// are caller-owned scratch reused across rounds.
void GreedyOrdering(const CompiledGame& game, const DetectionModel& detection,
                    const std::vector<std::vector<double>>& duals,
                    util::ThreadPool* pool, int max_chunks,
                    util::Arena& arena, DetectionModel::Prefix& prefix,
                    std::vector<int>& ordering_out) {
  const int t_count = game.num_types;
  ordering_out.clear();
  ordering_out.reserve(static_cast<size_t>(t_count));
  const int num_chunks = pool == nullptr ? 1 : std::min(max_chunks, t_count);

  util::ArenaScope scope(arena);
  const size_t t_size = static_cast<size_t>(t_count);
  uint8_t* placed = arena.AllocateArray<uint8_t>(t_size);
  double* pal = arena.AllocateArray<double>(t_size);
  double* scores = arena.AllocateArray<double>(t_size);
  double* candidate_pals = arena.AllocateArray<double>(t_size);
  // Chunk-local Pal rows, carved before the parallel region; workers never
  // call Allocate.
  double* chunk_pals =
      arena.AllocateArray<double>(static_cast<size_t>(num_chunks) * t_size);
  std::memset(placed, 0, t_size * sizeof(uint8_t));
  for (size_t t = 0; t < t_size; ++t) pal[t] = 0.0;

  detection.ResetPrefix(prefix);
  for (int step = 0; step < t_count; ++step) {
    RunChunks(pool, num_chunks, [&](int chunk) {
      const int begin = chunk * t_count / num_chunks;
      const int end = (chunk + 1) * t_count / num_chunks;
      double* local_pal = chunk_pals + static_cast<size_t>(chunk) * t_size;
      std::memcpy(local_pal, pal, t_size * sizeof(double));
      for (int t = begin; t < end; ++t) {
        if (placed[t]) continue;
        const double candidate_pal = detection.PalGivenPrefix(prefix, t);
        candidate_pals[t] = candidate_pal;
        local_pal[t] = candidate_pal;
        scores[t] = DualWeightedUtility(game, duals, local_pal);
        local_pal[t] = 0.0;
      }
    });
    int best_type = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (int t = 0; t < t_count; ++t) {
      if (placed[t]) continue;
      if (scores[t] < best_score) {
        best_score = scores[t];
        best_type = t;
      }
    }
    placed[best_type] = 1;
    pal[best_type] = candidate_pals[best_type];
    ordering_out.push_back(best_type);
    if (step + 1 < t_count) detection.ExtendPrefix(prefix, best_type);
  }
}

}  // namespace

util::StatusOr<CggsResult> SolveCggs(const CompiledGame& game,
                                     DetectionModel& detection,
                                     const std::vector<double>& thresholds,
                                     const CggsOptions& options) {
  RETURN_IF_ERROR(detection.SetThresholds(thresholds));

  // One pool for the whole solve — the caller's shared pool when provided,
  // a locally owned one otherwise; null selects the inline serial path.
  // Work is chunked by pricing_threads (never by pool size), and every
  // pricing round runs the same per-candidate arithmetic and the same
  // deterministic reductions, so the result is bit-for-bit independent of
  // pricing_threads and of which pool runs it (see CggsOptions).
  util::ThreadPool* pool = nullptr;
  std::unique_ptr<util::ThreadPool> owned_pool;
  if (options.pricing_threads > 1) {
    pool = options.pricing_pool;
    if (pool == nullptr) {
      owned_pool = std::make_unique<util::ThreadPool>(options.pricing_threads);
      pool = owned_pool.get();
    }
  }

  // Scratch workspace for the whole solve — shared (caller-provided) or
  // owned. Slot 0 backs the serial sections: greedy pricing buffers and
  // the master LP's revised-simplex working memory, which alternate and
  // nest their ArenaScopes LIFO.
  util::WorkspacePool* workspace = options.workspace;
  std::unique_ptr<util::WorkspacePool> owned_workspace;
  if (workspace == nullptr) {
    owned_workspace = std::make_unique<util::WorkspacePool>();
    workspace = owned_workspace.get();
  }
  workspace->Prepare(1);
  util::Arena& arena = workspace->Get(0);

  // Q starts from the warm-start set — deduplicated, and with orderings
  // that are not permutations of this game's type set silently dropped
  // (a cached seed may predate an instance reshape) — or the identity
  // ordering when no valid seed remains.
  // Membership in Q is checked by linear scan: |Q| is capped at
  // max_columns and the per-round check count is tiny next to pricing, so
  // a scan beats the per-insert node + key-copy allocations of a set.
  std::vector<std::vector<int>> columns;
  columns.reserve(static_cast<size_t>(std::max(1, options.max_columns)));
  const auto in_columns = [&columns](const std::vector<int>& ordering) {
    for (const std::vector<int>& column : columns) {
      if (column == ordering) return true;
    }
    return false;
  };
  for (const std::vector<int>& ordering : options.initial_orderings) {
    if (!IsValidOrdering(ordering, game.num_types)) continue;
    if (in_columns(ordering)) continue;
    columns.push_back(ordering);
  }
  if (columns.empty()) {
    std::vector<int> identity(game.num_types);
    std::iota(identity.begin(), identity.end(), 0);
    columns.push_back(identity);
  }

  // The restricted master lives across all pricing iterations: every new
  // column is appended to it, and (in the default incremental mode) each
  // re-solve resumes from the previous optimal basis instead of paying a
  // cold two-phase solve per round.
  RestrictedMasterLp::Options master_options;
  if (options.master_mode == CggsOptions::MasterMode::kColdDense) {
    master_options.backend = lp::SimplexBackend::kDenseTableau;
    master_options.incremental = false;
  }
  master_options.lp.workspace = workspace;
  master_options.expected_orderings = options.max_columns;
  RestrictedMasterLp master_lp(game, detection, master_options);
  for (const auto& column : columns) {
    RETURN_IF_ERROR(master_lp.AddOrdering(column));
  }

  CggsResult result;
  RestrictedLpSolution master;

  // Round-persistent scratch: candidate orderings, their reduced-cost
  // slots, and one (prefix, pal) evaluation scratch per candidate slot —
  // preassigned by candidate index, so the parallel sweep touches disjoint
  // state and steady-state rounds are allocation-free.
  const size_t num_candidates = static_cast<size_t>(1 + options.random_probes);
  std::vector<std::vector<int>> candidates(num_candidates);
  std::vector<uint8_t> skip;
  std::vector<double> reduced_costs;
  std::vector<util::Status> statuses;
  struct CandidateScratch {
    DetectionModel::Prefix prefix;
    std::vector<double> pal;
  };
  std::vector<CandidateScratch> eval_scratch(num_candidates);
  DetectionModel::Prefix greedy_prefix;

  for (int round = 0;; ++round) {
    RETURN_IF_ERROR(master_lp.SolveInto(master));
    ++result.lp_solves;
    if (static_cast<int>(columns.size()) >= options.max_columns) break;

    // Price candidates: the greedy ordering plus a few random probes, each
    // probe shuffled by its own pre-seeded Rng.
    util::Timer pricing_timer;
    GreedyOrdering(game, detection, master.victim_duals, pool,
                   options.pricing_threads, arena, greedy_prefix,
                   candidates[0]);
    for (int r = 0; r < options.random_probes; ++r) {
      std::vector<int>& random_ordering = candidates[static_cast<size_t>(r) + 1];
      random_ordering.resize(static_cast<size_t>(game.num_types));
      std::iota(random_ordering.begin(), random_ordering.end(), 0);
      util::Rng probe_rng(ProbeSeed(options.seed, round, r));
      probe_rng.Shuffle(random_ordering);
    }

    // Reduced costs of the novel candidates, one preassigned slot each.
    skip.assign(num_candidates, 0);
    for (size_t i = 0; i < num_candidates; ++i) {
      skip[i] = in_columns(candidates[i]) ? 1 : 0;  // already in Q
    }
    reduced_costs.assign(num_candidates, 0.0);
    statuses.assign(num_candidates, util::OkStatus());
    RunChunks(pool, static_cast<int>(num_candidates), [&](int i) {
      const size_t slot = static_cast<size_t>(i);
      if (skip[slot]) return;
      CandidateScratch& scratch = eval_scratch[slot];
      const util::Status status = detection.DetectionProbabilitiesInto(
          candidates[slot], scratch.prefix, scratch.pal);
      if (!status.ok()) {
        statuses[slot] = status;
        return;
      }
      reduced_costs[slot] =
          DualWeightedUtility(game, master.victim_duals,
                              scratch.pal.data()) -
          master.convexity_dual;
    });
    for (const util::Status& status : statuses) RETURN_IF_ERROR(status);

    // Deterministic reduction: strictly below the tolerance wins; exact
    // reduced-cost ties go to the lexicographically smallest ordering.
    int best_index = -1;
    double best_rc = -options.reduced_cost_tolerance;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (skip[i]) continue;
      const double rc = reduced_costs[i];
      if (rc < best_rc || (best_index >= 0 && rc == best_rc &&
                           candidates[i] < candidates[static_cast<size_t>(
                                               best_index)])) {
        best_rc = rc;
        best_index = static_cast<int>(i);
      }
    }
    result.pricing_seconds += pricing_timer.ElapsedSeconds();
    if (best_index < 0) break;  // no improving column
    // Copy (not move): the candidate slots keep their buffers for reuse
    // next round; the copy becomes the persistent column.
    std::vector<int> best_candidate = candidates[static_cast<size_t>(best_index)];
    RETURN_IF_ERROR(master_lp.AddOrdering(best_candidate));
    columns.push_back(std::move(best_candidate));
    ++result.columns_generated;
  }

  result.objective = master.objective;
  result.warm_lp_solves = master_lp.stats().warm_solves;
  result.master_lp_iterations = master_lp.stats().iterations;
  result.policy.budget = detection.budget();
  result.policy.thresholds = thresholds;
  for (size_t o = 0; o < columns.size(); ++o) {
    if (master.ordering_probs[o] > 1e-9) {
      result.policy.orderings.push_back(columns[o]);
      result.policy.probabilities.push_back(master.ordering_probs[o]);
    }
  }
  result.columns = std::move(columns);
  double total = 0.0;
  for (double p : result.policy.probabilities) total += p;
  if (total > 0) {
    for (double& p : result.policy.probabilities) p /= total;
  }
  return result;
}

}  // namespace auditgame::core
