#include "core/cggs.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "core/game_lp.h"
#include "core/master_lp.h"
#include "util/random.h"

namespace auditgame::core {
namespace {

// Dual-weighted utility sum_{g,v} y_{g,v} * Ua(pal, <g,v>) — the variable
// part of a column's reduced cost (the full reduced cost subtracts the
// convexity dual).
double DualWeightedUtility(const CompiledGame& game,
                           const std::vector<std::vector<double>>& duals,
                           const std::vector<double>& pal) {
  double total = 0.0;
  for (size_t g = 0; g < game.groups.size(); ++g) {
    const auto& victims = game.groups[g].victims;
    for (size_t v = 0; v < victims.size(); ++v) {
      const double y = duals[g][v];
      if (y > 0) total += y * AdversaryUtility(victims[v], pal);
    }
  }
  return total;
}

// True iff `ordering` is a permutation of {0 .. t_count-1}. Warm-start
// orderings arrive from cached policies that may have been solved for a
// different instance shape; anything else would corrupt the master LP.
bool IsValidOrdering(const std::vector<int>& ordering, int t_count) {
  if (static_cast<int>(ordering.size()) != t_count) return false;
  std::vector<bool> seen(static_cast<size_t>(t_count), false);
  for (int t : ordering) {
    if (t < 0 || t >= t_count || seen[static_cast<size_t>(t)]) return false;
    seen[static_cast<size_t>(t)] = true;
  }
  return true;
}

// Greedy pricing (Algorithm 1, lines 4-7): grow an ordering one type at a
// time, always appending the type that minimizes the dual-weighted utility
// of the partial ordering (un-placed types contribute Pal = 0).
std::vector<int> GreedyOrdering(const CompiledGame& game,
                                const DetectionModel& detection,
                                const std::vector<std::vector<double>>& duals) {
  const int t_count = game.num_types;
  std::vector<int> ordering;
  ordering.reserve(t_count);
  std::vector<bool> placed(t_count, false);
  std::vector<double> pal(t_count, 0.0);
  DetectionModel::Prefix prefix = detection.EmptyPrefix();
  for (int step = 0; step < t_count; ++step) {
    int best_type = -1;
    double best_score = std::numeric_limits<double>::infinity();
    double best_pal = 0.0;
    for (int t = 0; t < t_count; ++t) {
      if (placed[t]) continue;
      const double candidate_pal = detection.PalGivenPrefix(prefix, t);
      pal[t] = candidate_pal;
      const double score = DualWeightedUtility(game, duals, pal);
      pal[t] = 0.0;
      if (score < best_score) {
        best_score = score;
        best_type = t;
        best_pal = candidate_pal;
      }
    }
    placed[best_type] = true;
    pal[best_type] = best_pal;
    ordering.push_back(best_type);
    if (step + 1 < t_count) detection.ExtendPrefix(prefix, best_type);
  }
  return ordering;
}

}  // namespace

util::StatusOr<CggsResult> SolveCggs(const CompiledGame& game,
                                     DetectionModel& detection,
                                     const std::vector<double>& thresholds,
                                     const CggsOptions& options) {
  RETURN_IF_ERROR(detection.SetThresholds(thresholds));
  util::Rng rng(options.seed);

  // Q starts from the warm-start set — deduplicated, and with orderings
  // that are not permutations of this game's type set silently dropped
  // (a cached seed may predate an instance reshape) — or the identity
  // ordering when no valid seed remains.
  std::vector<std::vector<int>> columns;
  std::set<std::vector<int>> column_set;
  for (const std::vector<int>& ordering : options.initial_orderings) {
    if (!IsValidOrdering(ordering, game.num_types)) continue;
    if (!column_set.insert(ordering).second) continue;
    columns.push_back(ordering);
  }
  if (columns.empty()) {
    std::vector<int> identity(game.num_types);
    std::iota(identity.begin(), identity.end(), 0);
    columns.push_back(identity);
    column_set.insert(identity);
  }

  // The restricted master lives across all pricing iterations: every new
  // column is appended to it, and (in the default incremental mode) each
  // re-solve resumes from the previous optimal basis instead of paying a
  // cold two-phase solve per round.
  RestrictedMasterLp::Options master_options;
  if (options.master_mode == CggsOptions::MasterMode::kColdDense) {
    master_options.backend = lp::SimplexBackend::kDenseTableau;
    master_options.incremental = false;
  }
  RestrictedMasterLp master_lp(game, detection, master_options);
  for (const auto& column : columns) {
    RETURN_IF_ERROR(master_lp.AddOrdering(column));
  }

  CggsResult result;
  RestrictedLpSolution master;
  for (;;) {
    ASSIGN_OR_RETURN(master, master_lp.Solve());
    ++result.lp_solves;
    if (static_cast<int>(columns.size()) >= options.max_columns) break;

    // Price candidates: the greedy ordering plus a few random probes.
    std::vector<std::vector<int>> candidates;
    candidates.push_back(GreedyOrdering(game, detection, master.victim_duals));
    for (int r = 0; r < options.random_probes; ++r) {
      std::vector<int> random_ordering(game.num_types);
      std::iota(random_ordering.begin(), random_ordering.end(), 0);
      rng.Shuffle(random_ordering);
      candidates.push_back(std::move(random_ordering));
    }

    std::vector<int> best_candidate;
    double best_rc = -options.reduced_cost_tolerance;
    for (auto& candidate : candidates) {
      if (column_set.count(candidate)) continue;  // already in Q
      ASSIGN_OR_RETURN(std::vector<double> pal,
                       detection.DetectionProbabilities(candidate));
      const double rc =
          DualWeightedUtility(game, master.victim_duals, pal) -
          master.convexity_dual;
      if (rc < best_rc) {
        best_rc = rc;
        best_candidate = std::move(candidate);
      }
    }
    if (best_candidate.empty()) break;  // no improving column
    RETURN_IF_ERROR(master_lp.AddOrdering(best_candidate));
    column_set.insert(best_candidate);
    columns.push_back(std::move(best_candidate));
    ++result.columns_generated;
  }

  result.objective = master.objective;
  result.warm_lp_solves = master_lp.stats().warm_solves;
  result.master_lp_iterations = master_lp.stats().iterations;
  result.columns = columns;
  result.policy.budget = detection.budget();
  result.policy.thresholds = thresholds;
  for (size_t o = 0; o < columns.size(); ++o) {
    if (master.ordering_probs[o] > 1e-9) {
      result.policy.orderings.push_back(columns[o]);
      result.policy.probabilities.push_back(master.ordering_probs[o]);
    }
  }
  double total = 0.0;
  for (double p : result.policy.probabilities) total += p;
  if (total > 0) {
    for (double& p : result.policy.probabilities) p /= total;
  }
  return result;
}

}  // namespace auditgame::core
