#include "core/game_io.h"

#include <cmath>

namespace auditgame::core {

using util::JsonValue;

namespace {

JsonValue DistributionToJson(const prob::CountDistribution& dist) {
  // Serialize as an explicit pmf: lossless for every construction.
  JsonValue::Object counts;
  counts["kind"] = JsonValue("pmf");
  counts["min"] = JsonValue(dist.min_value());
  JsonValue::Array pmf;
  for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
    pmf.push_back(JsonValue(dist.Pmf(z)));
  }
  counts["pmf"] = JsonValue(std::move(pmf));
  return JsonValue(std::move(counts));
}

util::StatusOr<prob::CountDistribution> DistributionFromJson(
    const JsonValue& json) {
  ASSIGN_OR_RETURN(std::string kind, json.GetString("kind"));
  if (kind == "pmf") {
    ASSIGN_OR_RETURN(double min_value, json.GetNumber("min"));
    const JsonValue* pmf_json = json.Find("pmf");
    if (pmf_json == nullptr || !pmf_json->is_array()) {
      return util::InvalidArgumentError("pmf distribution needs a 'pmf' array");
    }
    std::vector<double> pmf;
    for (const JsonValue& p : pmf_json->as_array()) {
      if (!p.is_number()) {
        return util::InvalidArgumentError("pmf entries must be numbers");
      }
      pmf.push_back(p.as_number());
    }
    return prob::CountDistribution::FromPmf(static_cast<int>(min_value),
                                            std::move(pmf));
  }
  if (kind == "gaussian") {
    ASSIGN_OR_RETURN(double mean, json.GetNumber("mean"));
    ASSIGN_OR_RETURN(double stddev, json.GetNumber("stddev"));
    const JsonValue* min_json = json.Find("min");
    const JsonValue* max_json = json.Find("max");
    if (min_json != nullptr && max_json != nullptr) {
      if (!min_json->is_number() || !max_json->is_number()) {
        return util::InvalidArgumentError("gaussian min/max must be numbers");
      }
      return prob::CountDistribution::DiscretizedGaussian(
          mean, stddev, static_cast<int>(min_json->as_number()),
          static_cast<int>(max_json->as_number()));
    }
    double coverage = 0.995;
    if (const JsonValue* c = json.Find("coverage"); c != nullptr) {
      if (!c->is_number()) {
        return util::InvalidArgumentError("coverage must be a number");
      }
      coverage = c->as_number();
    }
    return prob::CountDistribution::DiscretizedGaussianWithCoverage(
        mean, stddev, coverage);
  }
  if (kind == "poisson") {
    ASSIGN_OR_RETURN(double lambda, json.GetNumber("lambda"));
    return prob::CountDistribution::TruncatedPoisson(lambda);
  }
  if (kind == "constant") {
    ASSIGN_OR_RETURN(double value, json.GetNumber("value"));
    return prob::CountDistribution::Constant(static_cast<int>(value));
  }
  return util::InvalidArgumentError("unknown distribution kind '" + kind + "'");
}

}  // namespace

JsonValue GameToJson(const GameInstance& instance) {
  JsonValue::Object root;
  JsonValue::Array types;
  for (int t = 0; t < instance.num_types(); ++t) {
    JsonValue::Object type;
    type["name"] = JsonValue(instance.type_names[static_cast<size_t>(t)]);
    type["audit_cost"] =
        JsonValue(instance.audit_costs[static_cast<size_t>(t)]);
    type["counts"] =
        DistributionToJson(instance.alert_distributions[static_cast<size_t>(t)]);
    types.push_back(JsonValue(std::move(type)));
  }
  root["types"] = JsonValue(std::move(types));

  JsonValue::Array adversaries;
  for (const Adversary& adversary : instance.adversaries) {
    JsonValue::Object a;
    a["attack_probability"] = JsonValue(adversary.attack_probability);
    a["can_opt_out"] = JsonValue(adversary.can_opt_out);
    JsonValue::Array victims;
    for (const VictimProfile& victim : adversary.victims) {
      JsonValue::Object v;
      JsonValue::Array probs;
      for (double p : victim.type_probs) probs.push_back(JsonValue(p));
      v["type_probs"] = JsonValue(std::move(probs));
      v["benefit"] = JsonValue(victim.benefit);
      v["penalty"] = JsonValue(victim.penalty);
      v["attack_cost"] = JsonValue(victim.attack_cost);
      victims.push_back(JsonValue(std::move(v)));
    }
    a["victims"] = JsonValue(std::move(victims));
    adversaries.push_back(JsonValue(std::move(a)));
  }
  root["adversaries"] = JsonValue(std::move(adversaries));
  return JsonValue(std::move(root));
}

util::StatusOr<GameInstance> GameFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return util::InvalidArgumentError("game JSON must be an object");
  }
  GameInstance instance;
  const JsonValue* types = json.Find("types");
  if (types == nullptr || !types->is_array() || types->as_array().empty()) {
    return util::InvalidArgumentError("game needs a non-empty 'types' array");
  }
  for (const JsonValue& type : types->as_array()) {
    ASSIGN_OR_RETURN(std::string name, type.GetString("name"));
    ASSIGN_OR_RETURN(double audit_cost, type.GetNumber("audit_cost"));
    const JsonValue* counts = type.Find("counts");
    if (counts == nullptr) {
      return util::InvalidArgumentError("type '" + name + "' needs 'counts'");
    }
    ASSIGN_OR_RETURN(prob::CountDistribution dist,
                     DistributionFromJson(*counts));
    instance.type_names.push_back(std::move(name));
    instance.audit_costs.push_back(audit_cost);
    instance.alert_distributions.push_back(std::move(dist));
  }

  const JsonValue* adversaries = json.Find("adversaries");
  if (adversaries == nullptr || !adversaries->is_array()) {
    return util::InvalidArgumentError("game needs an 'adversaries' array");
  }
  for (const JsonValue& a : adversaries->as_array()) {
    Adversary adversary;
    ASSIGN_OR_RETURN(adversary.attack_probability,
                     a.GetNumber("attack_probability"));
    if (const JsonValue* opt = a.Find("can_opt_out"); opt != nullptr) {
      if (!opt->is_bool()) {
        return util::InvalidArgumentError("can_opt_out must be a bool");
      }
      adversary.can_opt_out = opt->as_bool();
    }
    const JsonValue* victims = a.Find("victims");
    if (victims == nullptr || !victims->is_array()) {
      return util::InvalidArgumentError("adversary needs a 'victims' array");
    }
    for (const JsonValue& v : victims->as_array()) {
      VictimProfile victim;
      const JsonValue* probs = v.Find("type_probs");
      if (probs == nullptr || !probs->is_array()) {
        return util::InvalidArgumentError("victim needs 'type_probs'");
      }
      for (const JsonValue& p : probs->as_array()) {
        if (!p.is_number()) {
          return util::InvalidArgumentError("type_probs must be numbers");
        }
        victim.type_probs.push_back(p.as_number());
      }
      ASSIGN_OR_RETURN(victim.benefit, v.GetNumber("benefit"));
      ASSIGN_OR_RETURN(victim.penalty, v.GetNumber("penalty"));
      ASSIGN_OR_RETURN(victim.attack_cost, v.GetNumber("attack_cost"));
      adversary.victims.push_back(std::move(victim));
    }
    instance.adversaries.push_back(std::move(adversary));
  }
  RETURN_IF_ERROR(instance.Validate());
  return instance;
}

util::StatusOr<GameInstance> ParseGame(const std::string& json_text) {
  ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(json_text));
  return GameFromJson(json);
}

namespace {

void AppendAdversaries(util::FingerprintBuilder& fp,
                       const GameInstance& instance) {
  fp.AppendI64(static_cast<int64_t>(instance.adversaries.size()));
  for (const Adversary& adversary : instance.adversaries) {
    fp.AppendDouble(adversary.attack_probability);
    fp.AppendU64(adversary.can_opt_out ? 1 : 0);
    fp.AppendI64(static_cast<int64_t>(adversary.victims.size()));
    for (const VictimProfile& victim : adversary.victims) {
      fp.AppendI64(static_cast<int64_t>(victim.type_probs.size()));
      for (double p : victim.type_probs) fp.AppendDouble(p);
      fp.AppendDouble(victim.benefit);
      fp.AppendDouble(victim.penalty);
      fp.AppendDouble(victim.attack_cost);
    }
  }
}

}  // namespace

util::Fingerprint FingerprintGame(const GameInstance& instance) {
  util::FingerprintBuilder fp;
  fp.AppendI64(instance.num_types());
  for (int t = 0; t < instance.num_types(); ++t) {
    const auto st = static_cast<size_t>(t);
    fp.AppendString(instance.type_names[st]);
    fp.AppendDouble(instance.audit_costs[st]);
    const prob::CountDistribution& dist = instance.alert_distributions[st];
    fp.AppendI64(dist.min_value());
    fp.AppendI64(dist.support_size());
    for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
      fp.AppendDouble(dist.Pmf(z));
    }
  }
  AppendAdversaries(fp, instance);
  return fp.Build();
}

util::Fingerprint FingerprintGameStructure(const GameInstance& instance) {
  util::FingerprintBuilder fp;
  fp.AppendString("structure");  // never collides with FingerprintGame
  fp.AppendI64(instance.num_types());
  AppendAdversaries(fp, instance);
  return fp.Build();
}

std::string SerializeGame(const GameInstance& instance, int indent) {
  return GameToJson(instance).Dump(indent);
}

JsonValue PolicyToJson(const AuditPolicy& policy) {
  JsonValue::Object root;
  root["budget"] = JsonValue(policy.budget);
  JsonValue::Array thresholds;
  for (double b : policy.thresholds) thresholds.push_back(JsonValue(b));
  root["thresholds"] = JsonValue(std::move(thresholds));
  JsonValue::Array orderings;
  for (const auto& o : policy.orderings) {
    JsonValue::Array ordering;
    for (int t : o) ordering.push_back(JsonValue(t));
    orderings.push_back(JsonValue(std::move(ordering)));
  }
  root["orderings"] = JsonValue(std::move(orderings));
  JsonValue::Array probabilities;
  for (double p : policy.probabilities) probabilities.push_back(JsonValue(p));
  root["probabilities"] = JsonValue(std::move(probabilities));
  return JsonValue(std::move(root));
}

util::StatusOr<AuditPolicy> PolicyFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return util::InvalidArgumentError("policy JSON must be an object");
  }
  AuditPolicy policy;
  ASSIGN_OR_RETURN(policy.budget, json.GetNumber("budget"));
  const JsonValue* thresholds = json.Find("thresholds");
  const JsonValue* orderings = json.Find("orderings");
  const JsonValue* probabilities = json.Find("probabilities");
  if (thresholds == nullptr || !thresholds->is_array() ||
      orderings == nullptr || !orderings->is_array() ||
      probabilities == nullptr || !probabilities->is_array()) {
    return util::InvalidArgumentError(
        "policy needs 'thresholds', 'orderings' and 'probabilities' arrays");
  }
  for (const JsonValue& b : thresholds->as_array()) {
    if (!b.is_number()) {
      return util::InvalidArgumentError("thresholds must be numbers");
    }
    policy.thresholds.push_back(b.as_number());
  }
  for (const JsonValue& o : orderings->as_array()) {
    if (!o.is_array()) {
      return util::InvalidArgumentError("orderings must be arrays");
    }
    std::vector<int> ordering;
    for (const JsonValue& t : o.as_array()) {
      if (!t.is_number()) {
        return util::InvalidArgumentError("ordering entries must be numbers");
      }
      ordering.push_back(static_cast<int>(t.as_number()));
    }
    policy.orderings.push_back(std::move(ordering));
  }
  for (const JsonValue& p : probabilities->as_array()) {
    if (!p.is_number()) {
      return util::InvalidArgumentError("probabilities must be numbers");
    }
    policy.probabilities.push_back(p.as_number());
  }
  RETURN_IF_ERROR(
      policy.Validate(static_cast<int>(policy.thresholds.size())));
  return policy;
}

util::StatusOr<AuditPolicy> ParsePolicy(const std::string& json_text) {
  ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(json_text));
  return PolicyFromJson(json);
}

std::string SerializePolicy(const AuditPolicy& policy, int indent) {
  return PolicyToJson(policy).Dump(indent);
}

}  // namespace auditgame::core
