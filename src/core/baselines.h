#ifndef AUDIT_GAME_CORE_BASELINES_H_
#define AUDIT_GAME_CORE_BASELINES_H_

#include <cstdint>
#include <vector>

#include "core/cggs.h"
#include "core/detection.h"
#include "core/game.h"
#include "core/policy.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::core {

/// The three non-game-theoretic baselines of Section V-B. Each returns the
/// auditor's loss against best-responding adversaries so the benches can
/// plot them next to the proposed model (Figures 1 and 2).

/// "Audit with random orders of alert types": the thresholds are taken
/// from the proposed model (the paper uses ISHM with eps = 0.1), but the
/// ordering is drawn uniformly from up to `num_orders` distinct random
/// permutations (paper: 2000 without replacement).
struct RandomOrderResult {
  double auditor_loss = 0.0;
  AuditPolicy policy;
};
util::StatusOr<RandomOrderResult> RandomOrderBaseline(
    const CompiledGame& game, DetectionModel& detection,
    const std::vector<double>& thresholds, int num_orders, uint64_t seed);

/// "Audit with random thresholds": thresholds are drawn uniformly from
/// integer vectors with b_t <= J_t and sum_t b_t C_t >= B; for each draw the
/// auditor still optimizes the ordering mixture (via CGGS). Reports the
/// loss averaged over draws (paper: 5000 draws; the benches default lower —
/// see docs/DESIGN.md "Dataset substitutions").
struct RandomThresholdResult {
  double mean_auditor_loss = 0.0;
  double min_auditor_loss = 0.0;
  double max_auditor_loss = 0.0;
  int draws = 0;
};
util::StatusOr<RandomThresholdResult> RandomThresholdBaseline(
    const GameInstance& instance, const CompiledGame& game,
    DetectionModel& detection, int num_draws, uint64_t seed,
    const CggsOptions& cggs_options = {});

/// "Audit based on benefit": a deterministic pure strategy that audits
/// types in decreasing order of the benefit a successful attack of that
/// type yields (the auditor's loss), exhausting each bin before moving on
/// (thresholds = B for every type).
struct GreedyBenefitResult {
  double auditor_loss = 0.0;
  AuditPolicy policy;
  std::vector<int> ordering;
};
util::StatusOr<GreedyBenefitResult> GreedyByBenefitBaseline(
    const CompiledGame& game, DetectionModel& detection);

/// Helper: per-type "benefit" used by the greedy baseline — the maximum
/// adversary benefit among victims predominantly mapping to that type.
std::vector<double> PerTypeBenefits(const CompiledGame& game);

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_BASELINES_H_
