#include "core/brute_force.h"

#include <limits>
#include <numeric>

#include "core/game_lp.h"
#include "util/combinatorics.h"

namespace auditgame::core {

util::StatusOr<BruteForceResult> SolveBruteForce(
    const GameInstance& instance, double budget,
    const BruteForceOptions& options,
    DetectionModel::Options detection_options) {
  ASSIGN_OR_RETURN(CompiledGame game, Compile(instance));
  ASSIGN_OR_RETURN(DetectionModel detection,
                   DetectionModel::Create(instance, budget, detection_options));
  return SolveBruteForce(instance, game, detection, options);
}

util::StatusOr<BruteForceResult> SolveBruteForce(
    const GameInstance& instance, const CompiledGame& game,
    DetectionModel& detection, const BruteForceOptions& options) {
  const double budget = detection.budget();
  const int t_count = instance.num_types();
  std::vector<int> upper(t_count);
  for (int t = 0; t < t_count; ++t) {
    upper[t] = instance.alert_distributions[t].max_value();
  }

  BruteForceResult result;
  result.objective = std::numeric_limits<double>::infinity();
  result.search_space = 1;
  for (int t = 0; t < t_count; ++t) {
    result.search_space *= static_cast<uint64_t>(upper[t]) + 1;
  }

  util::Status failure = util::OkStatus();
  util::ForEachIntegerVector(upper, [&](const std::vector<int>& counts) {
    if (options.require_sum_at_least_budget) {
      double total = 0.0;
      for (int t = 0; t < t_count; ++t) {
        total += counts[t] * instance.audit_costs[t];
      }
      if (total < budget) return true;  // skip: wastes budget
    }
    std::vector<double> thresholds(t_count);
    for (int t = 0; t < t_count; ++t) {
      thresholds[t] = counts[t] * instance.audit_costs[t];
    }
    auto full = SolveFullGameLp(game, detection, thresholds);
    if (!full.ok()) {
      failure = full.status();
      return false;
    }
    ++result.vectors_evaluated;
    if (full->objective < result.objective - 1e-12) {
      result.objective = full->objective;
      result.thresholds = counts;
      result.policy = std::move(full->policy);
    }
    return true;
  });
  RETURN_IF_ERROR(failure);
  if (result.vectors_evaluated == 0) {
    return util::InvalidArgumentError(
        "no feasible threshold vector (budget exceeds total upper bounds?)");
  }
  return result;
}

}  // namespace auditgame::core
