#include "core/baselines.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "util/combinatorics.h"
#include "util/random.h"

namespace auditgame::core {

util::StatusOr<RandomOrderResult> RandomOrderBaseline(
    const CompiledGame& game, DetectionModel& detection,
    const std::vector<double>& thresholds, int num_orders, uint64_t seed) {
  if (num_orders <= 0) {
    return util::InvalidArgumentError("num_orders must be > 0");
  }
  util::Rng rng(seed);
  const int t_count = game.num_types;
  const uint64_t total_orders =
      t_count <= 20 ? util::Factorial(t_count)
                    : std::numeric_limits<uint64_t>::max();
  const uint64_t want =
      std::min<uint64_t>(static_cast<uint64_t>(num_orders), total_orders);

  std::set<std::vector<int>> sampled;
  std::vector<int> ordering(t_count);
  std::iota(ordering.begin(), ordering.end(), 0);
  // Rejection sampling without replacement; the cap is far below |T|! in
  // all realistic uses so this terminates quickly.
  uint64_t guard = 0;
  while (sampled.size() < want && guard < want * 200 + 1000) {
    rng.Shuffle(ordering);
    sampled.insert(ordering);
    ++guard;
  }

  RandomOrderResult result;
  result.policy.budget = detection.budget();
  result.policy.thresholds = thresholds;
  const double p = 1.0 / static_cast<double>(sampled.size());
  for (const auto& o : sampled) {
    result.policy.orderings.push_back(o);
    result.policy.probabilities.push_back(p);
  }
  ASSIGN_OR_RETURN(PolicyEvaluation eval,
                   EvaluatePolicy(game, detection, result.policy));
  result.auditor_loss = eval.auditor_loss;
  return result;
}

util::StatusOr<RandomThresholdResult> RandomThresholdBaseline(
    const GameInstance& instance, const CompiledGame& game,
    DetectionModel& detection, int num_draws, uint64_t seed,
    const CggsOptions& cggs_options) {
  if (num_draws <= 0) {
    return util::InvalidArgumentError("num_draws must be > 0");
  }
  util::Rng rng(seed);
  const int t_count = instance.num_types();
  std::vector<int> upper(t_count);
  double upper_budget = 0.0;
  for (int t = 0; t < t_count; ++t) {
    upper[t] = instance.alert_distributions[t].max_value();
    upper_budget += upper[t] * instance.audit_costs[t];
  }
  if (upper_budget < detection.budget()) {
    return util::InvalidArgumentError(
        "budget exceeds the total threshold upper bounds");
  }

  RandomThresholdResult result;
  result.min_auditor_loss = std::numeric_limits<double>::infinity();
  result.max_auditor_loss = -std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (int draw = 0; draw < num_draws; ++draw) {
    // Rejection-sample an integer vector with sum b_t C_t >= B.
    std::vector<double> thresholds(t_count);
    for (int attempt = 0;; ++attempt) {
      double sum = 0.0;
      for (int t = 0; t < t_count; ++t) {
        const int audits = static_cast<int>(rng.UniformInt(
            static_cast<uint64_t>(upper[t]) + 1));
        thresholds[t] = audits * instance.audit_costs[t];
        sum += thresholds[t];
      }
      if (sum >= detection.budget()) break;
      if (attempt > 100000) {
        return util::InternalError("threshold rejection sampling stalled");
      }
    }
    CggsOptions local = cggs_options;
    local.seed = rng();
    ASSIGN_OR_RETURN(CggsResult cggs,
                     SolveCggs(game, detection, thresholds, local));
    total += cggs.objective;
    result.min_auditor_loss = std::min(result.min_auditor_loss, cggs.objective);
    result.max_auditor_loss = std::max(result.max_auditor_loss, cggs.objective);
    ++result.draws;
  }
  result.mean_auditor_loss = total / result.draws;
  return result;
}

std::vector<double> PerTypeBenefits(const CompiledGame& game) {
  std::vector<double> benefit(game.num_types, 0.0);
  for (const auto& group : game.groups) {
    for (const auto& victim : group.victims) {
      // Attribute the victim's benefit to its dominant alert type.
      int dominant = -1;
      double best_p = 0.0;
      for (int t = 0; t < game.num_types; ++t) {
        if (victim.type_probs[t] > best_p) {
          best_p = victim.type_probs[t];
          dominant = t;
        }
      }
      if (dominant >= 0) {
        benefit[dominant] = std::max(benefit[dominant], victim.benefit);
      }
    }
  }
  return benefit;
}

util::StatusOr<GreedyBenefitResult> GreedyByBenefitBaseline(
    const CompiledGame& game, DetectionModel& detection) {
  const int t_count = game.num_types;
  const std::vector<double> benefit = PerTypeBenefits(game);
  GreedyBenefitResult result;
  result.ordering.resize(t_count);
  std::iota(result.ordering.begin(), result.ordering.end(), 0);
  std::stable_sort(result.ordering.begin(), result.ordering.end(),
                   [&benefit](int a, int b) { return benefit[a] > benefit[b]; });

  result.policy.budget = detection.budget();
  result.policy.orderings.push_back(result.ordering);
  result.policy.probabilities.push_back(1.0);
  // Exhaustive auditing: no per-type cap beyond the global budget.
  result.policy.thresholds.assign(t_count, detection.budget());
  ASSIGN_OR_RETURN(PolicyEvaluation eval,
                   EvaluatePolicy(game, detection, result.policy));
  result.auditor_loss = eval.auditor_loss;
  return result;
}

}  // namespace auditgame::core
