#include "core/master_lp.h"

#include <algorithm>
#include <string>
#include <utility>

namespace auditgame::core {

RestrictedMasterLp::RestrictedMasterLp(const CompiledGame& game,
                                       const DetectionModel& detection,
                                       Options options)
    : game_(game), detection_(detection), options_(options) {
  const size_t num_groups = game_.groups.size();
  size_t num_victim_rows = 0;
  for (const auto& group : game_.groups) num_victim_rows += group.victims.size();
  const int expected = std::max(0, options_.expected_orderings);
  model_.Reserve(static_cast<int>(num_groups) + expected,
                 static_cast<int>(num_victim_rows) + 1);
  po_vars_.reserve(static_cast<size_t>(expected));
  pal_per_ordering_.reserve(static_cast<size_t>(expected));
  u_vars_.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    const double lb = game_.groups[g].can_opt_out ? 0.0 : -lp::kInfinity;
    u_vars_.push_back(model_.AddVariable(game_.groups[g].weight, lb,
                                         lp::kInfinity,
                                         "u" + std::to_string(g)));
  }
  victim_rows_.resize(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    const auto& victims = game_.groups[g].victims;
    victim_rows_[g].resize(victims.size());
    for (size_t v = 0; v < victims.size(); ++v) {
      const int row = model_.AddConstraint(
          lp::Sense::kGreaterEqual, 0.0,
          "g" + std::to_string(g) + "v" + std::to_string(v));
      victim_rows_[g][v] = row;
      model_.ReserveRowEntries(row, 1 + expected);
      model_.AddCoefficient(row, u_vars_[g], 1.0);
    }
  }
  convexity_row_ = model_.AddConstraint(lp::Sense::kEqual, 1.0, "conv");
  model_.ReserveRowEntries(convexity_row_, expected);
  // The reused solve buffers track the growing column count; reserving
  // them to the hint keeps the per-round resizes allocation-free too.
  const size_t expected_vars = num_groups + static_cast<size_t>(expected);
  const size_t num_rows = num_victim_rows + 1;
  revised_.solution.primal.reserve(expected_vars);
  revised_.solution.reduced_cost.reserve(expected_vars);
  revised_.solution.dual.reserve(num_rows);
  revised_.basis.structural.reserve(expected_vars);
  revised_.basis.logical.reserve(num_rows);
  basis_.structural.reserve(expected_vars);
  basis_.logical.reserve(num_rows);
}

util::Status RestrictedMasterLp::AddOrdering(
    const std::vector<int>& ordering) {
  RETURN_IF_ERROR(detection_.DetectionProbabilitiesInto(ordering, pal_prefix_,
                                                        pal_scratch_));
  const int var = model_.AddVariable(
      0.0, 0.0, lp::kInfinity, "p" + std::to_string(po_vars_.size()));
  for (size_t g = 0; g < game_.groups.size(); ++g) {
    const auto& victims = game_.groups[g].victims;
    for (size_t v = 0; v < victims.size(); ++v) {
      model_.AddCoefficient(victim_rows_[g][v], var,
                            -AdversaryUtility(victims[v], pal_scratch_));
    }
  }
  model_.AddCoefficient(convexity_row_, var, 1.0);
  po_vars_.push_back(var);
  pal_per_ordering_.push_back(pal_scratch_);
  return util::OkStatus();
}

util::StatusOr<RestrictedLpSolution> RestrictedMasterLp::Solve() {
  RestrictedLpSolution result;
  RETURN_IF_ERROR(SolveInto(result));
  return result;
}

util::Status RestrictedMasterLp::SolveInto(RestrictedLpSolution& result) {
  if (po_vars_.empty()) {
    return util::InvalidArgumentError("no candidate orderings");
  }

  const lp::LpSolution* lp_solution = nullptr;
  lp::LpSolution dense_solution;
  if (options_.backend == lp::SimplexBackend::kRevised) {
    lp::SimplexSolver::Options lp_options = options_.lp;
    lp_options.backend = lp::SimplexBackend::kRevised;
    const lp::Basis* warm =
        options_.incremental && has_basis_ ? &basis_ : nullptr;
    RETURN_IF_ERROR(
        lp::RevisedSimplex::SolveInto(model_, lp_options, warm, revised_));
    if (revised_.solution.status == lp::SolveStatus::kOptimal) {
      // Swap, not move: the displaced previous basis becomes next solve's
      // reusable buffer (SolveInto refills it in place).
      std::swap(basis_, revised_.basis);
      has_basis_ = true;
      if (revised_.warm_started) ++stats_.warm_solves;
    }
    lp_solution = &revised_.solution;
  } else {
    lp::SimplexSolver::Options lp_options = options_.lp;
    lp_options.backend = lp::SimplexBackend::kDenseTableau;
    ASSIGN_OR_RETURN(dense_solution,
                     lp::SimplexSolver::Solve(model_, lp_options));
    lp_solution = &dense_solution;
  }
  ++stats_.solves;
  stats_.iterations +=
      lp_solution->phase1_iterations + lp_solution->phase2_iterations;
  if (lp_solution->status != lp::SolveStatus::kOptimal) {
    return util::InternalError(
        std::string("game LP not optimal: ") +
        lp::SolveStatusToString(lp_solution->status));
  }

  result.objective = lp_solution->objective;
  result.ordering_probs.resize(po_vars_.size());
  for (size_t o = 0; o < po_vars_.size(); ++o) {
    result.ordering_probs[o] = std::max(0.0, lp_solution->primal[po_vars_[o]]);
  }
  const size_t num_groups = game_.groups.size();
  result.group_utilities.resize(num_groups);
  result.victim_duals.resize(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    result.group_utilities[g] = lp_solution->primal[u_vars_[g]];
    result.victim_duals[g].resize(victim_rows_[g].size());
    for (size_t v = 0; v < victim_rows_[g].size(); ++v) {
      result.victim_duals[g][v] = lp_solution->dual[victim_rows_[g][v]];
    }
  }
  result.convexity_dual = lp_solution->dual[convexity_row_];
  return util::OkStatus();
}

}  // namespace auditgame::core
