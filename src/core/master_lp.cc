#include "core/master_lp.h"

#include <algorithm>
#include <string>
#include <utility>

namespace auditgame::core {

RestrictedMasterLp::RestrictedMasterLp(const CompiledGame& game,
                                       const DetectionModel& detection,
                                       Options options)
    : game_(game), detection_(detection), options_(options) {
  const size_t num_groups = game_.groups.size();
  u_vars_.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    const double lb = game_.groups[g].can_opt_out ? 0.0 : -lp::kInfinity;
    u_vars_.push_back(model_.AddVariable(game_.groups[g].weight, lb,
                                         lp::kInfinity,
                                         "u" + std::to_string(g)));
  }
  victim_rows_.resize(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    const auto& victims = game_.groups[g].victims;
    victim_rows_[g].resize(victims.size());
    for (size_t v = 0; v < victims.size(); ++v) {
      const int row = model_.AddConstraint(
          lp::Sense::kGreaterEqual, 0.0,
          "g" + std::to_string(g) + "v" + std::to_string(v));
      victim_rows_[g][v] = row;
      model_.AddCoefficient(row, u_vars_[g], 1.0);
    }
  }
  convexity_row_ = model_.AddConstraint(lp::Sense::kEqual, 1.0, "conv");
}

util::Status RestrictedMasterLp::AddOrdering(
    const std::vector<int>& ordering) {
  ASSIGN_OR_RETURN(std::vector<double> pal,
                   detection_.DetectionProbabilities(ordering));
  const int var = model_.AddVariable(
      0.0, 0.0, lp::kInfinity, "p" + std::to_string(po_vars_.size()));
  for (size_t g = 0; g < game_.groups.size(); ++g) {
    const auto& victims = game_.groups[g].victims;
    for (size_t v = 0; v < victims.size(); ++v) {
      model_.AddCoefficient(victim_rows_[g][v], var,
                            -AdversaryUtility(victims[v], pal));
    }
  }
  model_.AddCoefficient(convexity_row_, var, 1.0);
  po_vars_.push_back(var);
  pal_per_ordering_.push_back(std::move(pal));
  return util::OkStatus();
}

util::StatusOr<RestrictedLpSolution> RestrictedMasterLp::Solve() {
  if (po_vars_.empty()) {
    return util::InvalidArgumentError("no candidate orderings");
  }

  lp::LpSolution lp_solution;
  if (options_.backend == lp::SimplexBackend::kRevised) {
    lp::SimplexSolver::Options lp_options = options_.lp;
    lp_options.backend = lp::SimplexBackend::kRevised;
    const lp::Basis* warm =
        options_.incremental && has_basis_ ? &basis_ : nullptr;
    ASSIGN_OR_RETURN(lp::RevisedSolution revised,
                     lp::RevisedSimplex::Solve(model_, lp_options, warm));
    if (revised.solution.status == lp::SolveStatus::kOptimal) {
      basis_ = std::move(revised.basis);
      has_basis_ = true;
      if (revised.warm_started) ++stats_.warm_solves;
    }
    lp_solution = std::move(revised.solution);
  } else {
    lp::SimplexSolver::Options lp_options = options_.lp;
    lp_options.backend = lp::SimplexBackend::kDenseTableau;
    ASSIGN_OR_RETURN(lp_solution,
                     lp::SimplexSolver::Solve(model_, lp_options));
  }
  ++stats_.solves;
  stats_.iterations +=
      lp_solution.phase1_iterations + lp_solution.phase2_iterations;
  if (lp_solution.status != lp::SolveStatus::kOptimal) {
    return util::InternalError(
        std::string("game LP not optimal: ") +
        lp::SolveStatusToString(lp_solution.status));
  }

  RestrictedLpSolution result;
  result.objective = lp_solution.objective;
  result.pal_per_ordering = pal_per_ordering_;
  result.ordering_probs.resize(po_vars_.size());
  for (size_t o = 0; o < po_vars_.size(); ++o) {
    result.ordering_probs[o] = std::max(0.0, lp_solution.primal[po_vars_[o]]);
  }
  const size_t num_groups = game_.groups.size();
  result.group_utilities.resize(num_groups);
  result.victim_duals.resize(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    result.group_utilities[g] = lp_solution.primal[u_vars_[g]];
    result.victim_duals[g].resize(victim_rows_[g].size());
    for (size_t v = 0; v < victim_rows_[g].size(); ++v) {
      result.victim_duals[g][v] = lp_solution.dual[victim_rows_[g][v]];
    }
  }
  result.convexity_dual = lp_solution.dual[convexity_row_];
  return result;
}

}  // namespace auditgame::core
