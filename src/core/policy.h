#ifndef AUDIT_GAME_CORE_POLICY_H_
#define AUDIT_GAME_CORE_POLICY_H_

#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::util {
class Serializer;
}  // namespace auditgame::util

namespace auditgame::core {

/// The auditor's (possibly mixed) strategy: a distribution over alert-type
/// orderings plus a deterministic threshold vector, under budget `budget`.
struct AuditPolicy {
  std::vector<std::vector<int>> orderings;
  std::vector<double> probabilities;  // p_o, same length as orderings
  std::vector<double> thresholds;     // b_t
  double budget = 0.0;

  /// Checks that probabilities form a distribution and orderings are
  /// permutations of the same type set.
  util::Status Validate(int num_types) const;

  void StreamState(util::Serializer& s);
};

/// Result of evaluating a policy against best-responding adversaries.
struct PolicyEvaluation {
  /// The auditor's expected loss: sum_e p_e * max_v E_o[Ua] (clamped at 0
  /// for adversaries who can opt out). This is the paper's objective
  /// (Eq. 4).
  double auditor_loss = 0.0;
  /// Best-response utility per compiled group.
  std::vector<double> group_utilities;
  /// Index of the best-response victim per group (-1 = opt out).
  std::vector<int> best_response_victim;
};

/// Evaluates `policy` on the compiled game. `detection` must be bound to the
/// same instance and budget; its thresholds are set from the policy.
util::StatusOr<PolicyEvaluation> EvaluatePolicy(const CompiledGame& game,
                                                DetectionModel& detection,
                                                const AuditPolicy& policy);

/// Expected per-type detection probabilities under the policy mixture:
/// sum_o p_o * Pal(o, b, t).
util::StatusOr<std::vector<double>> MixedDetectionProbabilities(
    DetectionModel& detection, const AuditPolicy& policy);

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_POLICY_H_
