#ifndef AUDIT_GAME_CORE_ISHM_H_
#define AUDIT_GAME_CORE_ISHM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/cggs.h"
#include "core/detection.h"
#include "core/game.h"
#include "core/policy.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::core {

/// What an ISHM threshold-vector probe returns.
struct ThresholdEvaluation {
  double objective = 0.0;
  AuditPolicy policy;
};

/// Pluggable evaluator: given a threshold vector, produce the (approximate)
/// optimal ordering mixture and its objective. Implementations below wrap
/// the full LP (exact over all |T|! orderings) and CGGS.
using ThresholdEvaluator =
    std::function<util::StatusOr<ThresholdEvaluation>(const std::vector<double>&)>;

/// Options for the Iterative Shrink Heuristic Method (Algorithm 2).
struct IshmOptions {
  /// The paper's step size epsilon in (0, 1); shrink ratios are
  /// max(0, 1 - i*eps) for i = 1..ceil(1/eps).
  double step_size = 0.1;
  /// Evaluate thresholds floored to whole audits (b_t -> floor(b_t/C_t)*C_t).
  /// Matches the integer thresholds reported in the paper's tables and
  /// makes the search landscape finite.
  bool floor_to_audit_cost = true;
  /// Warm start: begin the shrink search at this raw threshold vector
  /// instead of the paper's full-coverage upper bounds (entries are clamped
  /// to [0, upper bound] and the vector is evaluated before any shrink, so
  /// a shrink is accepted only if it strictly beats the seed). Empty = cold
  /// start; otherwise must have one entry per type. Used by the serving
  /// layer to re-solve after a small distribution drift, seeding from the
  /// previously optimal thresholds (see docs/DESIGN.md "Serving layer").
  std::vector<double> initial_thresholds;
  /// Cap on the shrink-subset size lh (0 = no cap, the paper's |T|).
  /// Warm-started re-solves set 1: starting near an optimum, single-type
  /// local repair suffices and skips the exponential subset sweep.
  int max_subset_size = 0;
};

/// Search-effort counters (Table VII reports `evaluations`).
struct IshmStats {
  /// Threshold vectors submitted for evaluation (paper's "number of
  /// threshold vectors checked").
  int64_t evaluations = 0;
  /// Distinct effective vectors actually evaluated (cache misses).
  int64_t distinct_evaluations = 0;
  /// Accepted improvements.
  int improvements = 0;
};

struct IshmResult {
  double objective = 0.0;
  /// Raw (un-floored) threshold trajectory endpoint.
  std::vector<double> thresholds;
  /// Effective thresholds actually evaluated (floored when enabled).
  std::vector<double> effective_thresholds;
  AuditPolicy policy;
  IshmStats stats;
};

/// Runs ISHM: initialize every threshold at the full-coverage upper bound
/// C_t * max(F_t support), then iteratively shrink subsets of thresholds
/// (subset size lh = 1..|T|, ratio 1 - i*eps), accepting any strict
/// improvement of the evaluator objective and restarting at lh = 1.
/// Identical effective vectors are evaluated once (memoized).
util::StatusOr<IshmResult> SolveIshm(const GameInstance& instance,
                                     const ThresholdEvaluator& evaluator,
                                     const IshmOptions& options = {});

/// Evaluator running the exact LP over all |T|! orderings. Suitable for
/// small |T| (controlled evaluation).
ThresholdEvaluator MakeFullLpEvaluator(const CompiledGame& game,
                                       DetectionModel& detection);

/// Evaluator running CGGS. Keeps a shared pool of previously generated
/// columns as warm starts across calls, which makes neighboring ISHM probes
/// nearly free.
ThresholdEvaluator MakeCggsEvaluator(const CompiledGame& game,
                                     DetectionModel& detection,
                                     CggsOptions options = {});

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_ISHM_H_
