#ifndef AUDIT_GAME_CORE_DETECTION_H_
#define AUDIT_GAME_CORE_DETECTION_H_

#include <cstdint>
#include <vector>

#include "core/game.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::core {

/// Computes the per-type audit (detection) probabilities of Eq. 1,
///   Pal(o, b, t) = E_Z [ n_t(o, b, Z) / Z_t ],
/// for a fixed budget B and threshold vector b, under the paper's recourse
/// semantics (types earlier in the ordering consume budget
/// min(b_{o_i}, Z_{o_i} C_{o_i}) each).
///
/// Two evaluation modes:
///  * kExact — exploits independence of the Z_t: the budget consumed by the
///    prefix of an ordering is a small discrete distribution obtained by
///    convolution on an integer budget grid. Exact (up to grid rounding,
///    which is zero when B, b_t and C_t are integers — true for every
///    experiment in the paper) and far faster than enumeration of the joint
///    support.
///  * kMonteCarlo — the paper's approach: average n_t/Z_t over samples of Z.
///    Works for arbitrary (non-grid) costs.
///
/// A realization Z_t = 0 contributes detection probability 1 when at least
/// one audit of type t is affordable (the attacker's alert would be the only
/// element of the bin), else 0; see docs/DESIGN.md "The Z_t = 0 convention".
///
/// The incremental *prefix* API lets CGGS grow an ordering one type at a
/// time in O(grid) per candidate instead of recomputing full orderings.
class DetectionModel {
 public:
  enum class Mode { kExact, kMonteCarlo };

  /// How E_Z[n_t / Z_t] is interpreted. The paper's Eq. 1 is the literal
  /// expected ratio; `kInclusiveAttack` additionally counts the attacker's
  /// own alert in the bin (detection = n'_t / (Z_t + 1) with n'_t computed
  /// on the inflated bin), which is the exact probability under the
  /// uniformly-audited-bin semantics and reproduces Table III most closely
  /// (see docs/DESIGN.md "Calibration notes").
  enum class Semantics {
    kExpectedRatio,
    kInclusiveAttack,
    kRatioOfExpectations,
  };

  /// How much budget a type earlier in the ordering consumes.
  ///  * kRealized — min(b_t, Z_t C_t), the paper's Eq. for B_t: unspent
  ///    threshold (when few alerts arrive) flows to later types.
  ///  * kReserved — b_t always: the threshold is earmarked up front.
  enum class Consumption { kRealized, kReserved };

  struct Options {
    Mode mode = Mode::kExact;
    Semantics semantics = Semantics::kExpectedRatio;
    Consumption consumption = Consumption::kRealized;
    /// Samples for kMonteCarlo.
    int mc_samples = 2000;
    uint64_t seed = 20180422;
    /// Budget grid resolution for kExact. B, b_t and C_t are rounded to
    /// multiples of this unit.
    double budget_unit = 1.0;
  };

  /// Builds a model bound to the instance's distributions and audit costs.
  static util::StatusOr<DetectionModel> Create(const GameInstance& instance,
                                               double budget,
                                               const Options& options);
  static util::StatusOr<DetectionModel> Create(const GameInstance& instance,
                                               double budget) {
    return Create(instance, budget, Options());
  }

  /// Installs the threshold vector used by subsequent queries. Negative
  /// entries are invalid. Cheap enough to call inside search loops
  /// (O(T * support) precomputation).
  util::Status SetThresholds(const std::vector<double>& thresholds);

  const std::vector<double>& thresholds() const { return thresholds_; }
  double budget() const { return budget_; }
  int num_types() const { return static_cast<int>(audit_costs_.size()); }
  Mode mode() const { return options_.mode; }
  const Options& options() const { return options_; }

  /// Pal for every type under a complete ordering (a permutation of all
  /// types). Types absent from the ordering would never be audited; the
  /// ordering must contain each type exactly once.
  util::StatusOr<std::vector<double>> DetectionProbabilities(
      const std::vector<int>& ordering) const;

  /// ---- Incremental prefix API -----------------------------------------
  /// A Prefix represents the distribution of budget consumed by an ordered
  /// set of already-placed types. kExact: probability vector over the
  /// budget grid. kMonteCarlo: consumed budget per sample.
  struct Prefix {
    std::vector<double> data;
    /// Convolution double-buffer: ExtendPrefix writes into `scratch` and
    /// swaps, so repeated extensions reuse the same two allocations for the
    /// life of the prefix (CGGS holds prefixes across whole pricing rounds).
    std::vector<double> scratch;
  };

  /// Prefix of the empty ordering (no budget consumed).
  Prefix EmptyPrefix() const;

  /// Re-initializes `prefix` to the empty-ordering state in place, keeping
  /// its buffers — the allocation-free form of EmptyPrefix for callers that
  /// hold a Prefix across pricing rounds.
  void ResetPrefix(Prefix& prefix) const;

  /// Pal of `type` if appended right after the prefix.
  double PalGivenPrefix(const Prefix& prefix, int type) const;

  /// Appends `type` to the prefix (consumes its budget).
  void ExtendPrefix(Prefix& prefix, int type) const;

  /// Allocation-free variant of DetectionProbabilities for hot loops (CGGS
  /// reduced-cost sweeps): `prefix` and `pal` are caller-owned scratch
  /// reused across calls — both are reset/resized in place, so
  /// steady-state calls never touch the heap.
  util::Status DetectionProbabilitiesInto(const std::vector<int>& ordering,
                                          Prefix& prefix,
                                          std::vector<double>& pal) const;

 private:
  DetectionModel() = default;

  void PrepareExactTables();
  void PrepareMcTables();

  Options options_;
  double budget_ = 0.0;
  std::vector<double> audit_costs_;
  std::vector<prob::CountDistribution> distributions_;
  std::vector<double> thresholds_;
  std::vector<double> mean_z_;  // E[Z_t], for kRatioOfExpectations

  // --- kExact state ---
  int grid_size_ = 0;  // number of cells: floor(B/unit) + 1
  // consumption_[t]: sparse distribution of round(min(b_t, Z_t C_t)/unit),
  // stored as (cell, probability) pairs.
  std::vector<std::vector<std::pair<int, double>>> consumption_;
  // g_[t][cells_consumed] = E_z[detection | remaining budget].
  std::vector<std::vector<double>> g_;

  // --- kMonteCarlo state ---
  // Type-major layout so the per-type hot loops (PalGivenPrefix,
  // ExtendPrefix) touch contiguous memory the kernels can stream over:
  // samples_[t*K + k] = sampled Z_t for sample k. The samples are still
  // DRAWN in sample-major order (k outer, t inner) so the common random
  // numbers match the pre-refactor model bit for bit.
  std::vector<int> samples_;
  // mc_consumption_[t*K + k] = min(b_t, Z_t C_t).
  std::vector<double> mc_consumption_;

  // SetThresholds scratch (reused across calls; ISHM sweeps call
  // SetThresholds in a loop).
  std::vector<double> cell_prob_scratch_;
};

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_DETECTION_H_
