#include "core/ishm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <set>

#include "core/game_lp.h"
#include "util/arena.h"
#include "util/combinatorics.h"
#include "util/thread_pool.h"

namespace auditgame::core {
namespace {

// Effective thresholds: whole audits only. Keyed for memoization. Writes
// into a caller-owned buffer — the ISHM sweep calls this per candidate
// move, so it reuses one buffer instead of allocating each time.
void EffectiveThresholdsInto(const std::vector<double>& raw,
                             const std::vector<double>& costs,
                             bool floor_enabled,
                             std::vector<double>& effective) {
  effective.resize(raw.size());
  for (size_t t = 0; t < raw.size(); ++t) {
    effective[t] = floor_enabled
                       ? std::floor(raw[t] / costs[t] + 1e-9) * costs[t]
                       : raw[t];
  }
}

void CacheKeyInto(const std::vector<double>& effective,
                  std::vector<int64_t>& key) {
  key.resize(effective.size());
  for (size_t t = 0; t < effective.size(); ++t) {
    key[t] = static_cast<int64_t>(std::llround(effective[t] * 4096.0));
  }
}

}  // namespace

util::StatusOr<IshmResult> SolveIshm(const GameInstance& instance,
                                     const ThresholdEvaluator& evaluator,
                                     const IshmOptions& options) {
  // Negated comparison so NaN (which fails every ordering test, and would
  // make the ratio loop empty and the sweep spin forever) is rejected too.
  if (!(options.step_size > 0.0 && options.step_size < 1.0)) {
    return util::InvalidArgumentError("step_size must be in (0, 1)");
  }
  RETURN_IF_ERROR(instance.Validate());
  const int t_count = instance.num_types();
  const int num_ratios =
      static_cast<int>(std::ceil(1.0 / options.step_size - 1e-12));

  IshmResult result;
  result.stats = IshmStats();

  // Memoized evaluation of a raw threshold vector. The effective/key
  // buffers persist across the sweep's hundreds of candidate evaluations;
  // only a cache miss materializes a stored key.
  std::map<std::vector<int64_t>, ThresholdEvaluation> cache;
  std::vector<double> effective_buf;
  std::vector<int64_t> key_buf;
  auto evaluate =
      [&](const std::vector<double>& raw) -> util::StatusOr<ThresholdEvaluation> {
    ++result.stats.evaluations;
    EffectiveThresholdsInto(raw, instance.audit_costs,
                            options.floor_to_audit_cost, effective_buf);
    CacheKeyInto(effective_buf, key_buf);
    auto it = cache.find(key_buf);
    if (it != cache.end()) return it->second;
    ++result.stats.distinct_evaluations;
    ASSIGN_OR_RETURN(ThresholdEvaluation eval, evaluator(effective_buf));
    cache.emplace(key_buf, eval);
    return eval;
  };

  // Line 1: initialize with the full-coverage upper bounds, or — warm
  // start — with the caller-provided seed clamped into [0, upper bound].
  std::vector<double> thresholds(t_count);
  for (int t = 0; t < t_count; ++t) {
    thresholds[t] =
        instance.audit_costs[t] * instance.alert_distributions[t].max_value();
  }
  const bool warm_started = !options.initial_thresholds.empty();
  if (warm_started) {
    if (static_cast<int>(options.initial_thresholds.size()) != t_count) {
      return util::InvalidArgumentError(
          "initial_thresholds must have one entry per type");
    }
    for (int t = 0; t < t_count; ++t) {
      thresholds[t] = std::min(
          thresholds[t], std::max(0.0, options.initial_thresholds[t]));
    }
  }
  const int subset_cap =
      options.max_subset_size > 0 ? std::min(options.max_subset_size, t_count)
                                  : t_count;

  double best_objective = std::numeric_limits<double>::infinity();
  ThresholdEvaluation best_eval;
  bool have_best = false;
  if (warm_started) {
    // The seed is (near-)optimal already; evaluating it first means shrinks
    // must strictly beat it, where a cold start accepts the best first-round
    // shrink unconditionally.
    ASSIGN_OR_RETURN(best_eval, evaluate(thresholds));
    best_objective = best_eval.objective;
    have_best = true;
  }

  int lh = 1;
  while (lh <= subset_cap) {
    const std::vector<std::vector<int>> combos =
        util::AllCombinations(t_count, lh);
    int progress = 0;
    bool improved = false;
    for (int i = 1; i <= num_ratios; ++i) {
      const double ratio = std::max(0.0, 1.0 - i * options.step_size);
      double round_best = std::numeric_limits<double>::infinity();
      int round_best_combo = -1;
      ThresholdEvaluation round_best_eval;
      std::vector<double> temp;
      for (size_t j = 0; j < combos.size(); ++j) {
        temp.assign(thresholds.begin(), thresholds.end());
        for (int idx : combos[j]) temp[idx] *= ratio;
        ASSIGN_OR_RETURN(ThresholdEvaluation eval, evaluate(temp));
        if (eval.objective < round_best) {
          round_best = eval.objective;
          round_best_combo = static_cast<int>(j);
          round_best_eval = eval;
        }
      }
      if (round_best < best_objective - 1e-12) {
        best_objective = round_best;
        best_eval = round_best_eval;
        have_best = true;
        ++result.stats.improvements;
        for (int idx : combos[static_cast<size_t>(round_best_combo)]) {
          thresholds[idx] *= ratio;
        }
        improved = true;
        break;  // restart the sweep from lh = 1
      }
      progress = i;
    }
    if (improved) {
      lh = 1;
    } else if (progress == num_ratios) {
      ++lh;
    } else {
      // Unreachable with the loop structure above, but mirrors the paper's
      // pseudocode defensively.
      lh = 1;
    }
  }

  if (!have_best) {
    // Degenerate epsilon (ratio list empty); evaluate the initial vector.
    ASSIGN_OR_RETURN(best_eval, evaluate(thresholds));
    best_objective = best_eval.objective;
  }

  result.objective = best_objective;
  result.thresholds = thresholds;
  EffectiveThresholdsInto(thresholds, instance.audit_costs,
                          options.floor_to_audit_cost,
                          result.effective_thresholds);
  result.policy = best_eval.policy;
  return result;
}

ThresholdEvaluator MakeFullLpEvaluator(const CompiledGame& game,
                                       DetectionModel& detection) {
  return [&game, &detection](const std::vector<double>& thresholds)
             -> util::StatusOr<ThresholdEvaluation> {
    ASSIGN_OR_RETURN(FullLpResult full,
                     SolveFullGameLp(game, detection, thresholds));
    ThresholdEvaluation eval;
    eval.objective = full.objective;
    eval.policy = std::move(full.policy);
    return eval;
  };
}

ThresholdEvaluator MakeCggsEvaluator(const CompiledGame& game,
                                     DetectionModel& detection,
                                     CggsOptions options) {
  // Shared warm-start pool across evaluations: the support of every solved
  // LP is fed back as initial columns of the next solve.
  auto pool = std::make_shared<std::set<std::vector<int>>>();
  // One pricing thread pool for the evaluator's lifetime — ISHM submits
  // hundreds of evaluations per policy, far too many to pay a thread
  // spawn+join each (result-neutral either way; see CggsOptions).
  std::shared_ptr<util::ThreadPool> pricing_pool;
  if (options.pricing_threads > 1 && options.pricing_pool == nullptr) {
    pricing_pool = std::make_shared<util::ThreadPool>(options.pricing_threads);
  }
  // Likewise one scratch workspace for the evaluator's lifetime: the first
  // solve sizes the arenas, every later evaluation reuses them and runs
  // allocation-free on the pricing and simplex hot paths.
  std::shared_ptr<util::WorkspacePool> workspace;
  if (options.workspace == nullptr) {
    workspace = std::make_shared<util::WorkspacePool>();
  }
  return [&game, &detection, options, pool, pricing_pool, workspace](
             const std::vector<double>& thresholds)
             -> util::StatusOr<ThresholdEvaluation> {
    CggsOptions local = options;
    if (pricing_pool != nullptr) local.pricing_pool = pricing_pool.get();
    if (workspace != nullptr) local.workspace = workspace.get();
    local.initial_orderings.insert(local.initial_orderings.end(),
                                   pool->begin(), pool->end());
    ASSIGN_OR_RETURN(CggsResult cggs,
                     SolveCggs(game, detection, thresholds, local));
    for (const auto& o : cggs.policy.orderings) pool->insert(o);
    // Keep the pool bounded: beyond ~4x the type count the extra columns
    // slow the master LP more than they help.
    const size_t cap = static_cast<size_t>(4 * game.num_types + 8);
    while (pool->size() > cap) pool->erase(pool->begin());
    ThresholdEvaluation eval;
    eval.objective = cggs.objective;
    eval.policy = std::move(cggs.policy);
    return eval;
  };
}

}  // namespace auditgame::core
