#include "core/game_lp.h"

#include "core/master_lp.h"
#include "util/combinatorics.h"

namespace auditgame::core {

// One-shot convenience wrapper: build a RestrictedMasterLp over the full
// candidate set and solve once. Column-generation callers (CGGS) keep the
// master alive across pricing iterations instead — see core/master_lp.h.
util::StatusOr<RestrictedLpSolution> SolveRestrictedGameLp(
    const CompiledGame& game, const DetectionModel& detection,
    const std::vector<std::vector<int>>& orderings) {
  if (orderings.empty()) {
    return util::InvalidArgumentError("no candidate orderings");
  }
  // One-shot callers (brute force sweeps, the full-LP ground truth) solve
  // thousands of small cold LPs where the dense tableau's low per-solve
  // overhead wins; the revised backend earns its keep on warm re-solves,
  // which only the long-lived master performs.
  RestrictedMasterLp::Options options;
  options.backend = lp::SimplexBackend::kDenseTableau;
  options.incremental = false;
  options.expected_orderings = static_cast<int>(orderings.size());
  RestrictedMasterLp master(game, detection, options);
  for (const auto& ordering : orderings) {
    RETURN_IF_ERROR(master.AddOrdering(ordering));
  }
  return master.Solve();
}

util::StatusOr<FullLpResult> SolveFullGameLp(
    const CompiledGame& game, DetectionModel& detection,
    const std::vector<double>& thresholds) {
  RETURN_IF_ERROR(detection.SetThresholds(thresholds));
  const std::vector<std::vector<int>> orderings =
      util::AllPermutations(game.num_types);
  ASSIGN_OR_RETURN(RestrictedLpSolution solution,
                   SolveRestrictedGameLp(game, detection, orderings));
  FullLpResult result;
  result.objective = solution.objective;
  result.policy.thresholds = thresholds;
  result.policy.budget = detection.budget();
  // Keep only the support of the mixture.
  for (size_t o = 0; o < orderings.size(); ++o) {
    if (solution.ordering_probs[o] > 1e-9) {
      result.policy.orderings.push_back(orderings[o]);
      result.policy.probabilities.push_back(solution.ordering_probs[o]);
    }
  }
  // Renormalize tiny numerical drift.
  double total = 0.0;
  for (double p : result.policy.probabilities) total += p;
  if (total > 0) {
    for (double& p : result.policy.probabilities) p /= total;
  }
  return result;
}

}  // namespace auditgame::core
