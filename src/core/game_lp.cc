#include "core/game_lp.h"

#include <string>

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/combinatorics.h"

namespace auditgame::core {

util::StatusOr<RestrictedLpSolution> SolveRestrictedGameLp(
    const CompiledGame& game, const DetectionModel& detection,
    const std::vector<std::vector<int>>& orderings) {
  if (orderings.empty()) {
    return util::InvalidArgumentError("no candidate orderings");
  }

  RestrictedLpSolution result;
  result.pal_per_ordering.reserve(orderings.size());
  for (const auto& o : orderings) {
    ASSIGN_OR_RETURN(std::vector<double> pal,
                     detection.DetectionProbabilities(o));
    result.pal_per_ordering.push_back(std::move(pal));
  }

  // Utility of every (ordering, group, victim) triple.
  const size_t num_groups = game.groups.size();
  // utilities[o][g][v]
  std::vector<std::vector<std::vector<double>>> utilities(orderings.size());
  for (size_t o = 0; o < orderings.size(); ++o) {
    utilities[o].resize(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const auto& victims = game.groups[g].victims;
      utilities[o][g].resize(victims.size());
      for (size_t v = 0; v < victims.size(); ++v) {
        utilities[o][g][v] =
            AdversaryUtility(victims[v], result.pal_per_ordering[o]);
      }
    }
  }

  // Build the LP.
  lp::LpModel model;
  std::vector<int> po_vars;
  po_vars.reserve(orderings.size());
  for (size_t o = 0; o < orderings.size(); ++o) {
    po_vars.push_back(
        model.AddVariable(0.0, 0.0, lp::kInfinity, "p" + std::to_string(o)));
  }
  std::vector<int> u_vars;
  u_vars.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    const double lb =
        game.groups[g].can_opt_out ? 0.0 : -lp::kInfinity;
    u_vars.push_back(model.AddVariable(game.groups[g].weight, lb,
                                       lp::kInfinity,
                                       "u" + std::to_string(g)));
  }
  // Victim rows: u_g - sum_o p_o Ua >= 0.
  std::vector<std::vector<int>> victim_rows(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    const auto& victims = game.groups[g].victims;
    victim_rows[g].resize(victims.size());
    for (size_t v = 0; v < victims.size(); ++v) {
      const int row = model.AddConstraint(
          lp::Sense::kGreaterEqual, 0.0,
          "g" + std::to_string(g) + "v" + std::to_string(v));
      victim_rows[g][v] = row;
      model.AddCoefficient(row, u_vars[g], 1.0);
      for (size_t o = 0; o < orderings.size(); ++o) {
        model.AddCoefficient(row, po_vars[o], -utilities[o][g][v]);
      }
    }
  }
  // Convexity row.
  const int convexity_row = model.AddConstraint(lp::Sense::kEqual, 1.0, "conv");
  for (int var : po_vars) model.AddCoefficient(convexity_row, var, 1.0);

  ASSIGN_OR_RETURN(lp::LpSolution lp_solution,
                   lp::SimplexSolver::Solve(model));
  if (lp_solution.status != lp::SolveStatus::kOptimal) {
    return util::InternalError(
        std::string("game LP not optimal: ") +
        lp::SolveStatusToString(lp_solution.status));
  }

  result.objective = lp_solution.objective;
  result.ordering_probs.resize(orderings.size());
  for (size_t o = 0; o < orderings.size(); ++o) {
    result.ordering_probs[o] = std::max(0.0, lp_solution.primal[po_vars[o]]);
  }
  result.group_utilities.resize(num_groups);
  result.victim_duals.resize(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    result.group_utilities[g] = lp_solution.primal[u_vars[g]];
    result.victim_duals[g].resize(victim_rows[g].size());
    for (size_t v = 0; v < victim_rows[g].size(); ++v) {
      result.victim_duals[g][v] = lp_solution.dual[victim_rows[g][v]];
    }
  }
  result.convexity_dual = lp_solution.dual[convexity_row];
  return result;
}

util::StatusOr<FullLpResult> SolveFullGameLp(
    const CompiledGame& game, DetectionModel& detection,
    const std::vector<double>& thresholds) {
  RETURN_IF_ERROR(detection.SetThresholds(thresholds));
  const std::vector<std::vector<int>> orderings =
      util::AllPermutations(game.num_types);
  ASSIGN_OR_RETURN(RestrictedLpSolution solution,
                   SolveRestrictedGameLp(game, detection, orderings));
  FullLpResult result;
  result.objective = solution.objective;
  result.policy.thresholds = thresholds;
  result.policy.budget = detection.budget();
  // Keep only the support of the mixture.
  for (size_t o = 0; o < orderings.size(); ++o) {
    if (solution.ordering_probs[o] > 1e-9) {
      result.policy.orderings.push_back(orderings[o]);
      result.policy.probabilities.push_back(solution.ordering_probs[o]);
    }
  }
  // Renormalize tiny numerical drift.
  double total = 0.0;
  for (double p : result.policy.probabilities) total += p;
  if (total > 0) {
    for (double& p : result.policy.probabilities) p /= total;
  }
  return result;
}

}  // namespace auditgame::core
