#include "core/policy.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/serializer.h"

namespace auditgame::core {

util::Status AuditPolicy::Validate(int num_types) const {
  if (orderings.size() != probabilities.size()) {
    return util::InvalidArgumentError("orderings/probabilities size mismatch");
  }
  if (orderings.empty()) {
    return util::InvalidArgumentError("policy has no orderings");
  }
  if (static_cast<int>(thresholds.size()) != num_types) {
    return util::InvalidArgumentError("thresholds size != num types");
  }
  double total = 0.0;
  for (double p : probabilities) {
    if (p < -1e-9 || p > 1 + 1e-9) {
      return util::InvalidArgumentError("ordering probability out of [0,1]");
    }
    total += p;
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    return util::InvalidArgumentError("ordering probabilities sum to " +
                                      std::to_string(total));
  }
  for (const auto& o : orderings) {
    if (static_cast<int>(o.size()) != num_types) {
      return util::InvalidArgumentError("ordering size != num types");
    }
    std::vector<bool> seen(num_types, false);
    for (int t : o) {
      if (t < 0 || t >= num_types || seen[t]) {
        return util::InvalidArgumentError("ordering is not a permutation");
      }
      seen[t] = true;
    }
  }
  if (budget < 0) return util::InvalidArgumentError("negative budget");
  return util::OkStatus();
}

util::StatusOr<PolicyEvaluation> EvaluatePolicy(const CompiledGame& game,
                                                DetectionModel& detection,
                                                const AuditPolicy& policy) {
  RETURN_IF_ERROR(policy.Validate(game.num_types));
  RETURN_IF_ERROR(detection.SetThresholds(policy.thresholds));

  // Expected utility per (group, victim) accumulated over the mixture.
  std::vector<std::vector<double>> expected_utility(game.groups.size());
  for (size_t g = 0; g < game.groups.size(); ++g) {
    expected_utility[g].assign(game.groups[g].victims.size(), 0.0);
  }
  for (size_t o = 0; o < policy.orderings.size(); ++o) {
    const double po = policy.probabilities[o];
    if (po <= 0) continue;
    ASSIGN_OR_RETURN(std::vector<double> pal,
                     detection.DetectionProbabilities(policy.orderings[o]));
    for (size_t g = 0; g < game.groups.size(); ++g) {
      const auto& victims = game.groups[g].victims;
      for (size_t v = 0; v < victims.size(); ++v) {
        expected_utility[g][v] += po * AdversaryUtility(victims[v], pal);
      }
    }
  }

  PolicyEvaluation eval;
  eval.group_utilities.resize(game.groups.size());
  eval.best_response_victim.assign(game.groups.size(), -1);
  for (size_t g = 0; g < game.groups.size(); ++g) {
    const AdversaryGroup& group = game.groups[g];
    double best = group.can_opt_out ? 0.0 : -std::numeric_limits<double>::infinity();
    int best_victim = -1;
    for (size_t v = 0; v < group.victims.size(); ++v) {
      if (expected_utility[g][v] > best) {
        best = expected_utility[g][v];
        best_victim = static_cast<int>(v);
      }
    }
    eval.group_utilities[g] = best;
    eval.best_response_victim[g] = best_victim;
    eval.auditor_loss += group.weight * best;
  }
  return eval;
}

util::StatusOr<std::vector<double>> MixedDetectionProbabilities(
    DetectionModel& detection, const AuditPolicy& policy) {
  RETURN_IF_ERROR(policy.Validate(detection.num_types()));
  RETURN_IF_ERROR(detection.SetThresholds(policy.thresholds));
  std::vector<double> mixed(detection.num_types(), 0.0);
  for (size_t o = 0; o < policy.orderings.size(); ++o) {
    const double po = policy.probabilities[o];
    if (po <= 0) continue;
    ASSIGN_OR_RETURN(std::vector<double> pal,
                     detection.DetectionProbabilities(policy.orderings[o]));
    for (int t = 0; t < detection.num_types(); ++t) mixed[t] += po * pal[t];
  }
  return mixed;
}

void AuditPolicy::StreamState(util::Serializer& s) {
  s.Section("policy", 1);
  s.VecVecI32(orderings);
  s.VecF64(probabilities);
  s.VecF64(thresholds);
  s.F64(budget);
}

}  // namespace auditgame::core
