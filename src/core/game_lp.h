#ifndef AUDIT_GAME_CORE_GAME_LP_H_
#define AUDIT_GAME_CORE_GAME_LP_H_

#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "core/policy.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::core {

/// Solution of the restricted master LP (Eq. 5 of the paper, restricted to
/// a set Q of candidate orderings, with the thresholds b fixed inside
/// `detection`):
///
///   min  sum_g w_g u_g
///   s.t. u_g >= sum_{o in Q} p_o Ua(o, b, <g,v>)   for every victim row
///        sum_o p_o = 1,  p_o >= 0
///        u_g >= 0 for groups that can opt out
///
/// The duals are exactly what CGGS pricing needs.
struct RestrictedLpSolution {
  double objective = 0.0;
  /// p_o per candidate ordering (same order as the input Q).
  std::vector<double> ordering_probs;
  /// u_g per compiled group.
  std::vector<double> group_utilities;
  /// Dual y_{g,v} >= 0 per (group, victim) row, indexed [group][victim].
  std::vector<std::vector<double>> victim_duals;
  /// Dual of the convexity row sum_o p_o = 1.
  double convexity_dual = 0.0;
};

/// Solves the restricted LP for the ordering set `orderings`. `detection`
/// must already have thresholds installed (SetThresholds).
util::StatusOr<RestrictedLpSolution> SolveRestrictedGameLp(
    const CompiledGame& game, const DetectionModel& detection,
    const std::vector<std::vector<int>>& orderings);

/// Convenience: solves the *full* LP over every permutation of the types
/// (|T|! orderings) — exact but only sensible for small |T|; the controlled
/// evaluation (Tables III-VII) uses it as ground truth for the ordering
/// distribution. Returns the assembled policy.
struct FullLpResult {
  double objective = 0.0;
  AuditPolicy policy;
};
util::StatusOr<FullLpResult> SolveFullGameLp(const CompiledGame& game,
                                             DetectionModel& detection,
                                             const std::vector<double>& thresholds);

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_GAME_LP_H_
