#include "core/extensions.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace auditgame::core {
namespace {

// Expected utility of every victim of every group under the policy mixture.
util::StatusOr<std::vector<std::vector<double>>> ExpectedUtilities(
    const CompiledGame& game, DetectionModel& detection,
    const AuditPolicy& policy) {
  RETURN_IF_ERROR(policy.Validate(game.num_types));
  RETURN_IF_ERROR(detection.SetThresholds(policy.thresholds));
  std::vector<std::vector<double>> utilities(game.groups.size());
  for (size_t g = 0; g < game.groups.size(); ++g) {
    utilities[g].assign(game.groups[g].victims.size(), 0.0);
  }
  for (size_t o = 0; o < policy.orderings.size(); ++o) {
    const double po = policy.probabilities[o];
    if (po <= 0) continue;
    ASSIGN_OR_RETURN(std::vector<double> pal,
                     detection.DetectionProbabilities(policy.orderings[o]));
    for (size_t g = 0; g < game.groups.size(); ++g) {
      const auto& victims = game.groups[g].victims;
      for (size_t v = 0; v < victims.size(); ++v) {
        utilities[g][v] += po * AdversaryUtility(victims[v], pal);
      }
    }
  }
  return utilities;
}

// Mixed detection probability Pat for a victim under the policy mixture.
double MixedPat(const VictimProfile& victim, const std::vector<double>& mixed_pal) {
  double pat = 0.0;
  for (size_t t = 0; t < victim.type_probs.size(); ++t) {
    pat += victim.type_probs[t] * mixed_pal[t];
  }
  return pat;
}

}  // namespace

util::StatusOr<QuantalResponseEvaluation> EvaluateQuantalResponse(
    const CompiledGame& game, DetectionModel& detection,
    const AuditPolicy& policy, double lambda) {
  if (lambda < 0 || !std::isfinite(lambda)) {
    return util::InvalidArgumentError("lambda must be finite and >= 0");
  }
  ASSIGN_OR_RETURN(std::vector<std::vector<double>> utilities,
                   ExpectedUtilities(game, detection, policy));

  QuantalResponseEvaluation eval;
  eval.opt_out_probability.assign(game.groups.size(), 0.0);
  for (size_t g = 0; g < game.groups.size(); ++g) {
    const auto& group = game.groups[g];
    // Softmax over victims (+ opt-out at utility 0 when available), with
    // the max subtracted for numerical stability.
    std::vector<double> options = utilities[g];
    if (group.can_opt_out) options.push_back(0.0);
    const double max_utility =
        *std::max_element(options.begin(), options.end());
    double normalizer = 0.0;
    for (double u : options) normalizer += std::exp(lambda * (u - max_utility));
    double group_loss = 0.0;
    for (size_t v = 0; v < utilities[g].size(); ++v) {
      const double p =
          std::exp(lambda * (utilities[g][v] - max_utility)) / normalizer;
      group_loss += p * utilities[g][v];
    }
    if (group.can_opt_out) {
      eval.opt_out_probability[g] =
          std::exp(lambda * (0.0 - max_utility)) / normalizer;
    }
    eval.auditor_loss += group.weight * group_loss;
  }
  return eval;
}

util::StatusOr<NonZeroSumEvaluation> EvaluateNonZeroSum(
    const CompiledGame& game, DetectionModel& detection,
    const AuditPolicy& policy) {
  ASSIGN_OR_RETURN(std::vector<std::vector<double>> utilities,
                   ExpectedUtilities(game, detection, policy));
  ASSIGN_OR_RETURN(std::vector<double> mixed_pal,
                   MixedDetectionProbabilities(detection, policy));

  NonZeroSumEvaluation eval;
  for (size_t g = 0; g < game.groups.size(); ++g) {
    const auto& group = game.groups[g];
    // Adversary best response w.r.t. its own utility.
    double best_utility =
        group.can_opt_out ? 0.0 : -std::numeric_limits<double>::infinity();
    int best_victim = -1;
    for (size_t v = 0; v < utilities[g].size(); ++v) {
      if (utilities[g][v] > best_utility) {
        best_utility = utilities[g][v];
        best_victim = static_cast<int>(v);
      }
    }
    eval.zero_sum_loss += group.weight * best_utility;
    if (best_victim >= 0) {
      const VictimProfile& victim =
          group.victims[static_cast<size_t>(best_victim)];
      const double pat = MixedPat(victim, mixed_pal);
      eval.auditor_loss += group.weight * (1.0 - pat) * victim.benefit;
    }
  }
  return eval;
}

GameInstance ScaleUtilities(const GameInstance& instance,
                            double benefit_multiplier,
                            double penalty_multiplier,
                            double attack_cost_multiplier) {
  GameInstance scaled = instance;
  for (Adversary& adversary : scaled.adversaries) {
    for (VictimProfile& victim : adversary.victims) {
      victim.benefit *= benefit_multiplier;
      victim.penalty *= penalty_multiplier;
      victim.attack_cost *= attack_cost_multiplier;
    }
  }
  return scaled;
}

}  // namespace auditgame::core
