#ifndef AUDIT_GAME_CORE_GAME_H_
#define AUDIT_GAME_CORE_GAME_H_

#include <string>
#include <vector>

#include "prob/count_distribution.h"
#include "util/status.h"

namespace auditgame::util {
class Serializer;
}  // namespace auditgame::util

namespace auditgame::core {

/// How attacking one particular victim looks to one adversary: the chance
/// each alert type is raised, and the adversary's economics.
///
/// The adversary's expected utility under per-type audit probabilities
/// Pal (Eq. 2 and 3 of the paper, with the penalty applied negatively; see
/// docs/DESIGN.md "Calibration notes"):
///   Pat = sum_t type_probs[t] * Pal[t]
///   Ua  = -Pat * penalty + (1 - Pat) * benefit - attack_cost.
struct VictimProfile {
  /// P^t_ev for each alert type; entries sum to at most 1, the remainder
  /// being the probability that no alert is raised.
  std::vector<double> type_probs;
  /// R<e,v>: gain when the attack goes unaudited.
  double benefit = 0.0;
  /// M<e,v> >= 0: penalty magnitude when the attack is audited.
  double penalty = 0.0;
  /// K<e,v>: cost of mounting the attack, always paid.
  double attack_cost = 0.0;

  void StreamState(util::Serializer& s);
};

/// A potential adversary e: present with probability `attack_probability`
/// (the paper's p_e) and free to pick any victim in `victims`, or to refrain
/// entirely when `can_opt_out` (utility 0).
struct Adversary {
  double attack_probability = 1.0;
  std::vector<VictimProfile> victims;
  bool can_opt_out = false;

  void StreamState(util::Serializer& s);
};

/// A complete instance of the alert-prioritization game (everything except
/// the audit budget B, which the experiments sweep).
struct GameInstance {
  std::vector<std::string> type_names;
  /// C_t: cost of auditing one alert of type t.
  std::vector<double> audit_costs;
  /// F_t: benign alert-count distribution per type.
  std::vector<prob::CountDistribution> alert_distributions;
  std::vector<Adversary> adversaries;

  int num_types() const { return static_cast<int>(audit_costs.size()); }

  /// Checks internal consistency (sizes, probability ranges, positivity).
  util::Status Validate() const;

  void StreamState(util::Serializer& s);
};

/// ---- Compiled form -------------------------------------------------------
///
/// The LP only sees each adversary through the *set* of utility rows their
/// victims induce. Compiling (1) deduplicates identical victims within an
/// adversary and (2) merges adversaries with identical victim sets into
/// weighted groups. On the paper's Rea A instance this shrinks the LP from
/// 2500 rows to a few dozen without changing its optimum.

struct AdversaryGroup {
  /// Sum of attack probabilities p_e over the merged adversaries.
  double weight = 0.0;
  bool can_opt_out = false;
  std::vector<VictimProfile> victims;
  /// Indices of the original adversaries merged into this group.
  std::vector<int> members;
};

struct CompiledGame {
  int num_types = 0;
  std::vector<AdversaryGroup> groups;

  /// Total number of (group, victim) utility rows.
  int num_rows() const;
};

/// Compiles `instance`; requires Validate() to pass.
util::StatusOr<CompiledGame> Compile(const GameInstance& instance);

/// Ua for one victim under per-type detection probabilities `pal`. The
/// Pal-weighted attack probability reduces through the canonical kernel dot
/// (math/kernels.h), so the value is bit-identical in any kernel backend.
/// The pointer form serves arena-backed hot loops (CGGS pricing); `pal`
/// must hold one entry per type in `victim.type_probs`.
double AdversaryUtility(const VictimProfile& victim, const double* pal);
double AdversaryUtility(const VictimProfile& victim,
                        const std::vector<double>& pal);

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_GAME_H_
