#include "core/detection.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/random.h"

namespace auditgame::core {
namespace {

// Per-realization detection contribution for a bin of z benign alerts and
// audit capacity `capacity`, under the chosen semantics.
//  * kExpectedRatio: n/z (Eq. 1 literally); z = 0 is treated as "the attack
//    alert is the whole bin" — detected iff one audit is affordable.
//  * kInclusiveAttack: the attack alert joins the bin, so the bin holds
//    z + 1 alerts and the attack is audited with probability
//    min(capacity, z+1) / (z+1).
//  * kRatioOfExpectations: handled by the caller (needs E[min(cap, z)] and
//    E[z] separately); this helper returns the numerator term min(cap, z).
double DetectionTerm(DetectionModel::Semantics semantics, int capacity,
                     int z) {
  switch (semantics) {
    case DetectionModel::Semantics::kExpectedRatio:
      if (z <= 0) return capacity >= 1 ? 1.0 : 0.0;
      return static_cast<double>(std::min(capacity, z)) / z;
    case DetectionModel::Semantics::kInclusiveAttack:
      return static_cast<double>(std::min(capacity, z + 1)) / (z + 1);
    case DetectionModel::Semantics::kRatioOfExpectations:
      return static_cast<double>(std::min(capacity, z));
  }
  return 0.0;
}

}  // namespace

util::StatusOr<DetectionModel> DetectionModel::Create(
    const GameInstance& instance, double budget, const Options& options) {
  RETURN_IF_ERROR(instance.Validate());
  if (budget < 0) return util::InvalidArgumentError("budget must be >= 0");
  if (options.budget_unit <= 0) {
    return util::InvalidArgumentError("budget_unit must be > 0");
  }
  if (options.mode == Mode::kMonteCarlo && options.mc_samples <= 0) {
    return util::InvalidArgumentError("mc_samples must be > 0");
  }
  DetectionModel model;
  model.options_ = options;
  model.budget_ = budget;
  model.audit_costs_ = instance.audit_costs;
  model.distributions_ = instance.alert_distributions;
  model.thresholds_.assign(instance.num_types(), 0.0);
  model.mean_z_.reserve(instance.num_types());
  for (const auto& dist : model.distributions_) {
    model.mean_z_.push_back(std::max(dist.Mean(), 1e-12));
  }
  if (options.mode == Mode::kMonteCarlo) {
    // Draw the common random numbers once; all threshold vectors are
    // evaluated against the same Z samples, which makes search objectives
    // deterministic and smooth.
    util::Rng rng(options.seed);
    const int t_count = model.num_types();
    model.samples_.resize(static_cast<size_t>(options.mc_samples) * t_count);
    for (int k = 0; k < options.mc_samples; ++k) {
      for (int t = 0; t < t_count; ++t) {
        model.samples_[static_cast<size_t>(k) * t_count + t] =
            model.distributions_[t].Sample(rng);
      }
    }
  } else {
    model.grid_size_ =
        static_cast<int>(std::floor(budget / options.budget_unit)) + 1;
  }
  return model;
}

util::Status DetectionModel::SetThresholds(
    const std::vector<double>& thresholds) {
  if (thresholds.size() != static_cast<size_t>(num_types())) {
    return util::InvalidArgumentError("thresholds size != num types");
  }
  for (double b : thresholds) {
    if (b < 0 || !std::isfinite(b)) {
      return util::InvalidArgumentError("thresholds must be finite and >= 0");
    }
  }
  thresholds_ = thresholds;
  if (options_.mode == Mode::kExact) {
    PrepareExactTables();
  } else {
    PrepareMcTables();
  }
  return util::OkStatus();
}

void DetectionModel::PrepareExactTables() {
  const int t_count = num_types();
  const double unit = options_.budget_unit;
  consumption_.assign(t_count, {});
  g_.assign(t_count, {});
  for (int t = 0; t < t_count; ++t) {
    const prob::CountDistribution& dist = distributions_[t];
    const double cost = audit_costs_[t];
    const double b = thresholds_[t];
    const int per_type_cap = static_cast<int>(std::floor(b / cost));

    // Consumption distribution: cell(min(b, z * C)) aggregated over z.
    // Once z * C >= b every z consumes exactly b, so the support is small.
    // Under kReserved the whole threshold is consumed deterministically.
    std::vector<double> cell_prob(static_cast<size_t>(grid_size_), 0.0);
    for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
      const double consumed =
          options_.consumption == Consumption::kReserved ? b
                                                         : std::min(b, z * cost);
      int cell = static_cast<int>(std::llround(consumed / unit));
      cell = std::min(cell, grid_size_ - 1);
      cell_prob[static_cast<size_t>(cell)] += dist.Pmf(z);
    }
    auto& sparse = consumption_[t];
    for (int cell = 0; cell < grid_size_; ++cell) {
      if (cell_prob[static_cast<size_t>(cell)] > 0) {
        sparse.emplace_back(cell, cell_prob[static_cast<size_t>(cell)]);
      }
    }

    // g_t(consumed_cells) = E_z[DetectionTerm(capacity, z)].
    auto& g = g_[t];
    g.assign(static_cast<size_t>(grid_size_), 0.0);
    for (int s = 0; s < grid_size_; ++s) {
      const double remaining = budget_ - s * unit;
      const int budget_cap =
          std::max(static_cast<int>(std::floor(remaining / cost)), 0);
      const int capacity = std::min(budget_cap, per_type_cap);
      double value = 0.0;
      if (capacity > 0) {
        for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
          value += dist.Pmf(z) * DetectionTerm(options_.semantics, capacity, z);
        }
        if (options_.semantics == Semantics::kRatioOfExpectations) {
          value = std::min(value / mean_z_[static_cast<size_t>(t)], 1.0);
        }
      }
      g[static_cast<size_t>(s)] = value;
    }
  }
}

void DetectionModel::PrepareMcTables() {
  const int t_count = num_types();
  const size_t n = samples_.size();
  mc_consumption_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int t = static_cast<int>(i % t_count);
    mc_consumption_[i] =
        options_.consumption == Consumption::kReserved
            ? thresholds_[t]
            : std::min(thresholds_[t], samples_[i] * audit_costs_[t]);
  }
}

DetectionModel::Prefix DetectionModel::EmptyPrefix() const {
  Prefix prefix;
  if (options_.mode == Mode::kExact) {
    prefix.data.assign(static_cast<size_t>(grid_size_), 0.0);
    prefix.data[0] = 1.0;
  } else {
    prefix.data.assign(static_cast<size_t>(options_.mc_samples), 0.0);
  }
  return prefix;
}

double DetectionModel::PalGivenPrefix(const Prefix& prefix, int type) const {
  if (options_.mode == Mode::kExact) {
    const auto& g = g_[type];
    double pal = 0.0;
    for (int s = 0; s < grid_size_; ++s) {
      const double p = prefix.data[static_cast<size_t>(s)];
      if (p > 0) pal += p * g[static_cast<size_t>(s)];
    }
    return pal;
  }
  // Monte Carlo: average the detection term over samples.
  const int t_count = num_types();
  const double cost = audit_costs_[type];
  const int per_type_cap =
      static_cast<int>(std::floor(thresholds_[type] / cost));
  double total = 0.0;
  double z_total = 0.0;
  for (int k = 0; k < options_.mc_samples; ++k) {
    const double remaining = budget_ - prefix.data[static_cast<size_t>(k)];
    const int budget_cap =
        std::max(static_cast<int>(std::floor(remaining / cost)), 0);
    const int capacity = std::min(budget_cap, per_type_cap);
    const int z = samples_[static_cast<size_t>(k) * t_count + type];
    total += DetectionTerm(options_.semantics, capacity, z);
    z_total += z;
  }
  if (options_.semantics == Semantics::kRatioOfExpectations) {
    return z_total > 0 ? std::min(total / z_total, 1.0) : 0.0;
  }
  return total / options_.mc_samples;
}

void DetectionModel::ExtendPrefix(Prefix& prefix, int type) const {
  if (options_.mode == Mode::kExact) {
    std::vector<double> next(static_cast<size_t>(grid_size_), 0.0);
    const auto& cons = consumption_[type];
    for (int s = 0; s < grid_size_; ++s) {
      const double p = prefix.data[static_cast<size_t>(s)];
      if (p <= 0) continue;
      for (const auto& [cell, q] : cons) {
        const int target = std::min(s + cell, grid_size_ - 1);
        next[static_cast<size_t>(target)] += p * q;
      }
    }
    prefix.data = std::move(next);
    return;
  }
  const int t_count = num_types();
  for (int k = 0; k < options_.mc_samples; ++k) {
    prefix.data[static_cast<size_t>(k)] +=
        mc_consumption_[static_cast<size_t>(k) * t_count + type];
  }
}

util::StatusOr<std::vector<double>> DetectionModel::DetectionProbabilities(
    const std::vector<int>& ordering) const {
  const int t_count = num_types();
  if (static_cast<int>(ordering.size()) != t_count) {
    return util::InvalidArgumentError("ordering must contain every type");
  }
  std::vector<bool> seen(t_count, false);
  for (int t : ordering) {
    if (t < 0 || t >= t_count || seen[t]) {
      return util::InvalidArgumentError("ordering is not a permutation");
    }
    seen[t] = true;
  }
  std::vector<double> pal(t_count, 0.0);
  Prefix prefix = EmptyPrefix();
  for (size_t i = 0; i < ordering.size(); ++i) {
    const int t = ordering[i];
    pal[t] = PalGivenPrefix(prefix, t);
    if (i + 1 < ordering.size()) ExtendPrefix(prefix, t);
  }
  return pal;
}

}  // namespace auditgame::core
