#include "core/detection.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "math/kernels.h"
#include "util/random.h"

namespace auditgame::core {
namespace {

// Per-realization detection contribution for a bin of z benign alerts and
// audit capacity `capacity`, under the chosen semantics.
//  * kExpectedRatio: n/z (Eq. 1 literally); z = 0 is treated as "the attack
//    alert is the whole bin" — detected iff one audit is affordable.
//  * kInclusiveAttack: the attack alert joins the bin, so the bin holds
//    z + 1 alerts and the attack is audited with probability
//    min(capacity, z+1) / (z+1).
//  * kRatioOfExpectations: handled by the caller (needs E[min(cap, z)] and
//    E[z] separately); this helper returns the numerator term min(cap, z).
double DetectionTerm(DetectionModel::Semantics semantics, int capacity,
                     int z) {
  switch (semantics) {
    case DetectionModel::Semantics::kExpectedRatio:
      if (z <= 0) return capacity >= 1 ? 1.0 : 0.0;
      return static_cast<double>(std::min(capacity, z)) / z;
    case DetectionModel::Semantics::kInclusiveAttack:
      return static_cast<double>(std::min(capacity, z + 1)) / (z + 1);
    case DetectionModel::Semantics::kRatioOfExpectations:
      return static_cast<double>(std::min(capacity, z));
  }
  return 0.0;
}

}  // namespace

util::StatusOr<DetectionModel> DetectionModel::Create(
    const GameInstance& instance, double budget, const Options& options) {
  RETURN_IF_ERROR(instance.Validate());
  if (budget < 0) return util::InvalidArgumentError("budget must be >= 0");
  if (options.budget_unit <= 0) {
    return util::InvalidArgumentError("budget_unit must be > 0");
  }
  if (options.mode == Mode::kMonteCarlo && options.mc_samples <= 0) {
    return util::InvalidArgumentError("mc_samples must be > 0");
  }
  DetectionModel model;
  model.options_ = options;
  model.budget_ = budget;
  model.audit_costs_ = instance.audit_costs;
  model.distributions_ = instance.alert_distributions;
  model.thresholds_.assign(instance.num_types(), 0.0);
  model.mean_z_.reserve(instance.num_types());
  for (const auto& dist : model.distributions_) {
    model.mean_z_.push_back(std::max(dist.Mean(), 1e-12));
  }
  if (options.mode == Mode::kMonteCarlo) {
    // Draw the common random numbers once; all threshold vectors are
    // evaluated against the same Z samples, which makes search objectives
    // deterministic and smooth.
    util::Rng rng(options.seed);
    const int t_count = model.num_types();
    const size_t k_count = static_cast<size_t>(options.mc_samples);
    model.samples_.resize(k_count * t_count);
    // Draw order stays sample-major (the historical common-random-number
    // stream); only the storage is type-major.
    for (int k = 0; k < options.mc_samples; ++k) {
      for (int t = 0; t < t_count; ++t) {
        model.samples_[static_cast<size_t>(t) * k_count + k] =
            model.distributions_[t].Sample(rng);
      }
    }
  } else {
    model.grid_size_ =
        static_cast<int>(std::floor(budget / options.budget_unit)) + 1;
  }
  return model;
}

util::Status DetectionModel::SetThresholds(
    const std::vector<double>& thresholds) {
  if (thresholds.size() != static_cast<size_t>(num_types())) {
    return util::InvalidArgumentError("thresholds size != num types");
  }
  for (double b : thresholds) {
    if (b < 0 || !std::isfinite(b)) {
      return util::InvalidArgumentError("thresholds must be finite and >= 0");
    }
  }
  thresholds_ = thresholds;
  if (options_.mode == Mode::kExact) {
    PrepareExactTables();
  } else {
    PrepareMcTables();
  }
  return util::OkStatus();
}

void DetectionModel::PrepareExactTables() {
  const int t_count = num_types();
  const double unit = options_.budget_unit;
  // resize + clear (not assign) keeps every inner vector's capacity across
  // SetThresholds calls — ISHM sweeps re-threshold the same model in a loop.
  consumption_.resize(static_cast<size_t>(t_count));
  g_.resize(static_cast<size_t>(t_count));
  for (int t = 0; t < t_count; ++t) {
    const prob::CountDistribution& dist = distributions_[t];
    const double cost = audit_costs_[t];
    const double b = thresholds_[t];
    const int per_type_cap = static_cast<int>(std::floor(b / cost));

    // Consumption distribution: cell(min(b, z * C)) aggregated over z.
    // Once z * C >= b every z consumes exactly b, so the support is small.
    // Under kReserved the whole threshold is consumed deterministically.
    cell_prob_scratch_.assign(static_cast<size_t>(grid_size_), 0.0);
    for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
      const double consumed =
          options_.consumption == Consumption::kReserved ? b
                                                         : std::min(b, z * cost);
      int cell = static_cast<int>(std::llround(consumed / unit));
      cell = std::min(cell, grid_size_ - 1);
      cell_prob_scratch_[static_cast<size_t>(cell)] += dist.Pmf(z);
    }
    auto& sparse = consumption_[t];
    sparse.clear();
    for (int cell = 0; cell < grid_size_; ++cell) {
      if (cell_prob_scratch_[static_cast<size_t>(cell)] > 0) {
        sparse.emplace_back(cell, cell_prob_scratch_[static_cast<size_t>(cell)]);
      }
    }

    // g_t(consumed_cells) = E_z[DetectionTerm(capacity, z)].
    auto& g = g_[t];
    g.assign(static_cast<size_t>(grid_size_), 0.0);
    for (int s = 0; s < grid_size_; ++s) {
      const double remaining = budget_ - s * unit;
      const int budget_cap =
          std::max(static_cast<int>(std::floor(remaining / cost)), 0);
      const int capacity = std::min(budget_cap, per_type_cap);
      double value = 0.0;
      if (capacity > 0) {
        // Branchy per-z term, so the expectation reduces through the
        // canonical blocked accumulator rather than a vector kernel.
        math::BlockedAccumulator acc;
        for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
          acc.Add(dist.Pmf(z) * DetectionTerm(options_.semantics, capacity, z));
        }
        value = acc.Total();
        if (options_.semantics == Semantics::kRatioOfExpectations) {
          value = std::min(value / mean_z_[static_cast<size_t>(t)], 1.0);
        }
      }
      g[static_cast<size_t>(s)] = value;
    }
  }
}

void DetectionModel::PrepareMcTables() {
  const int t_count = num_types();
  const size_t k_count = static_cast<size_t>(options_.mc_samples);
  mc_consumption_.resize(samples_.size());
  for (int t = 0; t < t_count; ++t) {
    const double b = thresholds_[t];
    const double cost = audit_costs_[t];
    const int* z_row = samples_.data() + static_cast<size_t>(t) * k_count;
    double* out_row = mc_consumption_.data() + static_cast<size_t>(t) * k_count;
    if (options_.consumption == Consumption::kReserved) {
      for (size_t k = 0; k < k_count; ++k) out_row[k] = b;
    } else {
      for (size_t k = 0; k < k_count; ++k) {
        out_row[k] = std::min(b, z_row[k] * cost);
      }
    }
  }
}

DetectionModel::Prefix DetectionModel::EmptyPrefix() const {
  Prefix prefix;
  ResetPrefix(prefix);
  return prefix;
}

void DetectionModel::ResetPrefix(Prefix& prefix) const {
  if (options_.mode == Mode::kExact) {
    prefix.data.assign(static_cast<size_t>(grid_size_), 0.0);
    prefix.data[0] = 1.0;
  } else {
    prefix.data.assign(static_cast<size_t>(options_.mc_samples), 0.0);
  }
}

double DetectionModel::PalGivenPrefix(const Prefix& prefix, int type) const {
  if (options_.mode == Mode::kExact) {
    // Weighted-tail accumulation: prefix probability x conditional
    // detection, one dense kernel dot over the budget grid.
    return math::Dot(prefix.data.data(), g_[type].data(),
                     static_cast<size_t>(grid_size_));
  }
  // Monte Carlo: average the detection term over samples. The per-sample
  // term is branchy scalar code, so it reduces through the canonical
  // blocked accumulator; the z sum is exact in int64 (order-free).
  const size_t k_count = static_cast<size_t>(options_.mc_samples);
  const double cost = audit_costs_[type];
  const int per_type_cap =
      static_cast<int>(std::floor(thresholds_[type] / cost));
  const int* z_row = samples_.data() + static_cast<size_t>(type) * k_count;
  math::BlockedAccumulator total;
  int64_t z_total = 0;
  for (size_t k = 0; k < k_count; ++k) {
    const double remaining = budget_ - prefix.data[k];
    const int budget_cap =
        std::max(static_cast<int>(std::floor(remaining / cost)), 0);
    const int capacity = std::min(budget_cap, per_type_cap);
    total.Add(DetectionTerm(options_.semantics, capacity, z_row[k]));
    z_total += z_row[k];
  }
  if (options_.semantics == Semantics::kRatioOfExpectations) {
    return z_total > 0
               ? std::min(total.Total() / static_cast<double>(z_total), 1.0)
               : 0.0;
  }
  return total.Total() / options_.mc_samples;
}

void DetectionModel::ExtendPrefix(Prefix& prefix, int type) const {
  if (options_.mode == Mode::kExact) {
    // The consumption pmf is sparse; each support point (cell, q) is one
    // shifted-axpy pass over the whole prefix with saturation at the last
    // grid cell. Double-buffered through prefix.scratch so repeated
    // extensions never allocate after the first.
    const size_t n = static_cast<size_t>(grid_size_);
    prefix.scratch.assign(n, 0.0);
    for (const auto& [cell, q] : consumption_[type]) {
      math::ConvolveShiftSaturate(prefix.data.data(), n,
                                  static_cast<size_t>(cell), q,
                                  prefix.scratch.data());
    }
    prefix.data.swap(prefix.scratch);
    return;
  }
  const size_t k_count = static_cast<size_t>(options_.mc_samples);
  math::Add(mc_consumption_.data() + static_cast<size_t>(type) * k_count,
            prefix.data.data(), k_count);
}

util::StatusOr<std::vector<double>> DetectionModel::DetectionProbabilities(
    const std::vector<int>& ordering) const {
  std::vector<double> pal;
  Prefix prefix;
  RETURN_IF_ERROR(DetectionProbabilitiesInto(ordering, prefix, pal));
  return pal;
}

util::Status DetectionModel::DetectionProbabilitiesInto(
    const std::vector<int>& ordering, Prefix& prefix,
    std::vector<double>& pal) const {
  const int t_count = num_types();
  if (static_cast<int>(ordering.size()) != t_count) {
    return util::InvalidArgumentError("ordering must contain every type");
  }
  if (t_count <= 64) {
    // Allocation-free permutation check for the common instance sizes.
    uint64_t seen = 0;
    for (int t : ordering) {
      const uint64_t bit = uint64_t{1} << (t & 63);
      if (t < 0 || t >= t_count || (seen & bit)) {
        return util::InvalidArgumentError("ordering is not a permutation");
      }
      seen |= bit;
    }
  } else {
    std::vector<bool> seen(static_cast<size_t>(t_count), false);
    for (int t : ordering) {
      if (t < 0 || t >= t_count || seen[static_cast<size_t>(t)]) {
        return util::InvalidArgumentError("ordering is not a permutation");
      }
      seen[static_cast<size_t>(t)] = true;
    }
  }
  pal.assign(static_cast<size_t>(t_count), 0.0);
  ResetPrefix(prefix);
  for (size_t i = 0; i < ordering.size(); ++i) {
    const int t = ordering[i];
    pal[static_cast<size_t>(t)] = PalGivenPrefix(prefix, t);
    if (i + 1 < ordering.size()) ExtendPrefix(prefix, t);
  }
  return util::OkStatus();
}

}  // namespace auditgame::core
