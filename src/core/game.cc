#include "core/game.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "math/kernels.h"
#include "util/serializer.h"

namespace auditgame::core {
namespace {

// Byte-exact serialization of a victim profile, used for deduplication.
// Victims built from the same parameters are bitwise identical, which is
// the only case we need to collapse.
std::string VictimKey(const VictimProfile& v) {
  std::string key;
  key.reserve(sizeof(double) * (v.type_probs.size() + 3));
  auto append = [&key](double d) {
    char buf[sizeof(double)];
    std::memcpy(buf, &d, sizeof(double));
    key.append(buf, sizeof(double));
  };
  for (double p : v.type_probs) append(p);
  append(v.benefit);
  append(v.penalty);
  append(v.attack_cost);
  return key;
}

}  // namespace

util::Status GameInstance::Validate() const {
  const int t = num_types();
  if (t == 0) return util::InvalidArgumentError("no alert types");
  if (static_cast<int>(type_names.size()) != t) {
    return util::InvalidArgumentError("type_names size mismatch");
  }
  if (static_cast<int>(alert_distributions.size()) != t) {
    return util::InvalidArgumentError("alert_distributions size mismatch");
  }
  for (double c : audit_costs) {
    if (!(c > 0) || !std::isfinite(c)) {
      return util::InvalidArgumentError("audit costs must be positive");
    }
  }
  if (adversaries.empty()) {
    return util::InvalidArgumentError("no adversaries");
  }
  for (size_t e = 0; e < adversaries.size(); ++e) {
    const Adversary& adv = adversaries[e];
    if (adv.attack_probability < 0 || adv.attack_probability > 1) {
      return util::InvalidArgumentError("p_e out of [0,1] for adversary " +
                                        std::to_string(e));
    }
    if (adv.victims.empty() && !adv.can_opt_out) {
      return util::InvalidArgumentError("adversary " + std::to_string(e) +
                                        " has no victims and no opt-out");
    }
    for (const VictimProfile& v : adv.victims) {
      if (static_cast<int>(v.type_probs.size()) != t) {
        return util::InvalidArgumentError("victim type_probs size mismatch");
      }
      double total = 0.0;
      for (double p : v.type_probs) {
        if (p < 0 || p > 1 || !std::isfinite(p)) {
          return util::InvalidArgumentError("victim type prob out of range");
        }
        total += p;
      }
      if (total > 1.0 + 1e-9) {
        return util::InvalidArgumentError("victim type probs sum > 1");
      }
      if (v.penalty < 0) {
        return util::InvalidArgumentError(
            "penalty must be a non-negative magnitude");
      }
      if (!std::isfinite(v.benefit) || !std::isfinite(v.attack_cost)) {
        return util::InvalidArgumentError("non-finite victim economics");
      }
    }
  }
  return util::OkStatus();
}

int CompiledGame::num_rows() const {
  int rows = 0;
  for (const auto& g : groups) rows += static_cast<int>(g.victims.size());
  return rows;
}

util::StatusOr<CompiledGame> Compile(const GameInstance& instance) {
  RETURN_IF_ERROR(instance.Validate());
  CompiledGame compiled;
  compiled.num_types = instance.num_types();

  // Group signature -> group index.
  std::map<std::string, int> group_index;
  for (size_t e = 0; e < instance.adversaries.size(); ++e) {
    const Adversary& adv = instance.adversaries[e];
    if (adv.attack_probability == 0.0) continue;  // never attacks

    // Canonical, deduplicated victim set.
    std::map<std::string, const VictimProfile*> dedup;
    for (const VictimProfile& v : adv.victims) dedup.emplace(VictimKey(v), &v);

    std::string signature = adv.can_opt_out ? "O" : "A";
    for (const auto& [key, victim] : dedup) signature += key;

    auto [it, inserted] =
        group_index.emplace(signature, static_cast<int>(compiled.groups.size()));
    if (inserted) {
      AdversaryGroup group;
      group.can_opt_out = adv.can_opt_out;
      for (const auto& [key, victim] : dedup) group.victims.push_back(*victim);
      compiled.groups.push_back(std::move(group));
    }
    AdversaryGroup& group = compiled.groups[it->second];
    group.weight += adv.attack_probability;
    group.members.push_back(static_cast<int>(e));
  }
  if (compiled.groups.empty()) {
    return util::InvalidArgumentError("all adversaries have p_e = 0");
  }
  return compiled;
}

double AdversaryUtility(const VictimProfile& victim, const double* pal) {
  const double pat =
      math::Dot(victim.type_probs.data(), pal, victim.type_probs.size());
  return -pat * victim.penalty + (1.0 - pat) * victim.benefit -
         victim.attack_cost;
}

double AdversaryUtility(const VictimProfile& victim,
                        const std::vector<double>& pal) {
  return AdversaryUtility(victim, pal.data());
}

void VictimProfile::StreamState(util::Serializer& s) {
  s.Section("victim", 1);
  s.VecF64(type_probs);
  s.F64(benefit);
  s.F64(penalty);
  s.F64(attack_cost);
}

void Adversary::StreamState(util::Serializer& s) {
  s.Section("adversary", 1);
  s.F64(attack_probability);
  s.VecObj(victims);
  s.Bool(can_opt_out);
}

void GameInstance::StreamState(util::Serializer& s) {
  s.Section("game", 1);
  s.VecStr(type_names);
  s.VecF64(audit_costs);
  s.VecObj(alert_distributions);
  s.VecObj(adversaries);
  if (s.reading() && s.ok()) {
    util::Status valid = Validate();
    if (!valid.ok()) s.Fail(std::move(valid));
  }
}

}  // namespace auditgame::core
