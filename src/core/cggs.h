#ifndef AUDIT_GAME_CORE_CGGS_H_
#define AUDIT_GAME_CORE_CGGS_H_

#include <cstdint>
#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "core/policy.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::util {
class ThreadPool;
class WorkspacePool;
}  // namespace auditgame::util

namespace auditgame::core {

/// Options for Column Generation Greedy Search (Algorithm 1).
struct CggsOptions {
  /// How the restricted master LP is solved across pricing iterations.
  ///  * kIncrementalRevised — one RestrictedMasterLp (core/master_lp.h) is
  ///    kept alive for the whole loop; each round appends the priced
  ///    ordering as a column and the revised simplex re-solves from the
  ///    previous optimal basis, skipping phase 1. Default.
  ///  * kColdDense — every round re-solves the master from scratch with
  ///    the dense-tableau backend: the pre-incremental reference path,
  ///    kept for A/B benchmarking (bench/micro_cggs) and debugging.
  /// Given the same column pool the two modes solve identical LPs and
  /// agree to solver tolerance; over a whole run the dual-driven greedy
  /// pricing can branch at degenerate master optima, so final objectives
  /// can differ by the usual heuristic gap (they agree to 1e-6 on Syn A).
  enum class MasterMode { kIncrementalRevised, kColdDense };
  MasterMode master_mode = MasterMode::kIncrementalRevised;
  /// Cap on generated columns (orderings) — safety net; the search normally
  /// terminates when no column with negative reduced cost is found.
  int max_columns = 200;
  /// A column enters only if its reduced cost is below -tolerance.
  double reduced_cost_tolerance = 1e-7;
  /// Extra random candidate orderings priced per iteration, alongside the
  /// greedy one. The paper's pricing subproblem is itself hard; a few random
  /// probes make the heuristic noticeably more robust at negligible cost.
  int random_probes = 2;
  uint64_t seed = 7;
  /// Worker threads for the pricing round: the greedy ordering growth fans
  /// its per-type candidate scores and the probe candidates fan their
  /// reduced-cost evaluations across a util::ThreadPool. 0 or 1 = serial.
  ///
  /// Determinism contract: the result is bit-for-bit identical for every
  /// value of pricing_threads. Probe r of pricing round k draws from its
  /// own Rng pre-seeded by (seed, k, r) — never from a shared stream — all
  /// scores land in preassigned slots, and the entering column is the
  /// deterministic minimum (reduced cost, then lexicographically smallest
  /// ordering), independent of scheduling. See docs/DESIGN.md
  /// "Parallel pricing".
  int pricing_threads = 1;
  /// Optional non-owning pool to run the pricing round on when
  /// pricing_threads > 1; must outlive the solve. Callers that solve
  /// repeatedly (the ISHM evaluator, serving loops) share one pool here
  /// instead of paying a thread spawn+join per solve. Null = the solve
  /// creates its own. Result-neutral like pricing_threads itself (work is
  /// chunked by pricing_threads, never by pool size) and therefore
  /// excluded from policy-cache fingerprints.
  util::ThreadPool* pricing_pool = nullptr;
  /// Optional non-owning scratch pool (util/arena.h) for the solve's hot
  /// paths: greedy-pricing candidate buffers and the master LP's revised
  /// simplex draw from it instead of the heap, so repeated solves (ISHM
  /// sweeps, serving loops) run allocation-free in steady state. Must
  /// outlive the solve. Null = the solve creates its own. Scratch slots are
  /// preassigned by chunk index, so — like pricing_pool — this is
  /// result-neutral and excluded from policy-cache fingerprints.
  util::WorkspacePool* workspace = nullptr;
  /// Optional warm start: orderings to seed Q with (e.g. the support of the
  /// solution at a neighboring threshold vector during ISHM).
  std::vector<std::vector<int>> initial_orderings;
};

/// Result of a CGGS solve.
struct CggsResult {
  double objective = 0.0;
  AuditPolicy policy;
  /// All columns considered (Q at termination) — useful for warm starts.
  std::vector<std::vector<int>> columns;
  int lp_solves = 0;
  int columns_generated = 0;
  /// Master LP solves that resumed from the previous basis (always 0 in
  /// kColdDense mode; lp_solves - 1 in a healthy incremental run).
  int warm_lp_solves = 0;
  /// Simplex iterations summed over all master solves.
  long master_lp_iterations = 0;
  /// Wall-clock spent in the pricing rounds (greedy growth + probe
  /// generation + reduced-cost evaluation) — the part pricing_threads
  /// parallelizes; bench/scenario_suite reports the speedup.
  double pricing_seconds = 0.0;
};

/// Solves the fixed-threshold game LP by column generation (Algorithm 1 of
/// the paper): repeatedly solve the restricted master over Q, then greedily
/// build a new ordering that minimizes reduced cost under the current duals
/// (appending one type at a time), and add it to Q while its reduced cost
/// is negative.
util::StatusOr<CggsResult> SolveCggs(const CompiledGame& game,
                                     DetectionModel& detection,
                                     const std::vector<double>& thresholds,
                                     const CggsOptions& options = {});

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_CGGS_H_
