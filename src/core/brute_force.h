#ifndef AUDIT_GAME_CORE_BRUTE_FORCE_H_
#define AUDIT_GAME_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "core/policy.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::core {

/// Options for the exact OAP solver.
struct BruteForceOptions {
  /// Paper's search-space constraint: only consider threshold vectors with
  /// sum_t b_t >= B (anything less provably wastes budget).
  bool require_sum_at_least_budget = true;
};

struct BruteForceResult {
  double objective = 0.0;
  /// Optimal integer thresholds (in audits per type, i.e. b_t / C_t).
  std::vector<int> thresholds;
  AuditPolicy policy;
  /// Number of threshold vectors whose LP was solved.
  uint64_t vectors_evaluated = 0;
  /// Size of the full search space prod_t (J_t + 1).
  uint64_t search_space = 0;
};

/// Exact reference solver for the controlled evaluation (Table III):
/// enumerates every integer threshold vector b with 0 <= b_t <= J_t (J_t =
/// the top of F_t's support) and solves the full LP over all |T|! orderings
/// for each. Exponential in |T|; intended for small instances only.
util::StatusOr<BruteForceResult> SolveBruteForce(
    const GameInstance& instance, double budget,
    const BruteForceOptions& options = {},
    DetectionModel::Options detection_options = {});

/// Overload reusing an already-compiled game and detection model (which
/// carries the budget); `detection` must be bound to `instance` and its
/// thresholds are overwritten. This is what the solver-registry adapter
/// calls so a solve does not compile the game twice.
util::StatusOr<BruteForceResult> SolveBruteForce(
    const GameInstance& instance, const CompiledGame& game,
    DetectionModel& detection, const BruteForceOptions& options = {});

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_BRUTE_FORCE_H_
