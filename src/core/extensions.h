#ifndef AUDIT_GAME_CORE_EXTENSIONS_H_
#define AUDIT_GAME_CORE_EXTENSIONS_H_

#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "core/policy.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::core {

/// Extensions beyond the paper's evaluated model, implementing the three
/// directions its Discussion section marks as future work: bounded
/// rationality, non-zero-sum payoffs, and parameter sensitivity.

/// ---- Bounded rationality: quantal-response adversaries ------------------
///
/// Instead of best-responding, each adversary picks victim v with
/// probability proportional to exp(lambda * Ua(v)) (logit quantal
/// response). lambda -> infinity recovers the rational best response;
/// lambda = 0 is uniform. The opt-out option participates with utility 0.
struct QuantalResponseEvaluation {
  /// Expected auditor loss under the QR attack distribution.
  double auditor_loss = 0.0;
  /// Probability that each group refrains entirely (mass on opt-out).
  std::vector<double> opt_out_probability;
};
util::StatusOr<QuantalResponseEvaluation> EvaluateQuantalResponse(
    const CompiledGame& game, DetectionModel& detection,
    const AuditPolicy& policy, double lambda);

/// ---- Non-zero-sum auditor objective --------------------------------------
///
/// The paper assumes zero sum: the auditor's loss equals the adversary's
/// utility, including the adversary's attack cost K and capture penalty M.
/// In reality the auditor mostly cares about damage from SUCCESSFUL
/// violations. This evaluation keeps the adversaries best-responding with
/// respect to their own utility (Eq. 3) but scores the auditor by
///   loss = sum_e p_e * (1 - Pat(v*)) * R(v*)
/// for the chosen victim v* (0 when the adversary refrains).
struct NonZeroSumEvaluation {
  double auditor_loss = 0.0;
  /// Zero-sum loss of the same policy, for comparison.
  double zero_sum_loss = 0.0;
};
util::StatusOr<NonZeroSumEvaluation> EvaluateNonZeroSum(
    const CompiledGame& game, DetectionModel& detection,
    const AuditPolicy& policy);

/// ---- Parameter sensitivity ------------------------------------------------
///
/// Returns a copy of `instance` with every victim's benefit, penalty and
/// attack cost scaled by the given multipliers. Used to study how sensitive
/// the comparative results are to the (ad hoc) utility parameters, a
/// question the paper leaves open.
GameInstance ScaleUtilities(const GameInstance& instance,
                            double benefit_multiplier,
                            double penalty_multiplier,
                            double attack_cost_multiplier);

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_EXTENSIONS_H_
