#ifndef AUDIT_GAME_CORE_GAME_IO_H_
#define AUDIT_GAME_CORE_GAME_IO_H_

#include <string>

#include "core/game.h"
#include "core/policy.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::core {

/// JSON (de)serialization of game instances and audit policies, so the
/// solver can be driven by configuration files (see tools/solve_policy).
///
/// Game schema:
/// {
///   "types": [
///     { "name": "...", "audit_cost": 1.0,
///       "counts": { "kind": "gaussian", "mean": 6, "stddev": 2,
///                   "min": 1, "max": 11 }          // or
///       "counts": { "kind": "pmf", "min": 3, "pmf": [0.25, 0.5, 0.25] } }
///   ],
///   "adversaries": [
///     { "attack_probability": 1.0, "can_opt_out": true,
///       "victims": [
///         { "type_probs": [1, 0], "benefit": 4.0, "penalty": 2.0,
///           "attack_cost": 1.0 } ] } ]
/// }
util::JsonValue GameToJson(const GameInstance& instance);
util::StatusOr<GameInstance> GameFromJson(const util::JsonValue& json);

/// Convenience round trips through text.
util::StatusOr<GameInstance> ParseGame(const std::string& json_text);
std::string SerializeGame(const GameInstance& instance, int indent = 2);

/// Deterministic 128-bit content fingerprint of a game instance: two
/// instances fingerprint equal iff their types, audit costs, alert-count
/// distributions and adversaries are identical (field-for-field, exact
/// double bits — the serving layer treats any distribution drift, however
/// small, as a different instance). Stable across processes and platforms;
/// the serving layer keys its policy cache on this (see
/// service/policy_cache.h).
util::Fingerprint FingerprintGame(const GameInstance& instance);

/// Fingerprint of only the compile-relevant content: the type count and
/// the adversaries (Compile() reads nothing else — CompiledGame carries no
/// distribution, name or cost data). The engine keys its compiled-game
/// cache on this, so a serving loop whose alert-count distributions drift
/// every cycle still compiles the game exactly once.
util::Fingerprint FingerprintGameStructure(const GameInstance& instance);

/// Policy schema: { "budget", "thresholds": [...],
///                  "orderings": [[...]], "probabilities": [...] }.
util::JsonValue PolicyToJson(const AuditPolicy& policy);
util::StatusOr<AuditPolicy> PolicyFromJson(const util::JsonValue& json);
util::StatusOr<AuditPolicy> ParsePolicy(const std::string& json_text);
std::string SerializePolicy(const AuditPolicy& policy, int indent = 2);

}  // namespace auditgame::core

#endif  // AUDIT_GAME_CORE_GAME_IO_H_
