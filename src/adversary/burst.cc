#include "adversary/burst.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "scenario/stream.h"
#include "util/random.h"

namespace auditgame::adversary {

util::StatusOr<BurstKind> BurstKindFromName(const std::string& name) {
  if (name == "flash") return BurstKind::kFlashCrowd;
  if (name == "fraud") return BurstKind::kCoordinatedFraud;
  return util::NotFoundError("unknown burst kind '" + name +
                             "' (have: flash, fraud)");
}

BurstGenerator::BurstGenerator(const BurstSpec& spec, int num_tenants,
                               int num_types)
    : spec_(spec),
      num_tenants_(std::max(0, num_tenants)),
      num_types_(std::max(0, num_types)) {}

BurstEvent BurstGenerator::EventAt(int cycle) const {
  BurstEvent event;
  if (spec_.period <= 0 || spec_.duration <= 0 || cycle < spec_.period ||
      num_tenants_ <= 0) {
    return event;
  }
  // The burst that could cover this cycle started at the latest multiple of
  // `period` at or before it.
  const int burst_index = cycle / spec_.period;
  const int start = burst_index * spec_.period;
  if (cycle >= start + spec_.duration) return event;

  event.active = true;
  event.target_type = spec_.kind == BurstKind::kCoordinatedFraud
                          ? spec_.target_type % std::max(1, num_types_)
                          : -1;
  const double fraction = std::clamp(spec_.tenant_fraction, 0.0, 1.0);
  const int affected = std::min(
      num_tenants_,
      static_cast<int>(
          std::ceil(fraction * static_cast<double>(num_tenants_))));
  if (affected <= 0) return event;
  // Seeded per-burst shuffle: which tenants surge is deterministic in
  // (seed, burst index) and independent of everything else.
  std::vector<int> tenants(static_cast<size_t>(num_tenants_));
  std::iota(tenants.begin(), tenants.end(), 0);
  util::Rng rng(spec_.seed + 0x9E3779B97F4A7C15ULL *
                                 static_cast<uint64_t>(burst_index));
  rng.Shuffle(tenants);
  tenants.resize(static_cast<size_t>(affected));
  std::sort(tenants.begin(), tenants.end());
  event.tenants = std::move(tenants);
  return event;
}

bool BurstGenerator::Affects(int cycle, int tenant) const {
  const BurstEvent event = EventAt(cycle);
  return event.active && std::binary_search(event.tenants.begin(),
                                            event.tenants.end(), tenant);
}

util::StatusOr<std::vector<prob::CountDistribution>> BurstGenerator::Apply(
    int cycle, int tenant,
    const std::vector<prob::CountDistribution>& distributions) const {
  if (!Affects(cycle, tenant)) return distributions;
  const BurstEvent event = EventAt(cycle);
  std::vector<prob::CountDistribution> surged;
  surged.reserve(distributions.size());
  for (size_t t = 0; t < distributions.size(); ++t) {
    const bool hit = event.target_type < 0 ||
                     static_cast<size_t>(event.target_type) == t;
    if (!hit) {
      surged.push_back(distributions[t]);
      continue;
    }
    ASSIGN_OR_RETURN(
        prob::CountDistribution tilted,
        scenario::ExponentialTilt(distributions[t], spec_.amplitude));
    surged.push_back(std::move(tilted));
  }
  return surged;
}

}  // namespace auditgame::adversary
