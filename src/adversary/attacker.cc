#include "adversary/attacker.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "scenario/stream.h"

namespace auditgame::adversary {

util::StatusOr<AttackerKind> AttackerKindFromName(const std::string& name) {
  if (name == "best-response") return AttackerKind::kBestResponse;
  if (name == "quantal") return AttackerKind::kQuantalResponse;
  if (name == "fictitious") return AttackerKind::kFictitiousPlay;
  return util::NotFoundError("unknown attacker '" + name +
                             "' (have: best-response, quantal, fictitious)");
}

const char* AttackerKindName(AttackerKind kind) {
  switch (kind) {
    case AttackerKind::kBestResponse:
      return "best-response";
    case AttackerKind::kQuantalResponse:
      return "quantal";
    case AttackerKind::kFictitiousPlay:
      return "fictitious";
  }
  return "?";
}

util::StatusOr<AttackerEconomics> DeriveEconomics(
    const core::GameInstance& instance) {
  const int num_types = instance.num_types();
  if (num_types <= 0) {
    return util::InvalidArgumentError("instance has no alert types");
  }
  AttackerEconomics economics;
  economics.benefits.assign(static_cast<size_t>(num_types), 0.0);
  economics.penalties.assign(static_cast<size_t>(num_types), 0.0);
  economics.attack_costs.assign(static_cast<size_t>(num_types), 0.0);
  std::vector<double> weight(static_cast<size_t>(num_types), 0.0);
  double global_benefit = 0.0, global_penalty = 0.0, global_cost = 0.0;
  double global_weight = 0.0;
  for (const core::Adversary& adversary : instance.adversaries) {
    for (const core::VictimProfile& victim : adversary.victims) {
      if (static_cast<int>(victim.type_probs.size()) != num_types) {
        return util::InvalidArgumentError(
            "victim type_probs size does not match the type count");
      }
      for (int t = 0; t < num_types; ++t) {
        const double w = victim.type_probs[static_cast<size_t>(t)];
        if (w <= 0.0) continue;
        economics.benefits[static_cast<size_t>(t)] += w * victim.benefit;
        economics.penalties[static_cast<size_t>(t)] += w * victim.penalty;
        economics.attack_costs[static_cast<size_t>(t)] += w * victim.attack_cost;
        weight[static_cast<size_t>(t)] += w;
      }
      global_benefit += victim.benefit;
      global_penalty += victim.penalty;
      global_cost += victim.attack_cost;
      global_weight += 1.0;
    }
  }
  if (global_weight <= 0.0) {
    return util::InvalidArgumentError("instance has no victim profiles");
  }
  for (int t = 0; t < num_types; ++t) {
    const size_t i = static_cast<size_t>(t);
    if (weight[i] > 0.0) {
      economics.benefits[i] /= weight[i];
      economics.penalties[i] /= weight[i];
      economics.attack_costs[i] /= weight[i];
    } else {
      // No victim reaches this type: keep it priced (the attacker could
      // still be offered it by a future drill) at the global victim means.
      economics.benefits[i] = global_benefit / global_weight;
      economics.penalties[i] = global_penalty / global_weight;
      economics.attack_costs[i] = global_cost / global_weight;
    }
  }
  return economics;
}

std::vector<double> PerTypeAttackUtilities(const AttackerEconomics& economics,
                                           const std::vector<double>& pal) {
  const int num_types = economics.num_types();
  std::vector<double> utilities(static_cast<size_t>(num_types), 0.0);
  core::VictimProfile channel;
  channel.type_probs.assign(static_cast<size_t>(num_types), 0.0);
  for (int t = 0; t < num_types; ++t) {
    const size_t i = static_cast<size_t>(t);
    channel.type_probs[i] = 1.0;
    channel.benefit = economics.benefits[i];
    channel.penalty = economics.penalties[i];
    channel.attack_cost = economics.attack_costs[i];
    utilities[i] = core::AdversaryUtility(channel, pal);
    channel.type_probs[i] = 0.0;
  }
  return utilities;
}

double BestAttackUtility(const AttackerEconomics& economics,
                         const std::vector<double>& pal) {
  double best = 0.0;
  for (double u : PerTypeAttackUtilities(economics, pal)) {
    best = std::max(best, u);
  }
  return best;
}

namespace {

/// Shared machinery: the subclasses produce an attack-mass allocation from
/// the observation, the base turns it into tilted distributions. A type
/// with zero allocation keeps its baseline distribution bit for bit, so
/// "no attack" cycles are exact cache revisits on the defender side.
class AllocationAttacker : public Attacker {
 public:
  AllocationAttacker(const AttackerSpec& spec,
                     std::vector<prob::CountDistribution> baseline,
                     AttackerEconomics economics)
      : spec_(spec),
        baseline_(std::move(baseline)),
        economics_(std::move(economics)),
        allocation_(baseline_.size(), 0.0) {}

  util::StatusOr<std::vector<prob::CountDistribution>> NextCycle(
      const std::vector<double>& observed_detection) override {
    if (observed_detection.empty()) {
      // Nothing observed yet (cycle 1): lie low, emit the benign stream.
      std::fill(allocation_.begin(), allocation_.end(), 0.0);
    } else if (static_cast<int>(observed_detection.size()) !=
               economics_.num_types()) {
      return util::InvalidArgumentError(
          "observed detection vector has " +
          std::to_string(observed_detection.size()) + " entries for " +
          std::to_string(economics_.num_types()) + " types");
    } else {
      allocation_ = Allocate(observed_detection);
    }
    std::vector<prob::CountDistribution> next;
    next.reserve(baseline_.size());
    for (size_t t = 0; t < baseline_.size(); ++t) {
      const double w = allocation_[t];
      if (w <= 0.0) {
        next.push_back(baseline_[t]);
        continue;
      }
      ASSIGN_OR_RETURN(
          prob::CountDistribution tilted,
          scenario::ExponentialTilt(baseline_[t], spec_.attack_rate * w));
      next.push_back(std::move(tilted));
    }
    return next;
  }

  const std::vector<double>& last_allocation() const override {
    return allocation_;
  }

 protected:
  /// Attack-mass allocation (w_t in [0, 1]) for one observation.
  virtual std::vector<double> Allocate(const std::vector<double>& pal) = 0;

  const AttackerSpec spec_;
  const std::vector<prob::CountDistribution> baseline_;
  const AttackerEconomics economics_;
  std::vector<double> allocation_;
};

/// Index of the utility-maximizing type, or -1 when no attack is worth it.
/// Ties break to the lowest index, deterministically.
int BestResponseType(const std::vector<double>& utilities) {
  int best = -1;
  double best_utility = 0.0;
  for (size_t t = 0; t < utilities.size(); ++t) {
    if (utilities[t] > best_utility) {
      best = static_cast<int>(t);
      best_utility = utilities[t];
    }
  }
  return best;
}

class BestResponseAttacker : public AllocationAttacker {
 public:
  using AllocationAttacker::AllocationAttacker;
  std::string_view Name() const override { return "best-response"; }

 protected:
  std::vector<double> Allocate(const std::vector<double>& pal) override {
    std::vector<double> allocation(baseline_.size(), 0.0);
    const int target = BestResponseType(PerTypeAttackUtilities(economics_, pal));
    if (target >= 0) allocation[static_cast<size_t>(target)] = 1.0;
    return allocation;
  }
};

class QuantalResponseAttacker : public AllocationAttacker {
 public:
  using AllocationAttacker::AllocationAttacker;
  std::string_view Name() const override { return "quantal"; }

 protected:
  std::vector<double> Allocate(const std::vector<double>& pal) override {
    const std::vector<double> utilities =
        PerTypeAttackUtilities(economics_, pal);
    // Softmax with the max subtracted for numerical stability; the shift
    // cancels in the normalization.
    const double peak = *std::max_element(utilities.begin(), utilities.end());
    std::vector<double> allocation(utilities.size(), 0.0);
    double total = 0.0;
    for (size_t t = 0; t < utilities.size(); ++t) {
      allocation[t] = std::exp(spec_.lambda * (utilities[t] - peak));
      total += allocation[t];
    }
    for (double& w : allocation) w /= total;
    return allocation;
  }
};

class FictitiousPlayAttacker : public AllocationAttacker {
 public:
  using AllocationAttacker::AllocationAttacker;
  std::string_view Name() const override { return "fictitious"; }

 protected:
  std::vector<double> Allocate(const std::vector<double>& pal) override {
    if (pal_sum_.empty()) pal_sum_.assign(pal.size(), 0.0);
    for (size_t t = 0; t < pal.size(); ++t) pal_sum_[t] += pal[t];
    ++observations_;
    std::vector<double> mean_pal(pal.size());
    for (size_t t = 0; t < pal.size(); ++t) {
      mean_pal[t] = pal_sum_[t] / static_cast<double>(observations_);
    }
    std::vector<double> allocation(baseline_.size(), 0.0);
    const int target =
        BestResponseType(PerTypeAttackUtilities(economics_, mean_pal));
    if (target >= 0) allocation[static_cast<size_t>(target)] = 1.0;
    return allocation;
  }

 private:
  std::vector<double> pal_sum_;
  int64_t observations_ = 0;
};

}  // namespace

util::StatusOr<std::unique_ptr<Attacker>> MakeAttacker(
    const AttackerSpec& spec, std::vector<prob::CountDistribution> baseline,
    AttackerEconomics economics) {
  if (baseline.empty() ||
      static_cast<int>(baseline.size()) != economics.num_types()) {
    return util::InvalidArgumentError(
        "attacker baseline and economics must cover the same non-empty "
        "type set");
  }
  if (!(spec.attack_rate >= 0.0) || !(spec.lambda >= 0.0)) {
    return util::InvalidArgumentError(
        "attack_rate and lambda must be non-negative");
  }
  switch (spec.kind) {
    case AttackerKind::kBestResponse:
      return std::unique_ptr<Attacker>(new BestResponseAttacker(
          spec, std::move(baseline), std::move(economics)));
    case AttackerKind::kQuantalResponse:
      return std::unique_ptr<Attacker>(new QuantalResponseAttacker(
          spec, std::move(baseline), std::move(economics)));
    case AttackerKind::kFictitiousPlay:
      return std::unique_ptr<Attacker>(new FictitiousPlayAttacker(
          spec, std::move(baseline), std::move(economics)));
  }
  return util::InvalidArgumentError("unknown attacker kind");
}

}  // namespace auditgame::adversary
