#ifndef AUDIT_GAME_ADVERSARY_TRACE_H_
#define AUDIT_GAME_ADVERSARY_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/game.h"
#include "prob/count_distribution.h"
#include "scenario/stream.h"
#include "util/statusor.h"

namespace auditgame::adversary {

/// Replays the repo's real-dataset stand-ins (src/data: the EMR access-log
/// world and the credit-application world) through the serving stack as
/// multi-cycle alert streams. Each cycle simulates a window of activity,
/// classifies it with the dataset's rule engine, and refits the per-type
/// alert-count distributions from the resulting log — the exact
/// "F_t is obtained from historical alert logs" pipeline of the paper, now
/// producing the ingest payload of every audit cycle instead of a one-shot
/// game instance.
enum class TraceKind { kEmr, kCredit };

/// Parses "emr" / "credit" (the adversary_replay / workload flag values).
util::StatusOr<TraceKind> TraceKindFromName(const std::string& name);

struct TraceSpec {
  TraceKind kind = TraceKind::kEmr;
  /// World-generation seed (population, rules); also the root of the
  /// per-cycle simulation seeds, so a spec fixes the whole replay.
  uint64_t seed = 2017;
  /// Log periods (days) simulated and refit per audit cycle.
  int days_per_cycle = 30;
  /// kEmr: mean accesses per employee per day.
  double accesses_per_employee_per_day = 3.0;
  /// kCredit: credit applications arriving per day.
  int applications_per_day = 40;
};

/// A scenario::CycleSource backed by one of the dataset worlds. Cycles are
/// deterministic in the spec: two adapters with equal specs produce
/// byte-identical distribution sequences (trace_adapter_test enforces
/// this), so trace replays are valid regression anchors.
class TraceAdapter : public scenario::CycleSource {
 public:
  static util::StatusOr<std::unique_ptr<TraceAdapter>> Create(
      const TraceSpec& spec);

  ~TraceAdapter() override;

  /// The game instance to serve the replay against (world utilities plus
  /// the dataset's published per-type distributions as the baseline).
  const core::GameInstance& instance() const { return instance_; }

  /// Simulates the next cycle's activity window and refits F_t from its
  /// alert log. Types with no observed alerts in the window keep their
  /// baseline distribution (the operator's prior) instead of collapsing to
  /// a degenerate zero-count fit.
  util::StatusOr<std::vector<prob::CountDistribution>> NextCycle() override;

  int cycle() const { return cycle_; }

 private:
  struct Worlds;  // holds whichever dataset world the kind needs

  TraceAdapter(const TraceSpec& spec, core::GameInstance instance,
               std::unique_ptr<Worlds> worlds);

  TraceSpec spec_;
  core::GameInstance instance_;
  std::unique_ptr<Worlds> worlds_;
  int cycle_ = 0;
};

}  // namespace auditgame::adversary

#endif  // AUDIT_GAME_ADVERSARY_TRACE_H_
