#ifndef AUDIT_GAME_ADVERSARY_ATTACKER_H_
#define AUDIT_GAME_ADVERSARY_ATTACKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/game.h"
#include "prob/count_distribution.h"
#include "util/statusor.h"

namespace auditgame::adversary {

/// Strategic attacker models that close the Stackelberg loop: the defender
/// commits to an audit policy, the attacker observes the policy's mixed
/// per-type detection probabilities (Pal) and shifts its activity — here,
/// the alert mass it injects into each type's count distribution — toward
/// the least-audited types. Every model is a deterministic function of its
/// spec and observation history, so closed-loop replays are reproducible
/// bit for bit (attacker_test enforces this).
enum class AttackerKind {
  /// Exact best response: all attack mass on the single type with the
  /// highest attack utility under the observed Pal (ties break to the
  /// lowest type index); no attack at all when every type's utility is
  /// non-positive.
  kBestResponse,
  /// Quantal response (bounded rationality): attack mass proportional to
  /// softmax(lambda * U_t). lambda -> infinity recovers the best response,
  /// lambda = 0 attacks uniformly.
  kQuantalResponse,
  /// Fictitious play: best response against the *empirical average* of all
  /// observed Pal vectors, the classic smoothed learning dynamic — its
  /// target moves slowly, so it is the friendliest adversary for warm
  /// re-solves to track.
  kFictitiousPlay,
};

/// Parses "best-response" / "quantal" / "fictitious" (the adversary_replay
/// flag values).
util::StatusOr<AttackerKind> AttackerKindFromName(const std::string& name);

const char* AttackerKindName(AttackerKind kind);

/// Per-type attack economics the attacker reasons with: attacking "through"
/// type t (picking a victim whose alert lands in type t) pays
///   U_t = -Pal[t] * penalties[t] + (1 - Pal[t]) * benefits[t] - costs[t],
/// the paper's Eq. 3 specialized to a single-type victim profile.
struct AttackerEconomics {
  std::vector<double> benefits;
  std::vector<double> penalties;
  std::vector<double> attack_costs;

  int num_types() const { return static_cast<int>(benefits.size()); }
};

/// Derives per-type economics from a game instance: each type's parameters
/// are the type_probs-weighted means over every (adversary, victim) profile
/// that can raise that type, falling back to the global victim means for
/// types no victim reaches. This is the attacker-eye summary of the game's
/// utility structure.
util::StatusOr<AttackerEconomics> DeriveEconomics(
    const core::GameInstance& instance);

/// U_t for every type under the observed mixed detection probabilities.
/// Routed through core::AdversaryUtility with a unit type_probs vector, so
/// the numbers agree exactly with the solver-side policy evaluation.
std::vector<double> PerTypeAttackUtilities(const AttackerEconomics& economics,
                                           const std::vector<double>& pal);

/// U of the single best attack under `pal`, clamped at 0 (the attacker can
/// always refrain): max(0, max_t U_t). The exploitability measure.
double BestAttackUtility(const AttackerEconomics& economics,
                         const std::vector<double>& pal);

struct AttackerSpec {
  AttackerKind kind = AttackerKind::kBestResponse;
  /// Exponential-tilt scale applied to a type receiving full attack mass
  /// (see scenario::ExponentialTilt); per-type tilt is attack_rate * w_t.
  double attack_rate = 0.6;
  /// Quantal-response rationality.
  double lambda = 4.0;
  /// Reserved for stochastic variants; today's models are deterministic.
  uint64_t seed = 1;
};

/// One attacker driving one tenant's alert stream. NextCycle() maps the
/// defender's last served policy (its mixed per-type Pal; empty on the
/// first cycle, before anything was observed) to the per-type alert-count
/// distributions the defender will ingest next cycle. Implementations are
/// single-threaded and deterministic.
class Attacker {
 public:
  virtual ~Attacker() = default;

  virtual std::string_view Name() const = 0;

  virtual util::StatusOr<std::vector<prob::CountDistribution>> NextCycle(
      const std::vector<double>& observed_detection) = 0;

  /// The attack-mass allocation (w_t, in [0, 1]) behind the most recent
  /// NextCycle(); all zeros before the first call or when not attacking.
  virtual const std::vector<double>& last_allocation() const = 0;
};

/// Builds the requested model over a baseline alert stream (the benign
/// distributions the attack mass is injected on top of).
util::StatusOr<std::unique_ptr<Attacker>> MakeAttacker(
    const AttackerSpec& spec, std::vector<prob::CountDistribution> baseline,
    AttackerEconomics economics);

}  // namespace auditgame::adversary

#endif  // AUDIT_GAME_ADVERSARY_ATTACKER_H_
