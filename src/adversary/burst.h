#ifndef AUDIT_GAME_ADVERSARY_BURST_H_
#define AUDIT_GAME_ADVERSARY_BURST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "prob/count_distribution.h"
#include "util/statusor.h"

namespace auditgame::adversary {

/// Cross-tenant correlated burst events: many tenants' alert streams surge
/// in the same cycles, the load shape that stresses shard fairness and the
/// server's `overloaded` backpressure (each shard serializes its tenants,
/// so a correlated surge of re-solves queues where independent drift would
/// not).
enum class BurstKind {
  /// Flash crowd: every type's alert volume surges for the affected
  /// tenants — a benign load event (product launch, incident) that still
  /// drifts every distribution past the warm-start gate at once.
  kFlashCrowd,
  /// Coordinated fraud: one alert type's volume surges across the affected
  /// tenants — the multi-tenant signature of a campaign targeting the same
  /// weakness everywhere.
  kCoordinatedFraud,
};

/// Parses "flash" / "fraud" (the adversary_replay flag values).
util::StatusOr<BurstKind> BurstKindFromName(const std::string& name);

struct BurstSpec {
  BurstKind kind = BurstKind::kCoordinatedFraud;
  /// A burst starts at every multiple of `period` (cycle numbers are
  /// 1-based); 0 disables bursts entirely.
  int period = 10;
  /// Cycles a burst lasts once started.
  int duration = 2;
  /// Exponential-tilt strength applied to an affected type (see
  /// scenario::ExponentialTilt).
  double amplitude = 1.0;
  /// Fraction of tenants swept into each burst (rounded up, so a positive
  /// fraction always affects at least one tenant).
  double tenant_fraction = 0.5;
  /// kCoordinatedFraud: the surging type.
  int target_type = 0;
  uint64_t seed = 7;
};

/// What one cycle looks like burst-wise.
struct BurstEvent {
  bool active = false;
  /// Affected tenant indices, sorted ascending.
  std::vector<int> tenants;
  /// The surging type (-1 = all types, the flash-crowd case).
  int target_type = -1;
};

/// Deterministic burst schedule over a fixed tenant population: the same
/// spec always produces the same events (the affected-tenant subset is a
/// seeded shuffle keyed by the burst's index, so successive bursts hit
/// different but reproducible subsets).
class BurstGenerator {
 public:
  BurstGenerator(const BurstSpec& spec, int num_tenants, int num_types);

  const BurstSpec& spec() const { return spec_; }

  /// The burst state of the given 1-based cycle.
  BurstEvent EventAt(int cycle) const;

  /// True iff `tenant` surges in `cycle`.
  bool Affects(int cycle, int tenant) const;

  /// Applies the cycle's burst to one tenant's distributions: a no-op copy
  /// when the tenant is unaffected, otherwise the per-kind exponential
  /// tilt.
  util::StatusOr<std::vector<prob::CountDistribution>> Apply(
      int cycle, int tenant,
      const std::vector<prob::CountDistribution>& distributions) const;

 private:
  BurstSpec spec_;
  int num_tenants_;
  int num_types_;
};

}  // namespace auditgame::adversary

#endif  // AUDIT_GAME_ADVERSARY_BURST_H_
