#include "adversary/trace.h"

#include <utility>

#include "audit/log.h"
#include "data/credit.h"
#include "data/emr.h"
#include "util/random.h"

namespace auditgame::adversary {

namespace {
/// Per-cycle seed derivation: SplitMix-style stride keeps cycles
/// independent while the whole replay stays a pure function of the spec
/// seed.
uint64_t CycleSeed(uint64_t root, int cycle) {
  return root + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(cycle);
}
}  // namespace

util::StatusOr<TraceKind> TraceKindFromName(const std::string& name) {
  if (name == "emr") return TraceKind::kEmr;
  if (name == "credit") return TraceKind::kCredit;
  return util::NotFoundError("unknown trace '" + name +
                             "' (have: emr, credit)");
}

struct TraceAdapter::Worlds {
  // Exactly one is populated, per the spec's kind.
  std::unique_ptr<data::EmrWorld> emr;
  std::unique_ptr<data::CreditWorld> credit;
};

TraceAdapter::TraceAdapter(const TraceSpec& spec, core::GameInstance instance,
                           std::unique_ptr<Worlds> worlds)
    : spec_(spec), instance_(std::move(instance)), worlds_(std::move(worlds)) {}

TraceAdapter::~TraceAdapter() = default;

util::StatusOr<std::unique_ptr<TraceAdapter>> TraceAdapter::Create(
    const TraceSpec& spec) {
  if (spec.days_per_cycle < 2) {
    return util::InvalidArgumentError(
        "days_per_cycle must be >= 2 (a distribution needs periods)");
  }
  auto worlds = std::make_unique<Worlds>();
  core::GameInstance instance;
  switch (spec.kind) {
    case TraceKind::kEmr: {
      data::EmrConfig config;
      config.seed = spec.seed;
      ASSIGN_OR_RETURN(data::EmrWorld world, data::GenerateEmrWorld(config));
      ASSIGN_OR_RETURN(instance, data::MakeEmrGame(config));
      worlds->emr = std::make_unique<data::EmrWorld>(std::move(world));
      break;
    }
    case TraceKind::kCredit: {
      data::CreditConfig config;
      config.seed = spec.seed;
      ASSIGN_OR_RETURN(data::CreditWorld world,
                       data::GenerateCreditWorld(config));
      ASSIGN_OR_RETURN(instance, data::MakeCreditGame(config));
      worlds->credit = std::make_unique<data::CreditWorld>(std::move(world));
      break;
    }
  }
  return std::unique_ptr<TraceAdapter>(
      new TraceAdapter(spec, std::move(instance), std::move(worlds)));
}

util::StatusOr<std::vector<prob::CountDistribution>>
TraceAdapter::NextCycle() {
  ++cycle_;
  const uint64_t seed = CycleSeed(spec_.seed, cycle_);

  audit::AlertLog log(instance_.num_types());
  if (worlds_->emr != nullptr) {
    ASSIGN_OR_RETURN(
        log, data::SimulateAccessLog(*worlds_->emr, spec_.days_per_cycle,
                                     spec_.accesses_per_employee_per_day,
                                     seed));
  } else {
    // Credit: `applications_per_day` applications arrive each day, each a
    // uniformly drawn (applicant, purpose) pair classified by the world's
    // rule matrix — the application-stream analogue of the EMR access
    // simulation.
    const data::CreditWorld& world = *worlds_->credit;
    const int num_applicants = static_cast<int>(world.applicants.size());
    util::Rng rng(seed);
    for (int day = 0; day < spec_.days_per_cycle; ++day) {
      log.StartPeriod();
      for (int i = 0; i < spec_.applications_per_day; ++i) {
        const int applicant =
            static_cast<int>(rng.UniformInt(static_cast<uint64_t>(
                num_applicants)));
        const int purpose = static_cast<int>(
            rng.UniformInt(static_cast<uint64_t>(data::kCreditNumPurposes)));
        const int type =
            world.pair_types[static_cast<size_t>(applicant)]
                            [static_cast<size_t>(purpose)];
        if (type >= 0) {
          RETURN_IF_ERROR(log.Record(type));
        }
      }
    }
  }

  std::vector<prob::CountDistribution> refit;
  refit.reserve(static_cast<size_t>(instance_.num_types()));
  for (int t = 0; t < instance_.num_types(); ++t) {
    ASSIGN_OR_RETURN(const std::vector<int> counts, log.PeriodCounts(t));
    bool any = false;
    for (int c : counts) any = any || c > 0;
    if (!any) {
      // No alerts of this type in the window: keep the prior rather than
      // refit a degenerate all-zero distribution that would whipsaw the
      // drift gate.
      refit.push_back(
          instance_.alert_distributions[static_cast<size_t>(t)]);
      continue;
    }
    ASSIGN_OR_RETURN(prob::CountDistribution dist, log.LearnDistribution(t));
    refit.push_back(std::move(dist));
  }
  return refit;
}

}  // namespace auditgame::adversary
