#ifndef AUDIT_GAME_ADVERSARY_LOOP_H_
#define AUDIT_GAME_ADVERSARY_LOOP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/attacker.h"
#include "core/game.h"
#include "net/client.h"
#include "service/audit_service.h"
#include "solver/engine.h"
#include "util/json.h"
#include "util/statusor.h"

namespace auditgame::adversary {

/// The closed Stackelberg loop: each audit cycle the attacker shifts the
/// alert stream toward the least-audited types, the defender ingests it and
/// serves a (cached / warm / cold) policy, the attacker observes that
/// policy's mixed detection probabilities and adapts again. The loop
/// measures the paper-relevant robustness numbers — per-cycle defender
/// regret against an exact re-solve, the attacker's exploitability gap, and
/// how many cycles warm re-solves lag behind the adversary.
///
/// Because the adversary utility (Eq. 3) is linear in the per-type
/// detection probabilities, the defender's true loss under any policy is a
/// function of its mixed Pal vector alone (see DefenderLossAtDetection).
/// That is what makes the remote loop work: the server reports one Pal
/// vector per policy (the `observe_policy` protocol extension) and the
/// loop evaluates losses locally, without shipping orderings.

/// The defender-side solve configuration the loop shares between the live
/// defender and its exact oracle, so "regret" compares like with like.
struct DefenderConfig {
  std::string solver = "ishm-cggs";
  solver::SolverOptions solver_options;
  core::DetectionModel::Options detection_options;
  double budget = 10.0;
  double warm_start_max_drift = 0.25;
  int warm_subset_cap = 1;
};

/// What the defender revealed after one cycle.
struct DefenderObservation {
  int64_t cycle = 0;
  std::string source;  // "cache" | "warm" | "cold"
  double drift = 0.0;
  double objective = 0.0;
  /// Mixed per-type detection probabilities of the served policy under the
  /// cycle's (current) distributions.
  std::vector<double> detection;
  double seconds = 0.0;
};

/// The loop's seam over "where does the defender run": in this process or
/// behind a live audit_server.
class DefenderClient {
 public:
  virtual ~DefenderClient() = default;

  virtual util::Status Ingest(
      const std::vector<prob::CountDistribution>& distributions) = 0;

  virtual util::StatusOr<DefenderObservation> SolveCycle() = 0;
};

/// Defender embedded in-process: an AuditService serving one budget.
class InProcessDefender : public DefenderClient {
 public:
  InProcessDefender(core::GameInstance instance, const DefenderConfig& config);

  util::Status Ingest(
      const std::vector<prob::CountDistribution>& distributions) override;
  util::StatusOr<DefenderObservation> SolveCycle() override;

  const service::AuditService& service() const { return service_; }

 private:
  service::AuditService service_;
};

/// Defender behind a live audit_server, driven over one FrameClient
/// (borrowed; one RemoteDefender per connection per thread). `overloaded`
/// responses are the server's backpressure contract — nothing was applied —
/// so the client retries them with a small backoff instead of failing.
class RemoteDefender : public DefenderClient {
 public:
  RemoteDefender(net::FrameClient* client, std::string tenant,
                 int max_retries = 200, int retry_backoff_ms = 5);

  util::Status Ingest(
      const std::vector<prob::CountDistribution>& distributions) override;
  util::StatusOr<DefenderObservation> SolveCycle() override;

  int64_t overloaded_retries() const { return overloaded_retries_; }

 private:
  /// One verb round trip, retrying overloaded responses.
  util::StatusOr<util::JsonValue> CallWithRetry(const std::string& payload);

  net::FrameClient* client_;
  std::string tenant_;
  int max_retries_;
  int retry_backoff_ms_;
  int64_t next_id_ = 1;
  int64_t overloaded_retries_ = 0;
};

/// The defender's expected loss (the paper's Eq. 4 objective) under mixed
/// per-type detection probabilities `pal`: each compiled adversary group
/// best-responds over its victims (opt-out groups clamp at 0), weighted by
/// group weight. Equal to core::EvaluatePolicy's auditor_loss by linearity
/// of the adversary utility in Pal.
double DefenderLossAtDetection(const core::CompiledGame& game,
                               const std::vector<double>& pal);

struct CycleMetrics {
  int cycle = 0;
  std::string source;
  double drift = 0.0;
  /// Defender loss of the served policy on this cycle's distributions.
  double served_loss = 0.0;
  /// Loss of an exact cold re-solve on the same distributions (0 when the
  /// oracle is disabled).
  double oracle_loss = 0.0;
  /// max(0, served_loss - oracle_loss).
  double regret_gap = 0.0;
  /// max(0, best-attack utility vs served - best-attack utility vs oracle).
  double exploitability_gap = 0.0;
  /// The attacker's best single-type attack utility against the served
  /// policy (its incentive to keep attacking).
  double best_attack_utility = 0.0;
  /// served_loss - oracle_loss <= max(floor, |oracle_loss|): within 2x of
  /// the exact-solver floor for positive losses.
  bool within_2x = true;
  /// regret_gap exceeded the lag tolerance this cycle.
  bool lagging = false;
  double defender_seconds = 0.0;
};

struct LoopReport {
  std::vector<CycleMetrics> cycles;
  int64_t cache_hits = 0;
  int64_t warm_solves = 0;
  int64_t cold_solves = 0;
  double regret_gap_mean = 0.0;
  double regret_gap_max = 0.0;
  double exploitability_gap_mean = 0.0;
  double exploitability_gap_max = 0.0;
  double served_loss_mean = 0.0;
  double oracle_loss_mean = 0.0;
  /// Longest run of consecutive lagging cycles.
  int tracking_lag_max_cycles = 0;
  /// Every cycle stayed within 2x of the exact-solver floor.
  bool tracking_within_2x = true;
  double defender_seconds_total = 0.0;
  double oracle_seconds_total = 0.0;
};

struct LoopSpec {
  int cycles = 20;
  /// Cold-re-solve oracle each cycle (the regret/exploitability reference).
  /// Costs one exact solve per cycle; disable for load-only drills.
  bool compute_oracle = true;
  /// Absolute slack under which losses count as equal.
  double tolerance_floor = 1e-9;
  /// A cycle lags when regret_gap > max(tolerance_floor,
  /// lag_tolerance * |oracle_loss|).
  double lag_tolerance = 0.05;
};

/// Runs the closed loop. The loop owns a copy of the instance whose
/// alert_distributions it swaps to the attacker's stream each cycle — the
/// ground truth its oracle solves and its loss evaluations use. With a
/// RemoteDefender the server holds its own (JSON-roundtripped) copy of the
/// same distributions; pmf renormalization perturbs them by ULPs, so remote
/// and in-process metrics agree to ~1e-6, not bit-for-bit.
class AdversaryLoop {
 public:
  static util::StatusOr<AdversaryLoop> Create(core::GameInstance instance,
                                              const DefenderConfig& config,
                                              DefenderClient* defender,
                                              Attacker* attacker);

  util::StatusOr<LoopReport> Run(const LoopSpec& spec);

 private:
  AdversaryLoop(core::GameInstance instance, core::CompiledGame compiled,
                AttackerEconomics economics, const DefenderConfig& config,
                DefenderClient* defender, Attacker* attacker);

  core::GameInstance instance_;
  core::CompiledGame compiled_;
  AttackerEconomics economics_;
  DefenderConfig config_;
  DefenderClient* defender_;
  Attacker* attacker_;
};

}  // namespace auditgame::adversary

#endif  // AUDIT_GAME_ADVERSARY_LOOP_H_
