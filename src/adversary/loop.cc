#include "adversary/loop.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "core/detection.h"
#include "core/policy.h"
#include "server/protocol.h"
#include "util/json.h"
#include "util/timer.h"

namespace auditgame::adversary {

InProcessDefender::InProcessDefender(core::GameInstance instance,
                                     const DefenderConfig& config)
    : service_(std::move(instance), [&config] {
        service::AuditServiceOptions options;
        options.solver = config.solver;
        options.solver_options = config.solver_options;
        options.detection_options = config.detection_options;
        options.budgets = {config.budget};
        options.warm_start_max_drift = config.warm_start_max_drift;
        options.warm_subset_cap = config.warm_subset_cap;
        // Inline engine: the loop is single-threaded, a pool would idle.
        options.num_threads = -1;
        return options;
      }()) {}

util::Status InProcessDefender::Ingest(
    const std::vector<prob::CountDistribution>& distributions) {
  return service_.UpdateAlertDistributions(distributions);
}

util::StatusOr<DefenderObservation> InProcessDefender::SolveCycle() {
  ASSIGN_OR_RETURN(service::AuditService::CycleReport report,
                   service_.RunCycle());
  if (report.policies.empty()) {
    return util::InternalError("cycle report has no policies");
  }
  const service::AuditService::CyclePolicy& policy = report.policies[0];
  DefenderObservation obs;
  obs.cycle = report.cycle;
  obs.source = server::SourceName(policy.source);
  obs.drift = policy.drift;
  obs.objective = policy.result.objective;
  ASSIGN_OR_RETURN(obs.detection, service_.MixedDetectionForPolicy(policy));
  obs.seconds = report.seconds;
  return obs;
}

RemoteDefender::RemoteDefender(net::FrameClient* client, std::string tenant,
                               int max_retries, int retry_backoff_ms)
    : client_(client),
      tenant_(std::move(tenant)),
      max_retries_(max_retries),
      retry_backoff_ms_(retry_backoff_ms) {}

util::StatusOr<util::JsonValue> RemoteDefender::CallWithRetry(
    const std::string& payload) {
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    ASSIGN_OR_RETURN(const std::string raw, client_->Call(payload));
    ASSIGN_OR_RETURN(util::JsonValue doc, util::JsonValue::Parse(raw));
    ASSIGN_OR_RETURN(const std::string status, doc.GetString("status"));
    if (status == "ok") return doc;
    if (status == "overloaded" || status == "backend_down") {
      // Backpressure: nothing was applied, the retry is safe. Idempotence
      // matters here — an ingest retried after `overloaded` re-sends the
      // same distributions, and solve_cycle only advances on "ok".
      ++overloaded_retries_;
      if (retry_backoff_ms_ > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(retry_backoff_ms_));
      }
      continue;
    }
    std::string message = "(no message)";
    if (const util::JsonValue* msg = doc.Find("message");
        msg != nullptr && msg->is_string()) {
      message = msg->as_string();
    }
    return util::InternalError("audit server rejected request: " + message);
  }
  return util::ResourceExhaustedError(
      "audit server still overloaded after " + std::to_string(max_retries_) +
      " retries");
}

util::Status RemoteDefender::Ingest(
    const std::vector<prob::CountDistribution>& distributions) {
  const std::string payload =
      server::MakeIngestRequest(next_id_++, tenant_, distributions);
  return CallWithRetry(payload).status();
}

util::StatusOr<DefenderObservation> RemoteDefender::SolveCycle() {
  const std::string payload = server::MakeSolveCycleRequest(
      next_id_++, tenant_, /*observe_policy=*/true);
  util::Timer timer;
  ASSIGN_OR_RETURN(util::JsonValue doc, CallWithRetry(payload));
  const double seconds = timer.ElapsedSeconds();
  ASSIGN_OR_RETURN(server::SolveCycleReply reply,
                   server::ParseSolveCycleReply(doc));
  if (reply.policies.empty()) {
    return util::InternalError("solve_cycle reply has no policies");
  }
  server::SolveCyclePolicy& policy = reply.policies[0];
  DefenderObservation obs;
  obs.cycle = reply.cycle;
  obs.source = std::move(policy.source);
  obs.drift = policy.drift;
  obs.objective = policy.objective;
  obs.detection = std::move(policy.detection_probs);
  obs.seconds = seconds;
  return obs;
}

double DefenderLossAtDetection(const core::CompiledGame& game,
                               const std::vector<double>& pal) {
  double loss = 0.0;
  for (const core::AdversaryGroup& group : game.groups) {
    double best = group.can_opt_out
                      ? 0.0
                      : -std::numeric_limits<double>::infinity();
    for (const core::VictimProfile& victim : group.victims) {
      best = std::max(best, core::AdversaryUtility(victim, pal));
    }
    loss += group.weight * best;
  }
  return loss;
}

AdversaryLoop::AdversaryLoop(core::GameInstance instance,
                             core::CompiledGame compiled,
                             AttackerEconomics economics,
                             const DefenderConfig& config,
                             DefenderClient* defender, Attacker* attacker)
    : instance_(std::move(instance)),
      compiled_(std::move(compiled)),
      economics_(std::move(economics)),
      config_(config),
      defender_(defender),
      attacker_(attacker) {}

util::StatusOr<AdversaryLoop> AdversaryLoop::Create(
    core::GameInstance instance, const DefenderConfig& config,
    DefenderClient* defender, Attacker* attacker) {
  if (defender == nullptr || attacker == nullptr) {
    return util::InvalidArgumentError(
        "adversary loop needs a defender and an attacker");
  }
  RETURN_IF_ERROR(instance.Validate());
  // The compiled game only depends on the adversaries (not the alert
  // distributions), so one compile serves every cycle's loss evaluations.
  ASSIGN_OR_RETURN(core::CompiledGame compiled, core::Compile(instance));
  ASSIGN_OR_RETURN(AttackerEconomics economics, DeriveEconomics(instance));
  return AdversaryLoop(std::move(instance), std::move(compiled),
                       std::move(economics), config, defender, attacker);
}

util::StatusOr<LoopReport> AdversaryLoop::Run(const LoopSpec& spec) {
  if (spec.cycles <= 0) {
    return util::InvalidArgumentError("loop needs at least one cycle");
  }
  LoopReport report;
  report.cycles.reserve(static_cast<size_t>(spec.cycles));
  std::vector<double> observed;  // empty: nothing observed before cycle 1
  double regret_sum = 0.0;
  double exploit_sum = 0.0;
  double served_sum = 0.0;
  double oracle_sum = 0.0;
  int lag_run = 0;

  for (int cycle = 1; cycle <= spec.cycles; ++cycle) {
    ASSIGN_OR_RETURN(std::vector<prob::CountDistribution> stream,
                     attacker_->NextCycle(observed));
    RETURN_IF_ERROR(defender_->Ingest(stream));
    ASSIGN_OR_RETURN(DefenderObservation obs, defender_->SolveCycle());
    if (obs.detection.size() != static_cast<size_t>(instance_.num_types())) {
      return util::FailedPreconditionError(
          "defender reported no per-type detection probabilities — a remote "
          "server must honor observe_policy for the loop to close");
    }
    // Ground truth for this cycle's metrics: the stream the attacker just
    // injected (with a RemoteDefender the server holds a JSON-roundtripped
    // copy of the same thing; see the class comment on AdversaryLoop).
    instance_.alert_distributions = std::move(stream);

    CycleMetrics m;
    m.cycle = cycle;
    m.source = obs.source;
    m.drift = obs.drift;
    m.defender_seconds = obs.seconds;
    m.served_loss = DefenderLossAtDetection(compiled_, obs.detection);
    m.best_attack_utility = BestAttackUtility(economics_, obs.detection);

    if (spec.compute_oracle) {
      util::Timer oracle_timer;
      solver::EngineRequest request;
      request.solver = config_.solver;
      request.instance = &instance_;
      request.budget = config_.budget;
      request.detection_options = config_.detection_options;
      request.options = config_.solver_options;
      ASSIGN_OR_RETURN(const solver::SolveResult oracle,
                       solver::SolverEngine::SolveOne(request));
      ASSIGN_OR_RETURN(core::DetectionModel model,
                       core::DetectionModel::Create(instance_, config_.budget,
                                                    config_.detection_options));
      ASSIGN_OR_RETURN(const std::vector<double> oracle_pal,
                       core::MixedDetectionProbabilities(model, oracle.policy));
      report.oracle_seconds_total += oracle_timer.ElapsedSeconds();
      m.oracle_loss = DefenderLossAtDetection(compiled_, oracle_pal);
      m.regret_gap = std::max(0.0, m.served_loss - m.oracle_loss);
      m.exploitability_gap =
          std::max(0.0, m.best_attack_utility -
                            BestAttackUtility(economics_, oracle_pal));
      // "Within 2x of the exact-solver floor": for positive losses,
      // served <= 2 * oracle; phrased additively so zero and negative
      // oracle losses keep a meaningful absolute band.
      m.within_2x = (m.served_loss - m.oracle_loss) <=
                    std::max(spec.tolerance_floor, std::abs(m.oracle_loss));
      m.lagging = m.regret_gap > std::max(spec.tolerance_floor,
                                          spec.lag_tolerance *
                                              std::abs(m.oracle_loss));
    }

    if (m.source == "cache") {
      ++report.cache_hits;
    } else if (m.source == "warm") {
      ++report.warm_solves;
    } else {
      ++report.cold_solves;
    }
    regret_sum += m.regret_gap;
    exploit_sum += m.exploitability_gap;
    served_sum += m.served_loss;
    oracle_sum += m.oracle_loss;
    report.regret_gap_max = std::max(report.regret_gap_max, m.regret_gap);
    report.exploitability_gap_max =
        std::max(report.exploitability_gap_max, m.exploitability_gap);
    lag_run = m.lagging ? lag_run + 1 : 0;
    report.tracking_lag_max_cycles =
        std::max(report.tracking_lag_max_cycles, lag_run);
    report.tracking_within_2x = report.tracking_within_2x && m.within_2x;
    report.defender_seconds_total += obs.seconds;

    observed = std::move(obs.detection);
    report.cycles.push_back(std::move(m));
  }

  const double n = static_cast<double>(report.cycles.size());
  report.regret_gap_mean = regret_sum / n;
  report.exploitability_gap_mean = exploit_sum / n;
  report.served_loss_mean = served_sum / n;
  report.oracle_loss_mean = oracle_sum / n;
  return report;
}

}  // namespace auditgame::adversary
