#include "audit/executor.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace auditgame::audit {

util::Status AuditConfiguration::Validate() const {
  const int t = num_types();
  if (static_cast<int>(thresholds.size()) != t) {
    return util::InvalidArgumentError("thresholds size != num types");
  }
  if (static_cast<int>(ordering.size()) != t) {
    return util::InvalidArgumentError("ordering size != num types");
  }
  std::vector<bool> seen(t, false);
  for (int type : ordering) {
    if (type < 0 || type >= t) {
      return util::InvalidArgumentError("ordering entry out of range");
    }
    if (seen[type]) {
      return util::InvalidArgumentError("ordering repeats type " +
                                        std::to_string(type));
    }
    seen[type] = true;
  }
  for (double c : audit_costs) {
    if (c <= 0) return util::InvalidArgumentError("audit cost must be > 0");
  }
  for (double b : thresholds) {
    if (b < 0) return util::InvalidArgumentError("threshold must be >= 0");
  }
  if (budget < 0) return util::InvalidArgumentError("budget must be >= 0");
  return util::OkStatus();
}

util::StatusOr<std::vector<int>> AuditedCounts(
    const AuditConfiguration& config, const std::vector<int>& alert_counts) {
  RETURN_IF_ERROR(config.Validate());
  if (alert_counts.size() != static_cast<size_t>(config.num_types())) {
    return util::InvalidArgumentError("alert_counts size != num types");
  }
  std::vector<int> audited(config.num_types(), 0);
  double consumed = 0.0;  // sum of min(b_{o_i}, Z_{o_i} C_{o_i}) so far
  for (int type : config.ordering) {
    const double cost = config.audit_costs[type];
    const double threshold = config.thresholds[type];
    const int count = alert_counts[type];
    const double remaining_budget =
        std::max(std::floor((config.budget - consumed) / cost), 0.0);
    const double per_type_cap = std::floor(threshold / cost);
    const double n =
        std::min({remaining_budget, per_type_cap, static_cast<double>(count)});
    audited[type] = static_cast<int>(n);
    consumed += std::min(threshold, count * cost);
  }
  return audited;
}

util::StatusOr<DayOutcome> SimulateDay(const AuditConfiguration& config,
                                       const std::vector<int>& benign_counts,
                                       int attack_type, util::Rng& rng) {
  if (benign_counts.size() != static_cast<size_t>(config.num_types())) {
    return util::InvalidArgumentError("benign_counts size != num types");
  }
  DayOutcome outcome;
  outcome.alert_counts = benign_counts;
  if (attack_type >= 0) {
    if (attack_type >= config.num_types()) {
      return util::InvalidArgumentError("attack_type out of range");
    }
    outcome.attack_alert_raised = true;
    outcome.alert_counts[attack_type] += 1;
  }
  ASSIGN_OR_RETURN(outcome.audited, AuditedCounts(config, outcome.alert_counts));
  if (outcome.attack_alert_raised) {
    // The audited subset of each bin is uniformly random, so the attack
    // alert is inspected with probability audited / bin_size.
    const int bin = outcome.alert_counts[attack_type];
    const int n = outcome.audited[attack_type];
    outcome.attack_detected =
        bin > 0 && rng.Uniform() < static_cast<double>(n) / bin;
  }
  return outcome;
}

}  // namespace auditgame::audit
