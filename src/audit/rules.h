#ifndef AUDIT_GAME_AUDIT_RULES_H_
#define AUDIT_GAME_AUDIT_RULES_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "audit/event.h"
#include "util/random.h"
#include "util/status.h"

namespace auditgame::audit {

/// A boolean predicate over access events.
using Predicate = std::function<bool(const AccessEvent&)>;

/// ---- Predicate combinators -------------------------------------------

/// True when the event's string attribute `key` equals `value`.
Predicate StringAttrEquals(std::string key, std::string value);

/// True when two string attributes of the event are equal and non-empty
/// (e.g. employee_last_name == patient_last_name).
Predicate StringAttrsMatch(std::string key_a, std::string key_b);

/// True when the numeric attribute satisfies the comparison.
Predicate NumericAttrLess(std::string key, double value);
Predicate NumericAttrGreater(std::string key, double value);

/// True when the Euclidean distance between points (x_a, y_a) and
/// (x_b, y_b), read from numeric attributes, is at most `radius`.
/// Implements "neighbor within a distance threshold" style rules.
Predicate EuclideanWithin(std::string x_a, std::string y_a, std::string x_b,
                          std::string y_b, double radius);

Predicate And(Predicate a, Predicate b);
Predicate Or(Predicate a, Predicate b);
Predicate Not(Predicate a);

/// Always true — catch-all rules.
Predicate Always();

/// ---- Rule engine --------------------------------------------------------

/// A single alert rule: when `predicate` matches, an alert of `alert_type`
/// is raised with probability `trigger_probability` (the paper's stochastic
/// event -> type mapping P^t_ev).
struct AlertRule {
  std::string name;
  int alert_type = 0;
  double trigger_probability = 1.0;
  Predicate predicate;
};

/// Ordered rule list implementing the paper's TDMT assumption that each
/// event maps to at most one alert type: the FIRST matching rule wins, so
/// composite types ("same last name AND same address") must be registered
/// before their components.
class RuleEngine {
 public:
  /// Appends a rule. Returns an error for invalid probability or negative
  /// type ids.
  util::Status AddRule(AlertRule rule);

  /// Returns (alert_type, trigger_probability) of the first matching rule,
  /// or nullopt when no rule matches (benign event).
  std::optional<std::pair<int, double>> Match(const AccessEvent& event) const;

  /// Stochastic classification: applies Match and then flips the trigger
  /// coin. Returns the raised alert type or nullopt.
  std::optional<int> Trigger(const AccessEvent& event, util::Rng& rng) const;

  int num_rules() const { return static_cast<int>(rules_.size()); }
  const AlertRule& rule(int i) const { return rules_[i]; }

  /// Largest alert type id across rules (+1 gives the type-count needed to
  /// size count vectors); -1 when empty.
  int max_alert_type() const;

 private:
  std::vector<AlertRule> rules_;
};

}  // namespace auditgame::audit

#endif  // AUDIT_GAME_AUDIT_RULES_H_
