#include "audit/rules.h"

#include <cmath>

namespace auditgame::audit {

Predicate StringAttrEquals(std::string key, std::string value) {
  return [key = std::move(key), value = std::move(value)](const AccessEvent& e) {
    return e.GetString(key) == value;
  };
}

Predicate StringAttrsMatch(std::string key_a, std::string key_b) {
  return [key_a = std::move(key_a), key_b = std::move(key_b)](const AccessEvent& e) {
    const std::string& a = e.GetString(key_a);
    return !a.empty() && a == e.GetString(key_b);
  };
}

Predicate NumericAttrLess(std::string key, double value) {
  return [key = std::move(key), value](const AccessEvent& e) {
    return e.HasNumeric(key) && e.GetNumeric(key) < value;
  };
}

Predicate NumericAttrGreater(std::string key, double value) {
  return [key = std::move(key), value](const AccessEvent& e) {
    return e.HasNumeric(key) && e.GetNumeric(key) > value;
  };
}

Predicate EuclideanWithin(std::string x_a, std::string y_a, std::string x_b,
                          std::string y_b, double radius) {
  return [=](const AccessEvent& e) {
    if (!e.HasNumeric(x_a) || !e.HasNumeric(y_a) || !e.HasNumeric(x_b) ||
        !e.HasNumeric(y_b)) {
      return false;
    }
    const double dx = e.GetNumeric(x_a) - e.GetNumeric(x_b);
    const double dy = e.GetNumeric(y_a) - e.GetNumeric(y_b);
    return std::sqrt(dx * dx + dy * dy) <= radius;
  };
}

Predicate And(Predicate a, Predicate b) {
  return [a = std::move(a), b = std::move(b)](const AccessEvent& e) {
    return a(e) && b(e);
  };
}

Predicate Or(Predicate a, Predicate b) {
  return [a = std::move(a), b = std::move(b)](const AccessEvent& e) {
    return a(e) || b(e);
  };
}

Predicate Not(Predicate a) {
  return [a = std::move(a)](const AccessEvent& e) { return !a(e); };
}

Predicate Always() {
  return [](const AccessEvent&) { return true; };
}

util::Status RuleEngine::AddRule(AlertRule rule) {
  if (rule.alert_type < 0) {
    return util::InvalidArgumentError("alert_type must be >= 0");
  }
  if (rule.trigger_probability < 0.0 || rule.trigger_probability > 1.0) {
    return util::InvalidArgumentError("trigger_probability must be in [0,1]");
  }
  if (!rule.predicate) {
    return util::InvalidArgumentError("rule has no predicate");
  }
  rules_.push_back(std::move(rule));
  return util::OkStatus();
}

std::optional<std::pair<int, double>> RuleEngine::Match(
    const AccessEvent& event) const {
  for (const AlertRule& rule : rules_) {
    if (rule.predicate(event)) {
      return std::make_pair(rule.alert_type, rule.trigger_probability);
    }
  }
  return std::nullopt;
}

std::optional<int> RuleEngine::Trigger(const AccessEvent& event,
                                       util::Rng& rng) const {
  const auto match = Match(event);
  if (!match.has_value()) return std::nullopt;
  if (rng.Uniform() < match->second) return match->first;
  return std::nullopt;
}

int RuleEngine::max_alert_type() const {
  int max_type = -1;
  for (const AlertRule& rule : rules_) {
    max_type = std::max(max_type, rule.alert_type);
  }
  return max_type;
}

}  // namespace auditgame::audit
