#ifndef AUDIT_GAME_AUDIT_TRIAGE_H_
#define AUDIT_GAME_AUDIT_TRIAGE_H_

#include <string>
#include <vector>

#include "audit/executor.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::audit {

/// One alert awaiting investigation.
struct PendingAlert {
  int64_t alert_id = 0;
  int type = 0;
  std::string subject_id;
  std::string object_id;
  int64_t raised_at = 0;
};

/// The per-period alert bins a privacy office actually works from: alerts
/// accumulate per type; the triage planner (below) decides which concrete
/// alerts get inspected under a sampled pure strategy.
class AlertQueue {
 public:
  /// Creates bins for `num_types` alert types.
  explicit AlertQueue(int num_types);

  int num_types() const { return static_cast<int>(bins_.size()); }

  /// Enqueues an alert; assigns a sequential alert_id if the alert carries
  /// none (id 0). Fails on an out-of-range type.
  util::Status Add(PendingAlert alert);

  /// Bin size per type.
  std::vector<int> Counts() const;

  const std::vector<PendingAlert>& bin(int type) const { return bins_[type]; }

  /// Drops all alerts (end of period).
  void Clear();

  int64_t total_alerts() const { return next_id_ - 1; }

 private:
  std::vector<std::vector<PendingAlert>> bins_;
  int64_t next_id_ = 1;
};

/// A concrete work order for one audit period.
struct TriagePlan {
  /// The pure ordering used (drawn from the mixed policy by the caller or
  /// by PlanPeriodFromMixture).
  std::vector<int> ordering;
  /// Number of alerts audited per type (the executor's n_t).
  std::vector<int> audited_counts;
  /// The selected alerts, in inspection order.
  std::vector<PendingAlert> selected;
  /// Budget actually spent.
  double spent = 0.0;
};

/// Applies the recourse semantics of `config` to the realized queue and
/// picks, for each type, a uniformly random subset of its bin of size n_t.
/// Uniform selection is what makes the analytic detection probability
/// n_t / Z_t correct, so it is not a configuration knob.
util::StatusOr<TriagePlan> PlanAuditPeriod(const AuditConfiguration& config,
                                           const AlertQueue& queue,
                                           util::Rng& rng);

/// Draws a pure ordering from a mixed strategy (orderings + probabilities)
/// and plans the period with it. `thresholds`, `audit_costs` and `budget`
/// complete the configuration.
util::StatusOr<TriagePlan> PlanPeriodFromMixture(
    const std::vector<std::vector<int>>& orderings,
    const std::vector<double>& probabilities,
    const std::vector<double>& thresholds,
    const std::vector<double>& audit_costs, double budget,
    const AlertQueue& queue, util::Rng& rng);

}  // namespace auditgame::audit

#endif  // AUDIT_GAME_AUDIT_TRIAGE_H_
