#include "audit/triage.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace auditgame::audit {

AlertQueue::AlertQueue(int num_types)
    : bins_(static_cast<size_t>(std::max(num_types, 0))) {}

util::Status AlertQueue::Add(PendingAlert alert) {
  if (alert.type < 0 || alert.type >= num_types()) {
    return util::InvalidArgumentError("alert type " +
                                      std::to_string(alert.type) +
                                      " out of range");
  }
  if (alert.alert_id == 0) alert.alert_id = next_id_;
  next_id_ = std::max(next_id_, alert.alert_id) + 1;
  bins_[static_cast<size_t>(alert.type)].push_back(std::move(alert));
  return util::OkStatus();
}

std::vector<int> AlertQueue::Counts() const {
  std::vector<int> counts;
  counts.reserve(bins_.size());
  for (const auto& bin : bins_) counts.push_back(static_cast<int>(bin.size()));
  return counts;
}

void AlertQueue::Clear() {
  for (auto& bin : bins_) bin.clear();
}

util::StatusOr<TriagePlan> PlanAuditPeriod(const AuditConfiguration& config,
                                           const AlertQueue& queue,
                                           util::Rng& rng) {
  if (queue.num_types() != config.num_types()) {
    return util::InvalidArgumentError("queue/config type-count mismatch");
  }
  const std::vector<int> counts = queue.Counts();
  ASSIGN_OR_RETURN(std::vector<int> audited, AuditedCounts(config, counts));

  TriagePlan plan;
  plan.ordering = config.ordering;
  plan.audited_counts = audited;
  for (int type : config.ordering) {
    const int n = audited[static_cast<size_t>(type)];
    if (n <= 0) continue;
    // Uniform n-subset of the bin via a partial Fisher-Yates shuffle of
    // indices.
    const auto& bin = queue.bin(type);
    std::vector<int> indices(bin.size());
    std::iota(indices.begin(), indices.end(), 0);
    for (int k = 0; k < n; ++k) {
      const size_t j = static_cast<size_t>(k) + static_cast<size_t>(rng.UniformInt(
                           static_cast<uint64_t>(indices.size() - k)));
      std::swap(indices[static_cast<size_t>(k)], indices[j]);
      plan.selected.push_back(bin[static_cast<size_t>(indices[static_cast<size_t>(k)])]);
    }
    plan.spent += n * config.audit_costs[static_cast<size_t>(type)];
  }
  return plan;
}

util::StatusOr<TriagePlan> PlanPeriodFromMixture(
    const std::vector<std::vector<int>>& orderings,
    const std::vector<double>& probabilities,
    const std::vector<double>& thresholds,
    const std::vector<double>& audit_costs, double budget,
    const AlertQueue& queue, util::Rng& rng) {
  if (orderings.empty() || orderings.size() != probabilities.size()) {
    return util::InvalidArgumentError("mixture is empty or misaligned");
  }
  const size_t draw = rng.Categorical(probabilities);
  AuditConfiguration config;
  config.ordering = orderings[draw];
  config.thresholds = thresholds;
  config.audit_costs = audit_costs;
  config.budget = budget;
  return PlanAuditPeriod(config, queue, rng);
}

}  // namespace auditgame::audit
