#ifndef AUDIT_GAME_AUDIT_EVENT_H_
#define AUDIT_GAME_AUDIT_EVENT_H_

#include <cstdint>
#include <map>
#include <string>

namespace auditgame::audit {

/// One access event committed to the database: subject (e.g. an employee)
/// touches object (e.g. a patient record). Events carry free-form string and
/// numeric attributes that alert rules predicate on — e.g. the employee and
/// patient last names for the "same last name" EMR rule, or residential
/// coordinates for the "neighbor" rule.
struct AccessEvent {
  std::string subject_id;
  std::string object_id;
  int64_t timestamp = 0;
  std::map<std::string, std::string> string_attrs;
  std::map<std::string, double> numeric_attrs;

  /// Returns the string attribute or an empty string when absent.
  const std::string& GetString(const std::string& key) const {
    static const std::string* const kEmpty = new std::string();
    auto it = string_attrs.find(key);
    return it == string_attrs.end() ? *kEmpty : it->second;
  }

  /// Returns the numeric attribute or `fallback` when absent.
  double GetNumeric(const std::string& key, double fallback = 0.0) const {
    auto it = numeric_attrs.find(key);
    return it == numeric_attrs.end() ? fallback : it->second;
  }

  bool HasString(const std::string& key) const {
    return string_attrs.count(key) > 0;
  }
  bool HasNumeric(const std::string& key) const {
    return numeric_attrs.count(key) > 0;
  }
};

}  // namespace auditgame::audit

#endif  // AUDIT_GAME_AUDIT_EVENT_H_
