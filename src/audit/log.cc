#include "audit/log.h"

#include <cmath>
#include <string>

namespace auditgame::audit {

AlertLog::AlertLog(int num_types) : counts_(std::max(num_types, 0)) {}

void AlertLog::StartPeriod() {
  ++num_periods_;
  for (auto& per_type : counts_) per_type.push_back(0);
}

util::Status AlertLog::Record(int type, int count) {
  if (type < 0 || type >= num_types()) {
    return util::InvalidArgumentError("invalid alert type " +
                                      std::to_string(type));
  }
  if (num_periods_ == 0) {
    return util::FailedPreconditionError("no open period; call StartPeriod");
  }
  if (count < 0) return util::InvalidArgumentError("negative count");
  counts_[type].back() += count;
  return util::OkStatus();
}

util::StatusOr<std::vector<int>> AlertLog::PeriodCounts(int type) const {
  if (type < 0 || type >= num_types()) {
    return util::InvalidArgumentError("invalid alert type " +
                                      std::to_string(type));
  }
  return counts_[type];
}

util::StatusOr<prob::CountDistribution> AlertLog::LearnDistribution(
    int type) const {
  ASSIGN_OR_RETURN(std::vector<int> samples, PeriodCounts(type));
  if (samples.empty()) {
    return util::FailedPreconditionError("log has no periods");
  }
  return prob::CountDistribution::FromSamples(samples);
}

util::StatusOr<prob::CountDistribution> AlertLog::LearnGaussianFit(
    int type, double coverage) const {
  ASSIGN_OR_RETURN(std::vector<int> samples, PeriodCounts(type));
  if (samples.size() < 2) {
    return util::FailedPreconditionError("need at least 2 periods");
  }
  double mean = 0.0;
  for (int s : samples) mean += s;
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (int s : samples) var += (s - mean) * (s - mean);
  var /= static_cast<double>(samples.size() - 1);
  if (var <= 0) {
    return util::FailedPreconditionError("zero sample variance");
  }
  return prob::CountDistribution::DiscretizedGaussianWithCoverage(
      mean, std::sqrt(var), coverage);
}

}  // namespace auditgame::audit
