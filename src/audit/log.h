#ifndef AUDIT_GAME_AUDIT_LOG_H_
#define AUDIT_GAME_AUDIT_LOG_H_

#include <vector>

#include "prob/count_distribution.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::audit {

/// Aggregated alert log: per-period (e.g. per-workday) alert counts for each
/// type. This is the artifact privacy officers actually possess — the paper
/// assumes F_t is "obtained from historical alert logs", which is exactly
/// LearnDistribution below.
class AlertLog {
 public:
  /// Creates a log for `num_types` alert types.
  explicit AlertLog(int num_types);

  int num_types() const { return static_cast<int>(counts_.size()); }
  int num_periods() const { return num_periods_; }

  /// Opens a new period (day); subsequent Record calls accumulate into it.
  void StartPeriod();

  /// Records `count` additional alerts of `type` in the current period.
  /// Requires StartPeriod to have been called and a valid type.
  util::Status Record(int type, int count = 1);

  /// Per-period counts observed for `type`.
  util::StatusOr<std::vector<int>> PeriodCounts(int type) const;

  /// Learns the empirical per-period count distribution F_t for `type`.
  util::StatusOr<prob::CountDistribution> LearnDistribution(int type) const;

  /// Learns a discretized-Gaussian fit (moment matching) instead of the raw
  /// empirical distribution; mirrors the paper's Gaussian modeling of alert
  /// volumes. Requires at least 2 periods and positive sample variance.
  util::StatusOr<prob::CountDistribution> LearnGaussianFit(
      int type, double coverage = 0.995) const;

 private:
  std::vector<std::vector<int>> counts_;  // [type][period]
  int num_periods_ = 0;
};

}  // namespace auditgame::audit

#endif  // AUDIT_GAME_AUDIT_LOG_H_
