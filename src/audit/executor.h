#ifndef AUDIT_GAME_AUDIT_EXECUTOR_H_
#define AUDIT_GAME_AUDIT_EXECUTOR_H_

#include <vector>

#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::audit {

/// One concrete auditing pure strategy: inspect alert bins in `ordering`,
/// spending at most `thresholds[t]` budget on type t and at most `budget`
/// overall. Auditing one alert of type t costs `audit_costs[t]`.
struct AuditConfiguration {
  std::vector<int> ordering;        // permutation of {0..T-1}
  std::vector<double> thresholds;   // b_t, in budget units
  std::vector<double> audit_costs;  // C_t > 0
  double budget = 0.0;              // B

  int num_types() const { return static_cast<int>(audit_costs.size()); }
  util::Status Validate() const;
};

/// Implements the paper's recourse semantics (Section II-B): walking the
/// ordering, type t at position k has remaining budget
///   B_t = max(floor((B - sum_{i<k} min(b_{o_i}, Z_{o_i} * C_{o_i})) / C_t), 0)
/// and audits n_t = min(B_t, floor(b_t / C_t), Z_t) alerts.
///
/// Returns n_t for every type (0 for types not in the ordering).
util::StatusOr<std::vector<int>> AuditedCounts(const AuditConfiguration& config,
                                               const std::vector<int>& alert_counts);

/// Outcome of simulating a single audit period.
struct DayOutcome {
  std::vector<int> alert_counts;  // bin sizes, attack alert included
  std::vector<int> audited;       // audited per type
  bool attack_alert_raised = false;
  bool attack_detected = false;
};

/// Simulates one audit period: benign alerts arrive per `benign_counts`, an
/// optional attack alert of type `attack_type` (-1 for none) is appended to
/// its bin, the auditor runs `config`, and the audited subset of each bin is
/// chosen uniformly at random. Used by integration tests to validate the
/// analytic detection probabilities empirically.
util::StatusOr<DayOutcome> SimulateDay(const AuditConfiguration& config,
                                       const std::vector<int>& benign_counts,
                                       int attack_type, util::Rng& rng);

}  // namespace auditgame::audit

#endif  // AUDIT_GAME_AUDIT_EXECUTOR_H_
