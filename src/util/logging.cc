#include "util/logging.h"

#include <cstdlib>

namespace auditgame::util {
namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityName(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

LogSeverity MinLogSeverity() { return g_min_severity; }

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace auditgame::util
