#include "util/percentile.h"

#include <algorithm>
#include <cmath>

namespace auditgame::util {

double NearestRankPercentileSorted(const std::vector<double>& sorted,
                                   double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

}  // namespace auditgame::util
