#include "util/flags.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>

namespace auditgame::util {
namespace {

// Reports a malformed flag value and terminates: flag accessors are called
// from CLI entry points where silently substituting a default (the old
// strtol-with-null-endptr behavior) corrupts whole sweeps.
[[noreturn]] void DieBadFlagValue(const std::string& name,
                                  const std::string& token,
                                  const Status& status) {
  std::cerr << "invalid value for --" << name << ": " << status.message()
            << " (got \"" << token << "\")\n";
  std::exit(2);
}

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == ',') {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

}  // namespace

StatusOr<int> ParseFullInt(const std::string& token) {
  if (token.empty()) return InvalidArgumentError("empty integer token");
  // strtol skips leading whitespace; a flag token must not have any.
  if (std::isspace(static_cast<unsigned char>(token.front()))) {
    return InvalidArgumentError("not an integer");
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    return InvalidArgumentError("not an integer");
  }
  if (errno == ERANGE || value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return OutOfRangeError("integer out of range");
  }
  return static_cast<int>(value);
}

StatusOr<double> ParseFullDouble(const std::string& token) {
  if (token.empty()) return InvalidArgumentError("empty number token");
  // strtod skips leading whitespace; a flag token must not have any.
  if (std::isspace(static_cast<unsigned char>(token.front()))) {
    return InvalidArgumentError("not a number");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    return InvalidArgumentError("not a number");
  }
  // ERANGE covers both overflow and underflow; underflow still returns the
  // correct (sub)normal value, so only overflow is an error.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return OutOfRangeError("number out of range");
  }
  // strtod accepts "nan"/"inf"; no flag in this project means either, and
  // letting them through turns range guards like (0, 1) into no-ops.
  if (!std::isfinite(value)) {
    return InvalidArgumentError("not a finite number");
  }
  return value;
}

FlagParser& FlagParser::Define(const std::string& name,
                               const std::string& default_value,
                               const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
  return *this;
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      continue;
    }
    if (token.rfind("--", 0) != 0) {
      return InvalidArgumentError("unexpected positional argument: " + token);
    }
    token = token.substr(2);
    std::string name, value;
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      name = token.substr(0, eq);
      value = token.substr(eq + 1);
    } else {
      name = token;
      auto it = flags_.find(name);
      if (it == flags_.end()) return InvalidArgumentError("unknown flag: --" + name);
      // Boolean form `--name`, or `--name value`.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) return InvalidArgumentError("unknown flag: --" + name);
    it->second.value = value;
  }
  return OkStatus();
}

std::string FlagParser::HelpString(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? std::string() : it->second.value;
}

int FlagParser::GetInt(const std::string& name) const {
  const std::string token = GetString(name);
  auto value = ParseFullInt(token);
  if (!value.ok()) DieBadFlagValue(name, token, value.status());
  return *value;
}

double FlagParser::GetDouble(const std::string& name) const {
  const std::string token = GetString(name);
  auto value = ParseFullDouble(token);
  if (!value.ok()) DieBadFlagValue(name, token, value.status());
  return *value;
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<double> FlagParser::GetDoubleList(const std::string& name) const {
  std::vector<double> result;
  for (const std::string& part : SplitComma(GetString(name))) {
    auto value = ParseFullDouble(part);
    if (!value.ok()) DieBadFlagValue(name, part, value.status());
    result.push_back(*value);
  }
  return result;
}

std::vector<int> FlagParser::GetIntList(const std::string& name) const {
  std::vector<int> result;
  for (const std::string& part : SplitComma(GetString(name))) {
    auto value = ParseFullInt(part);
    if (!value.ok()) DieBadFlagValue(name, part, value.status());
    result.push_back(*value);
  }
  return result;
}

}  // namespace auditgame::util
