#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace auditgame::util {
namespace {

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == ',') {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

}  // namespace

FlagParser& FlagParser::Define(const std::string& name,
                               const std::string& default_value,
                               const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
  return *this;
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      continue;
    }
    if (token.rfind("--", 0) != 0) {
      return InvalidArgumentError("unexpected positional argument: " + token);
    }
    token = token.substr(2);
    std::string name, value;
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      name = token.substr(0, eq);
      value = token.substr(eq + 1);
    } else {
      name = token;
      auto it = flags_.find(name);
      if (it == flags_.end()) return InvalidArgumentError("unknown flag: --" + name);
      // Boolean form `--name`, or `--name value`.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) return InvalidArgumentError("unknown flag: --" + name);
    it->second.value = value;
  }
  return OkStatus();
}

std::string FlagParser::HelpString(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? std::string() : it->second.value;
}

int FlagParser::GetInt(const std::string& name) const {
  return static_cast<int>(std::strtol(GetString(name).c_str(), nullptr, 10));
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<double> FlagParser::GetDoubleList(const std::string& name) const {
  std::vector<double> result;
  for (const std::string& part : SplitComma(GetString(name))) {
    result.push_back(std::strtod(part.c_str(), nullptr));
  }
  return result;
}

std::vector<int> FlagParser::GetIntList(const std::string& name) const {
  std::vector<int> result;
  for (const std::string& part : SplitComma(GetString(name))) {
    result.push_back(static_cast<int>(std::strtol(part.c_str(), nullptr, 10)));
  }
  return result;
}

}  // namespace auditgame::util
