#ifndef AUDIT_GAME_UTIL_PERCENTILE_H_
#define AUDIT_GAME_UTIL_PERCENTILE_H_

#include <vector>

namespace auditgame::util {

/// Nearest-rank percentile of an ascending-sorted sample (q in [0, 1];
/// 0 on an empty sample). Callers sort once and index several quantiles —
/// the latency reporting in the server's stats verb, tools/loadgen and
/// tools/workload_replay all read p50/p90/p99 from one sorted sample.
double NearestRankPercentileSorted(const std::vector<double>& sorted,
                                   double q);

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_PERCENTILE_H_
