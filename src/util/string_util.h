#ifndef AUDIT_GAME_UTIL_STRING_UTIL_H_
#define AUDIT_GAME_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace auditgame::util {

/// Joins elements with a separator; each element is formatted via
/// std::to_string for arithmetic types or used verbatim for strings.
std::string JoinInts(const std::vector<int>& values, const std::string& sep);
std::string JoinDoubles(const std::vector<double>& values, const std::string& sep,
                        int precision = 4);
std::string JoinStrings(const std::vector<std::string>& values, const std::string& sep);

/// Formats an integer vector like "[4, 4, 3, 3]" — the paper's threshold
/// vector notation.
std::string FormatIntVector(const std::vector<int>& values);

/// Formats a double vector like "[0.3566, 0.3780]".
std::string FormatDoubleVector(const std::vector<double>& values, int precision = 4);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Splits on a delimiter character (no quoting).
std::vector<std::string> Split(const std::string& s, char delim);

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_STRING_UTIL_H_
