#ifndef AUDIT_GAME_UTIL_LRU_CACHE_H_
#define AUDIT_GAME_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <utility>

namespace auditgame::util {

/// A bounded map with least-recently-used eviction. Lookup() refreshes an
/// entry's recency; Insert() evicts the coldest entry once `capacity` is
/// exceeded. Not thread-safe — wrap with a mutex at the call site (see
/// service::PolicyCache and solver::SolverEngine, which share one lock per
/// cache instance).
template <typename Key, typename Value, typename Compare = std::less<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  int64_t evictions() const { return evictions_; }

  /// Returns the cached value and marks it most-recently-used, or nullptr.
  /// The pointer stays valid until the next Insert()/Clear().
  Value* Lookup(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Read-only probe that does not refresh recency.
  const Value* Peek(const Key& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// Inserts or overwrites; the entry becomes most-recently-used. Evicts
  /// the least-recently-used entry when over capacity.
  void Insert(const Key& key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      ++evictions_;
    }
  }

  void Clear() {
    entries_.clear();
    index_.clear();
  }

  /// Visits entries from least- to most-recently-used. Serialization hook:
  /// re-Insert()ing entries in this order reproduces both contents and the
  /// recency list exactly (the last entry visited ends up most recent).
  template <typename Fn>
  void ForEachOldestFirst(Fn&& fn) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      fn(it->first, it->second);
    }
  }

  /// Restores the lifetime eviction counter after a snapshot load (Insert()
  /// keeps incrementing it from here).
  void SetEvictions(int64_t evictions) { evictions_ = evictions; }

 private:
  size_t capacity_;
  int64_t evictions_ = 0;
  // Front = most recently used.
  std::list<std::pair<Key, Value>> entries_;
  std::map<Key, typename std::list<std::pair<Key, Value>>::iterator, Compare>
      index_;
};

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_LRU_CACHE_H_
