#ifndef AUDIT_GAME_UTIL_HASH_H_
#define AUDIT_GAME_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace auditgame::util {

/// Incremental FNV-1a (64-bit) hasher. Deterministic across platforms and
/// runs, which is what the policy cache needs: fingerprints computed today
/// must match fingerprints computed by another worker or a later cycle.
/// Not cryptographic — keys are trusted solver configurations, not
/// adversarial input.
class Fnv1a {
 public:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

  explicit Fnv1a(uint64_t seed = kOffsetBasis) : state_(seed) {}

  void Append(const void* data, size_t size);
  void Append(std::string_view s) { Append(s.data(), s.size()); }
  /// Length-prefixed, so ("ab","c") and ("a","bc") hash differently.
  void AppendString(std::string_view s);
  void AppendU64(uint64_t v);
  void AppendI64(int64_t v) { AppendU64(static_cast<uint64_t>(v)); }
  /// Hashes the bit pattern (0.0 and -0.0 differ; NaNs by payload).
  void AppendDouble(double v);

  uint64_t value() const { return state_; }

 private:
  uint64_t state_;
};

/// A 128-bit content fingerprint: two independent 64-bit FNV-1a streams
/// over the same bytes, wide enough that accidental collisions between
/// distinct solver configurations are not a practical concern.
struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex characters, for logs and reports.
  std::string ToHex() const;
};

/// Builds a Fingerprint from two hasher streams (seeded differently by the
/// caller; see FingerprintBuilder for the standard pairing).
class FingerprintBuilder {
 public:
  FingerprintBuilder()
      : hi_(Fnv1a::kOffsetBasis),
        // Second stream: distinct seed so the two words are independent.
        lo_(0x9e3779b97f4a7c15ULL) {}

  void Append(std::string_view s) {
    hi_.Append(s);
    lo_.Append(s);
  }
  void AppendString(std::string_view s) {
    hi_.AppendString(s);
    lo_.AppendString(s);
  }
  void AppendU64(uint64_t v) {
    hi_.AppendU64(v);
    lo_.AppendU64(v);
  }
  void AppendI64(int64_t v) {
    hi_.AppendI64(v);
    lo_.AppendI64(v);
  }
  void AppendDouble(double v) {
    hi_.AppendDouble(v);
    lo_.AppendDouble(v);
  }

  Fingerprint Build() const { return Fingerprint{hi_.value(), lo_.value()}; }

 private:
  Fnv1a hi_;
  Fnv1a lo_;
};

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_HASH_H_
