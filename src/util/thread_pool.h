#ifndef AUDIT_GAME_UTIL_THREAD_POOL_H_
#define AUDIT_GAME_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace auditgame::util {

/// A fixed-size worker pool executing queued tasks FIFO. Used by
/// solver::SolverEngine to fan independent solve requests across cores;
/// general enough for any embarrassingly parallel batch in this codebase.
///
/// Semantics:
///  * Tasks run in submission order (each on whichever worker frees first);
///    callers that need deterministic *results* should write into
///    preassigned slots rather than rely on completion order.
///  * Schedule() is fire-and-forget; Submit() returns a std::future that
///    carries the task's return value, or its exception if it threw.
///  * Wait() blocks until every task scheduled so far has finished.
///  * The destructor drains the queue (it does not cancel pending tasks).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency(), floored at 1.
  static int DefaultThreadCount();

  /// Enqueues a task. Exceptions escaping a Schedule()d task terminate the
  /// process (use Submit() when the task can fail).
  void Schedule(std::function<void()> task);

  /// Enqueues a task and returns a future for its result. An exception
  /// thrown by the task is rethrown from future::get().
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    Schedule([packaged] { (*packaged)(); });
    return future;
  }

  /// Blocks until all tasks scheduled before this call have completed.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // queued + currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_THREAD_POOL_H_
