#include "util/csv.h"

#include <cstdio>
#include <cstdlib>

namespace auditgame::util {

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::Escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string result = "\"";
  for (char c : field) {
    if (c == '"') result += '"';
    result += c;
  }
  result += '"';
  return result;
}

std::string CsvWriter::FormatDouble(double value) {
  // Shortest representation that parses back to exactly `value`: try 15
  // significant digits (enough for most values), widening to 17 (always
  // sufficient for IEEE binary64) only when the round trip fails. Keeps
  // "0.4517" printing as "0.4517" while guaranteeing exact round trips.
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

util::StatusOr<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (in_quotes) {
    return InvalidArgumentError(
        "unterminated quoted field at end of CSV line: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace auditgame::util
