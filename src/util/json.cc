#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace auditgame::util {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return JsonValue(true);
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return JsonValue(false);
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return JsonValue();
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(value);
  }

  // Reads exactly four hex digits (strtol would tolerate signs and
  // whitespace, so the digits are checked explicitly).
  StatusOr<long> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    long code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + static_cast<size_t>(i)];
      int digit;
      if (h >= '0' && h <= '9') {
        digit = h - '0';
      } else if (h >= 'a' && h <= 'f') {
        digit = h - 'a' + 10;
      } else if (h >= 'A' && h <= 'F') {
        digit = h - 'A' + 10;
      } else {
        return Error("bad \\u escape");
      }
      code = (code << 4) | digit;
    }
    pos_ += 4;
    return code;
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string result;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return result;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char escape = text_[pos_++];
        switch (escape) {
          case '"':
            result += '"';
            break;
          case '\\':
            result += '\\';
            break;
          case '/':
            result += '/';
            break;
          case 'b':
            result += '\b';
            break;
          case 'f':
            result += '\f';
            break;
          case 'n':
            result += '\n';
            break;
          case 'r':
            result += '\r';
            break;
          case 't':
            result += '\t';
            break;
          case 'u': {
            // \uXXXX escapes, decoded to UTF-8. A high surrogate must be
            // followed by "\uXXXX" with a low surrogate (together encoding
            // one supplementary-plane code point); lone surrogates are
            // rejected — they are not valid scalar values and would emit
            // ill-formed UTF-8 (CESU-8).
            ASSIGN_OR_RETURN(long code, ParseHex4());
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return Error("lone low surrogate in \\u escape");
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("high surrogate not followed by \\u escape");
              }
              pos_ += 2;
              ASSIGN_OR_RETURN(long low, ParseHex4());
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("high surrogate not followed by low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            if (code < 0x80) {
              result += static_cast<char>(code);
            } else if (code < 0x800) {
              result += static_cast<char>(0xC0 | (code >> 6));
              result += static_cast<char>(0x80 | (code & 0x3F));
            } else if (code < 0x10000) {
              result += static_cast<char>(0xE0 | (code >> 12));
              result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              result += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              result += static_cast<char>(0xF0 | (code >> 18));
              result += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
              result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              result += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        result += c;
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(array));
    for (;;) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return JsonValue(std::move(array));
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(object));
    for (;;) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return JsonValue(std::move(object));
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double value) {
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
  }
}

}  // namespace

util::StatusOr<double> JsonValue::GetNumber(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) return NotFoundError("missing key '" + key + "'");
  if (!value->is_number()) {
    return InvalidArgumentError("key '" + key + "' is not a number");
  }
  return value->as_number();
}

util::StatusOr<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) return NotFoundError("missing key '" + key + "'");
  if (!value->is_string()) {
    return InvalidArgumentError("key '" + key + "' is not a string");
  }
  return value->as_string();
}

util::StatusOr<bool> JsonValue::GetBool(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) return NotFoundError("missing key '" + key + "'");
  if (!value->is_bool()) {
    return InvalidArgumentError("key '" + key + "' is not a bool");
  }
  return value->as_bool();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  const std::string newline = indent > 0 ? "\n" : "";
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string closing_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += newline + pad;
        array_[i].DumpTo(out, indent, depth + 1);
      }
      out += newline + closing_pad + ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        out += newline + pad;
        AppendEscaped(out, key);
        out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
      }
      out += newline + closing_pad + '}';
      break;
    }
  }
}

util::StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace auditgame::util
