#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace auditgame::util {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return JsonValue(true);
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return JsonValue(false);
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return JsonValue();
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(value);
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string result;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return result;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char escape = text_[pos_++];
        switch (escape) {
          case '"':
            result += '"';
            break;
          case '\\':
            result += '\\';
            break;
          case '/':
            result += '/';
            break;
          case 'b':
            result += '\b';
            break;
          case 'f':
            result += '\f';
            break;
          case 'n':
            result += '\n';
            break;
          case 'r':
            result += '\r';
            break;
          case 't':
            result += '\t';
            break;
          case 'u': {
            // Basic \uXXXX support: decode to UTF-8 (no surrogate pairs).
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return Error("bad \\u escape");
            if (code < 0x80) {
              result += static_cast<char>(code);
            } else if (code < 0x800) {
              result += static_cast<char>(0xC0 | (code >> 6));
              result += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              result += static_cast<char>(0xE0 | (code >> 12));
              result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              result += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        result += c;
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(array));
    for (;;) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return JsonValue(std::move(array));
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(object));
    for (;;) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return JsonValue(std::move(object));
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double value) {
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
  }
}

}  // namespace

util::StatusOr<double> JsonValue::GetNumber(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) return NotFoundError("missing key '" + key + "'");
  if (!value->is_number()) {
    return InvalidArgumentError("key '" + key + "' is not a number");
  }
  return value->as_number();
}

util::StatusOr<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) return NotFoundError("missing key '" + key + "'");
  if (!value->is_string()) {
    return InvalidArgumentError("key '" + key + "' is not a string");
  }
  return value->as_string();
}

util::StatusOr<bool> JsonValue::GetBool(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) return NotFoundError("missing key '" + key + "'");
  if (!value->is_bool()) {
    return InvalidArgumentError("key '" + key + "' is not a bool");
  }
  return value->as_bool();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  const std::string newline = indent > 0 ? "\n" : "";
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string closing_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += newline + pad;
        array_[i].DumpTo(out, indent, depth + 1);
      }
      out += newline + closing_pad + ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        out += newline + pad;
        AppendEscaped(out, key);
        out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
      }
      out += newline + closing_pad + '}';
      break;
    }
  }
}

util::StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace auditgame::util
