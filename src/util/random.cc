#include "util/random.h"

#include <cmath>

namespace auditgame::util {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0;
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (r < w) return i;
    r -= w;
  }
  // Numerical fallthrough: return the last positively weighted index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0) return i - 1;
  }
  return 0;
}

Rng Rng::Fork() { return Rng((*this)()); }

}  // namespace auditgame::util
