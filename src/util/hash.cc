#include "util/hash.h"

#include <cstdio>
#include <cstring>

namespace auditgame::util {

void Fnv1a::Append(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kPrime;
  }
  state_ = h;
}

void Fnv1a::AppendString(std::string_view s) {
  AppendU64(s.size());
  Append(s.data(), s.size());
}

void Fnv1a::AppendU64(uint64_t v) {
  // Fixed little-endian byte order so fingerprints are portable.
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  Append(bytes, sizeof(bytes));
}

void Fnv1a::AppendDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits);
}

std::string Fingerprint::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

}  // namespace auditgame::util
