#ifndef AUDIT_GAME_UTIL_STATUS_H_
#define AUDIT_GAME_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace auditgame::util {

/// Canonical error codes, modeled after absl::StatusCode. Library code in
/// this project does not throw exceptions; fallible operations return a
/// Status (or StatusOr<T> for value-producing operations).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kResourceExhausted = 7,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status holds either success (OK) or an error code plus a message.
/// Cheap to copy in the OK case; error messages are heap-allocated strings.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A message with
  /// code kOk is allowed but the message is dropped.
  Status(StatusCode code, std::string message)
      : code_(code),
        message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  /// True if this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error code (kOk for success).
  StatusCode code() const { return code_; }

  /// The error message (empty for OK statuses).
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Factory helpers mirroring absl's convenience constructors.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status ResourceExhaustedError(std::string message);

}  // namespace auditgame::util

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define RETURN_IF_ERROR(expr)                          \
  do {                                                 \
    ::auditgame::util::Status _status = (expr);        \
    if (!_status.ok()) return _status;                 \
  } while (false)

#endif  // AUDIT_GAME_UTIL_STATUS_H_
