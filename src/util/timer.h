#ifndef AUDIT_GAME_UTIL_TIMER_H_
#define AUDIT_GAME_UTIL_TIMER_H_

#include <chrono>

namespace auditgame::util {

/// Wall-clock stopwatch used by benchmark harnesses to report the runtime of
/// each solver invocation.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_TIMER_H_
