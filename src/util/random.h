#ifndef AUDIT_GAME_UTIL_RANDOM_H_
#define AUDIT_GAME_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace auditgame::util {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component in this project takes an explicit seed so that
/// experiments are exactly reproducible across runs and platforms. The
/// engine satisfies the UniformRandomBitGenerator concept, but the
/// distribution helpers below are hand-rolled so results do not depend on
/// the standard library implementation.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 random bits.
  uint64_t operator()();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling, so
  /// the result is exactly uniform.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Marsaglia polar method).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child generator; useful for giving each
  /// component of an experiment its own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_RANDOM_H_
