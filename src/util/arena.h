#ifndef AUDIT_GAME_UTIL_ARENA_H_
#define AUDIT_GAME_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace auditgame::util {

/// A bump (arena) allocator for per-solve scratch memory.
///
/// The solver hot paths — CGGS pricing rounds, revised-simplex eta files
/// and Ftran/Btran scratch, detection prefix convolutions, ISHM threshold
/// buffers — need short-lived vectors whose sizes repeat every call. An
/// Arena serves them by bumping a cursor through reusable blocks: the
/// first solve pays the heap allocations, every later solve (after
/// Reset(), or inside an ArenaScope) reuses the same memory with zero
/// heap traffic. The stats counters make "allocations per solve" a
/// measurable, benchmark-gated quantity (bench/micro_cggs,
/// bench/micro_detection).
///
/// Threading: an Arena is single-threaded. Parallel workers either get
/// their own Arena (WorkspacePool::Get(slot), slot preassigned by chunk so
/// results stay deterministic) or index into buffers carved out before the
/// parallel region.
///
/// Lifetime contract (see docs/DESIGN.md "Numeric kernels and arenas"):
/// memory obtained from Allocate() is valid until the enclosing
/// ArenaScope is destroyed or Reset() is called, whichever comes first.
/// Arena memory is never individually freed and destructors are never
/// run — only trivially-destructible payloads belong here.
class Arena {
 public:
  struct Stats {
    /// Allocate() calls served (scratch requests that would otherwise be
    /// individual heap allocations).
    uint64_t requests = 0;
    /// Blocks actually obtained from the heap — the residual real
    /// allocation count.
    uint64_t heap_blocks = 0;
    /// Bytes obtained from the heap across all blocks.
    uint64_t heap_bytes = 0;
  };

  /// A rewind point: (block index, bytes used in that block).
  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };

  explicit Arena(size_t first_block_bytes = 16 * 1024)
      : first_block_bytes_(first_block_bytes ? first_block_bytes : 1024) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two).
  /// Never fails short of std::bad_alloc; Allocate(0) returns a valid
  /// non-null pointer.
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t)) {
    ++stats_.requests;
    for (;;) {
      if (active_ < blocks_.size()) {
        Block& block = blocks_[active_];
        const size_t aligned = AlignUp(block.used, alignment);
        if (aligned + bytes <= block.capacity) {
          block.used = aligned + bytes;
          return block.data.get() + aligned;
        }
        // Does not fit: move on. Memory past `used` in this block stays
        // idle until the next Reset()/scope rewind — bounded waste, since
        // block sizes grow geometrically.
        ++active_;
        if (active_ < blocks_.size()) blocks_[active_].used = 0;
        continue;
      }
      NewBlock(bytes + alignment);
    }
  }

  /// Typed array of `n` trivially-destructible Ts (uninitialized).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds the cursor to the beginning, keeping every block's capacity.
  void Reset() {
    for (Block& block : blocks_) block.used = 0;
    active_ = 0;
  }

  Mark Position() const {
    if (active_ >= blocks_.size()) return Mark{blocks_.size(), 0};
    return Mark{active_, blocks_[active_].used};
  }

  /// Rewinds to a previous Position(). Marks must unwind LIFO (ArenaScope
  /// enforces this).
  void Rewind(const Mark& mark) {
    for (size_t i = mark.block + 1; i < blocks_.size(); ++i) {
      blocks_[i].used = 0;
    }
    if (mark.block < blocks_.size()) blocks_[mark.block].used = mark.used;
    active_ = mark.block;
  }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Total capacity currently held (for introspection/tests).
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& block : blocks_) total += block.capacity;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  static size_t AlignUp(size_t value, size_t alignment) {
    return (value + alignment - 1) & ~(alignment - 1);
  }

  void NewBlock(size_t min_bytes) {
    size_t capacity = blocks_.empty() ? first_block_bytes_
                                      : blocks_.back().capacity * 2;
    if (capacity < min_bytes) capacity = min_bytes;
    Block block;
    block.data = std::make_unique<char[]>(capacity);
    block.capacity = capacity;
    block.used = 0;
    blocks_.push_back(std::move(block));
    active_ = blocks_.size() - 1;
    ++stats_.heap_blocks;
    stats_.heap_bytes += capacity;
  }

  const size_t first_block_bytes_;
  std::vector<Block> blocks_;
  size_t active_ = 0;
  Stats stats_;
};

/// RAII rewind: everything allocated from `arena` after construction is
/// reclaimed (capacity kept) when the scope dies. Scopes nest LIFO.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena)
      : arena_(&arena), mark_(arena.Position()) {}
  ~ArenaScope() { arena_->Rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// A minimal std::pmr-style vector over arena storage, for trivially
/// copyable, trivially destructible element types (double, int, small
/// PODs). Growth allocates a fresh arena range and memcpy's — the old
/// range is reclaimed only at the next scope rewind, so reserve() up front
/// in loops. Not a drop-in std::vector: no erase/insert, no allocator
/// propagation, invalid after its arena rewinds past it.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaVector is for trivial scratch payloads only");

 public:
  explicit ArenaVector(Arena& arena) : arena_(&arena) {}
  ArenaVector(Arena& arena, size_t n, const T& value = T()) : arena_(&arena) {
    assign(n, value);
  }

  ArenaVector(const ArenaVector&) = delete;
  ArenaVector& operator=(const ArenaVector&) = delete;
  ArenaVector(ArenaVector&& other) noexcept
      : arena_(other.arena_),
        data_(other.data_),
        size_(other.size_),
        capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
  }

  void reserve(size_t n) {
    if (n <= capacity_) return;
    T* grown = arena_->AllocateArray<T>(n);
    if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    capacity_ = n;
  }

  void resize(size_t n, const T& value = T()) {
    reserve(n);
    for (size_t i = size_; i < n; ++i) data_[i] = value;
    size_ = n;
  }

  void assign(size_t n, const T& value) {
    reserve(n);
    for (size_t i = 0; i < n; ++i) data_[i] = value;
    size_ = n;
  }

  void assign(const T* begin, const T* end) {
    const size_t n = static_cast<size_t>(end - begin);
    reserve(n);
    if (n > 0) std::memcpy(data_, begin, n * sizeof(T));
    size_ = n;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) reserve(capacity_ == 0 ? 8 : capacity_ * 2);
    data_[size_++] = value;
  }

  void clear() { size_ = 0; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& back() { return data_[size_ - 1]; }

 private:
  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// A set of slot-indexed Arenas shared down a solve call tree.
///
/// Slot 0 is the solve's main scratch arena; parallel pricing gives worker
/// chunk `c` exclusive use of slot `c + 1` (slots are preassigned by chunk
/// index, never by thread identity, so allocation patterns — like every
/// other reduction in the pricing path — are deterministic and
/// bit-identical across thread counts).
///
/// Call Prepare(n) before handing slots to concurrent workers: Get() may
/// grow the slot table and is NOT safe to call concurrently; Get() on a
/// prepared slot only returns a stable reference and is.
class WorkspacePool {
 public:
  explicit WorkspacePool(size_t first_block_bytes = 16 * 1024)
      : first_block_bytes_(first_block_bytes) {}

  /// Ensures slots [0, n) exist.
  void Prepare(size_t n) {
    while (arenas_.size() < n) arenas_.emplace_back(first_block_bytes_);
  }

  Arena& Get(size_t slot) {
    Prepare(slot + 1);
    return arenas_[slot];
  }

  /// Rewinds every slot (between solves; capacity kept).
  void ResetAll() {
    for (Arena& arena : arenas_) arena.Reset();
  }

  size_t num_slots() const { return arenas_.size(); }

  Arena::Stats TotalStats() const {
    Arena::Stats total;
    for (const Arena& arena : arenas_) {
      total.requests += arena.stats().requests;
      total.heap_blocks += arena.stats().heap_blocks;
      total.heap_bytes += arena.stats().heap_bytes;
    }
    return total;
  }

  void ResetStats() {
    for (Arena& arena : arenas_) arena.ResetStats();
  }

 private:
  const size_t first_block_bytes_;
  std::deque<Arena> arenas_;  // deque: stable addresses across Prepare()
};

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_ARENA_H_
