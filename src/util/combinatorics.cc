#include "util/combinatorics.h"

#include <algorithm>
#include <numeric>

namespace auditgame::util {

uint64_t Factorial(int n) {
  uint64_t result = 1;
  for (int i = 2; i <= n; ++i) result *= static_cast<uint64_t>(i);
  return result;
}

uint64_t Binomial(int n, int k) {
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<uint64_t>(n - k + i) / static_cast<uint64_t>(i);
  }
  return result;
}

std::vector<std::vector<int>> AllPermutations(int n) {
  std::vector<std::vector<int>> result;
  result.reserve(Factorial(n));
  ForEachPermutation(n, [&result](const std::vector<int>& perm) {
    result.push_back(perm);
    return true;
  });
  return result;
}

void ForEachPermutation(int n,
                        const std::function<bool(const std::vector<int>&)>& fn) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    if (!fn(perm)) return;
  } while (std::next_permutation(perm.begin(), perm.end()));
}

std::vector<std::vector<int>> AllCombinations(int n, int k) {
  std::vector<std::vector<int>> result;
  result.reserve(Binomial(n, k));
  ForEachCombination(n, k, [&result](const std::vector<int>& combo) {
    result.push_back(combo);
    return true;
  });
  return result;
}

void ForEachCombination(int n, int k,
                        const std::function<bool(const std::vector<int>&)>& fn) {
  if (k < 0 || k > n) return;
  std::vector<int> combo(k);
  std::iota(combo.begin(), combo.end(), 0);
  for (;;) {
    if (!fn(combo)) return;
    // Advance to the next combination in lexicographic order.
    int i = k - 1;
    while (i >= 0 && combo[i] == n - k + i) --i;
    if (i < 0) return;
    ++combo[i];
    for (int j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
  }
}

void ForEachIntegerVector(const std::vector<int>& dims,
                          const std::function<bool(const std::vector<int>&)>& fn) {
  std::vector<int> v(dims.size(), 0);
  for (;;) {
    if (!fn(v)) return;
    // Odometer increment: last coordinate varies fastest.
    size_t i = dims.size();
    while (i > 0) {
      --i;
      if (v[i] < dims[i]) {
        ++v[i];
        break;
      }
      v[i] = 0;
      if (i == 0) return;
    }
    if (dims.empty()) return;
  }
}

}  // namespace auditgame::util
