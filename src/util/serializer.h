#ifndef AUDIT_GAME_UTIL_SERIALIZER_H_
#define AUDIT_GAME_UTIL_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.h"
#include "util/status.h"

namespace auditgame::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`, the checksum the
/// durability file formats frame every payload with. `Crc32Update` chains
/// incrementally: Crc32(ab) == Crc32Update(Crc32(a-as-seed...)) — use the
/// one-shot form unless streaming.
uint32_t Crc32(std::string_view data);
uint32_t Crc32Update(uint32_t crc, std::string_view data);

/// A bidirectional, versioned, endian-stable state stream — the single
/// interface every stateful layer implements via a
/// `StreamState(Serializer&)` method that both saves and restores it (the
/// direction lives in the serializer, so the field list is written exactly
/// once and read/write can never skew).
///
/// Encoding: all integers fixed-width big-endian; doubles as their raw
/// IEEE-754 bit pattern (bit-for-bit round trips — no text formatting, no
/// renormalization — because snapshot/WAL replay must reproduce solver
/// state exactly); strings and vectors length-prefixed.
///
/// Modes:
///   - Writer(): appends to an internal buffer (never fails).
///   - Reader(data): consumes `data` with sticky error handling — any
///     bounds violation, tag mismatch, or version mismatch sets status()
///     and every later operation no-ops with zeroed outputs, so callers
///     check ok() once at the end instead of after every field.
///   - Fingerprinter(): a writer whose TimingF64 fields are skipped, for
///     content fingerprints of state where wall-clock measurements must
///     not perturb equality (two bit-identical recoveries measure
///     different solve times; see FingerprintState).
///
/// Versioning: each composite type opens its block with
/// Section("tag", kVersion). On read the tag must match and the stored
/// version must equal the current one — a snapshot from a build with a
/// different layout is rejected with a clear error instead of being
/// misparsed.
class Serializer {
 public:
  static Serializer Writer() { return Serializer(Mode::kWrite); }
  static Serializer Fingerprinter() { return Serializer(Mode::kFingerprint); }
  static Serializer Reader(std::string_view data) {
    Serializer s(Mode::kRead);
    s.input_ = data;
    return s;
  }

  bool writing() const { return mode_ != Mode::kRead; }
  bool reading() const { return mode_ == Mode::kRead; }
  bool fingerprinting() const { return mode_ == Mode::kFingerprint; }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Marks the stream failed; every later operation no-ops. The first
  /// failure wins (later ones are usually cascades of the first).
  void Fail(Status status);

  /// Opens a versioned block. Write: emits the tag and version. Read:
  /// fails unless the stored tag and version match exactly.
  void Section(std::string_view tag, uint32_t version);

  void U8(uint8_t& v);
  void U16(uint16_t& v);
  void U32(uint32_t& v);
  void U64(uint64_t& v);
  void I32(int& v);
  void I64(int64_t& v);
  void SizeT(size_t& v);
  void Bool(bool& v);
  void F64(double& v);
  /// A wall-clock measurement: streamed like F64 in read/write mode,
  /// skipped entirely by Fingerprinter() (see class comment).
  void TimingF64(double& v);
  /// An operational counter whose value depends on scheduling (e.g. how
  /// many micro-batches a queue drained), not on logical state: persisted
  /// like I64, excluded from fingerprints like TimingF64.
  void TimingI64(int64_t& v);

  /// Length-prefixed string. Read rejects lengths beyond the remaining
  /// input, so a corrupt length field can never drive a huge allocation.
  void Str(std::string& v);

  void VecF64(std::vector<double>& v);
  void VecTimingF64(std::vector<double>& v);
  void VecI32(std::vector<int>& v);
  void VecStr(std::vector<std::string>& v);
  void VecVecI32(std::vector<std::vector<int>>& v);

  /// Streams a composite implementing StreamState(Serializer&).
  template <typename T>
  void Object(T& v) {
    if (!ok()) return;
    v.StreamState(*this);
  }

  /// Vector of composites; T must be default-constructible for the read
  /// path.
  template <typename T>
  void VecObj(std::vector<T>& v) {
    uint64_t n = Length(v.size());
    if (!ok()) return;
    if (reading()) v.assign(static_cast<size_t>(n), T{});
    for (T& item : v) {
      Object(item);
      if (!ok()) return;
    }
  }

  void Object(Fingerprint& v) {
    U64(v.hi);
    U64(v.lo);
  }

  /// Write modes: the bytes produced so far.
  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

  /// Read mode: unconsumed bytes.
  size_t remaining() const { return input_.size() - pos_; }
  /// Read mode: fails unless every input byte was consumed (trailing
  /// garbage means the producer and consumer disagree about the layout).
  void ExpectExhausted();

 private:
  enum class Mode { kWrite, kRead, kFingerprint };

  explicit Serializer(Mode mode) : mode_(mode) {}

  /// Streams a length field, validating it against the remaining input on
  /// read (each element is at least one byte). Returns the length.
  uint64_t Length(size_t size);

  void PutBytes(const void* data, size_t size);
  bool TakeBytes(void* out, size_t size);

  Mode mode_;
  Status status_ = OkStatus();
  std::string buffer_;      // write modes
  std::string_view input_;  // read mode
  size_t pos_ = 0;
};

/// Content fingerprint of any StreamState-bearing value: streams it in
/// Fingerprinter mode (timings skipped) and fingerprints the bytes. Used
/// by recovery verification: two independent recoveries of the same
/// snapshot + WAL must produce equal fingerprints.
template <typename T>
Fingerprint FingerprintState(T& v) {
  Serializer s = Serializer::Fingerprinter();
  v.StreamState(s);
  FingerprintBuilder fp;
  fp.Append(s.buffer());
  return fp.Build();
}

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_SERIALIZER_H_
