#ifndef AUDIT_GAME_UTIL_FLAGS_H_
#define AUDIT_GAME_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace auditgame::util {

/// Tiny command-line flag parser for the benchmark harnesses and examples.
/// Supports `--name=value`, `--name value` and boolean `--name` forms.
/// Unknown flags are an error so typos in sweep parameters are caught.
class FlagParser {
 public:
  /// Declares a flag with a default value and help text. Returns *this for
  /// chaining.
  FlagParser& Define(const std::string& name, const std::string& default_value,
                     const std::string& help);

  /// Parses argv. On failure returns InvalidArgument with the offending
  /// token. `--help` is always accepted; after parsing, call help_requested().
  Status Parse(int argc, char** argv);

  /// True if `--help` was seen.
  bool help_requested() const { return help_requested_; }

  /// Renders the help text for all defined flags.
  std::string HelpString(const std::string& program) const;

  /// Typed accessors; the flag must have been defined.
  std::string GetString(const std::string& name) const;
  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Parses a comma-separated list of doubles (e.g. "--eps=0.1,0.2,0.3").
  std::vector<double> GetDoubleList(const std::string& name) const;

  /// Parses a comma-separated list of ints.
  std::vector<int> GetIntList(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_FLAGS_H_
