#ifndef AUDIT_GAME_UTIL_FLAGS_H_
#define AUDIT_GAME_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::util {

/// Strict numeric token parsing: the whole token must be a valid number
/// (no trailing garbage — "12abc" is an error, not 12 — and no empty or
/// whitespace-padded tokens). Used by FlagParser's typed accessors and
/// available to any other input path that needs the same discipline.
StatusOr<int> ParseFullInt(const std::string& token);
StatusOr<double> ParseFullDouble(const std::string& token);

/// Tiny command-line flag parser for the benchmark harnesses and examples.
/// Supports `--name=value`, `--name value` and boolean `--name` forms.
/// Unknown flags are an error so typos in sweep parameters are caught.
class FlagParser {
 public:
  /// Declares a flag with a default value and help text. Returns *this for
  /// chaining.
  FlagParser& Define(const std::string& name, const std::string& default_value,
                     const std::string& help);

  /// Parses argv. On failure returns InvalidArgument with the offending
  /// token. `--help` is always accepted; after parsing, call help_requested().
  Status Parse(int argc, char** argv);

  /// True if `--help` was seen.
  bool help_requested() const { return help_requested_; }

  /// Renders the help text for all defined flags.
  std::string HelpString(const std::string& program) const;

  /// Typed accessors; the flag must have been defined. The numeric
  /// accessors validate the full token and exit(2) with a message naming
  /// the flag on a malformed value — a CLI tool must never run a sweep
  /// with "--budget=12abc" silently read as 12.
  std::string GetString(const std::string& name) const;
  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Parses a comma-separated list of doubles (e.g. "--eps=0.1,0.2,0.3").
  /// An empty value yields an empty list; malformed elements exit(2).
  std::vector<double> GetDoubleList(const std::string& name) const;

  /// Parses a comma-separated list of ints.
  std::vector<int> GetIntList(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_FLAGS_H_
