#ifndef AUDIT_GAME_UTIL_CSV_H_
#define AUDIT_GAME_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::util {

/// Minimal CSV emitter used by the benchmark harnesses to print the rows of
/// each reproduced table/figure in machine-readable form. Fields containing
/// commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row. Numeric convenience overloads format with enough
  /// precision to round-trip doubles.
  void WriteRow(const std::vector<std::string>& fields);

  /// Escapes a single field per RFC 4180.
  static std::string Escape(const std::string& field);

  /// Formats a double with the fewest significant digits (15-17) that
  /// still parse back to the identical value, so written benchmark rows
  /// and policies round-trip exactly.
  static std::string FormatDouble(double value);

 private:
  std::ostream& out_;
};

/// Splits one CSV line into fields (handles RFC 4180 quoting; does not
/// handle embedded newlines). A quoted field left open at the end of the
/// line is an InvalidArgument error, not a silently truncated field. Used
/// by tests and example data loaders.
util::StatusOr<std::vector<std::string>> SplitCsvLine(const std::string& line);

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_CSV_H_
