#include "util/string_util.h"

#include <cstdio>
#include <sstream>

namespace auditgame::util {

std::string JoinInts(const std::vector<int>& values, const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) result += sep;
    result += std::to_string(values[i]);
  }
  return result;
}

std::string JoinDoubles(const std::vector<double>& values,
                        const std::string& sep, int precision) {
  std::ostringstream os;
  char buf[64];
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << sep;
    std::snprintf(buf, sizeof(buf), "%.*f", precision, values[i]);
    os << buf;
  }
  return os.str();
}

std::string JoinStrings(const std::vector<std::string>& values,
                        const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) result += sep;
    result += values[i];
  }
  return result;
}

std::string FormatIntVector(const std::vector<int>& values) {
  return "[" + JoinInts(values, ", ") + "]";
}

std::string FormatDoubleVector(const std::vector<double>& values, int precision) {
  return "[" + JoinDoubles(values, ", ", precision) + "]";
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t' ||
                         s[begin] == '\r' || s[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r' || s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace auditgame::util
