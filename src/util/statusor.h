#ifndef AUDIT_GAME_UTIL_STATUSOR_H_
#define AUDIT_GAME_UTIL_STATUSOR_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "util/status.h"

namespace auditgame::util {

/// StatusOr<T> holds either a value of type T or a non-OK Status explaining
/// why the value is absent. Accessing the value of a non-OK StatusOr aborts
/// the process (library code must check ok() first).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and is converted to an internal error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }

  /// True if a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const {
    static const Status* const kOk = new Status();
    return ok() ? *kOk : status_;
  }

  /// Value accessors; abort if no value is held.
  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "Attempted to access value of failed StatusOr: "
                << status_.ToString() << std::endl;
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace auditgame::util

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define AG_STATUS_CONCAT_INNER(a, b) a##b
#define AG_STATUS_CONCAT(a, b) AG_STATUS_CONCAT_INNER(a, b)
#define ASSIGN_OR_RETURN_IMPL(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                          \
  if (!statusor.ok()) return statusor.status();     \
  lhs = std::move(statusor).value()
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(AG_STATUS_CONCAT(_statusor_, __LINE__), lhs, rexpr)

#endif  // AUDIT_GAME_UTIL_STATUSOR_H_
