#ifndef AUDIT_GAME_UTIL_JSON_H_
#define AUDIT_GAME_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::util {

/// A minimal JSON document model (null / bool / number / string / array /
/// object) with a strict parser and a writer. Used to serialize game
/// instances and audit policies so downstream tools can configure the
/// solver without recompiling (see core/game_io.h and the solve_policy
/// tool).
///
/// Numbers are held as doubles; integers round-trip exactly up to 2^53.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}          // NOLINT
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}    // NOLINT
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}      // NOLINT
  JsonValue(const char* value) : JsonValue(std::string(value)) {}      // NOLINT
  JsonValue(std::string value)                                         // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(Array value)                                               // NOLINT
      : type_(Type::kArray), array_(std::move(value)) {}
  JsonValue(Object value)                                              // NOLINT
      : type_(Type::kObject), object_(std::move(value)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error checked
  /// by CHECK in debug flows — prefer the Get* helpers for untrusted data.
  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Safe object-field access with type checking.
  util::StatusOr<double> GetNumber(const std::string& key) const;
  util::StatusOr<std::string> GetString(const std::string& key) const;
  util::StatusOr<bool> GetBool(const std::string& key) const;
  const JsonValue* Find(const std::string& key) const;

  /// Serializes to a compact JSON string; `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Strict parser (no comments, no trailing commas). Returns an error
  /// with position information on malformed input.
  static util::StatusOr<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_JSON_H_
