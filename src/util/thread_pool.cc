#include "util/thread_pool.h"

#include <algorithm>

namespace auditgame::util {

ThreadPool::ThreadPool(int num_threads) {
  const int count = num_threads > 0 ? num_threads : DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace auditgame::util
