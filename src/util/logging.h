#ifndef AUDIT_GAME_UTIL_LOGGING_H_
#define AUDIT_GAME_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace auditgame::util {

/// Log severities, ordered. FATAL aborts after logging.
enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum severity that is actually emitted (default INFO).
void SetMinLogSeverity(LogSeverity severity);

/// Returns the current global minimum severity.
LogSeverity MinLogSeverity();

/// Internal: stream-style message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace auditgame::util

/// Stream-style logging macros:  LOG(INFO) << "message";
#define LOG(severity) LOG_##severity
#define LOG_DEBUG                                                        \
  ::auditgame::util::LogMessage(::auditgame::util::LogSeverity::kDebug, \
                                __FILE__, __LINE__)                      \
      .stream()
#define LOG_INFO                                                        \
  ::auditgame::util::LogMessage(::auditgame::util::LogSeverity::kInfo, \
                                __FILE__, __LINE__)                     \
      .stream()
#define LOG_WARNING                                                        \
  ::auditgame::util::LogMessage(::auditgame::util::LogSeverity::kWarning, \
                                __FILE__, __LINE__)                        \
      .stream()
#define LOG_ERROR                                                        \
  ::auditgame::util::LogMessage(::auditgame::util::LogSeverity::kError, \
                                __FILE__, __LINE__)                      \
      .stream()
#define LOG_FATAL                                                        \
  ::auditgame::util::LogMessage(::auditgame::util::LogSeverity::kFatal, \
                                __FILE__, __LINE__)                      \
      .stream()

/// CHECK(cond) aborts with a message when `cond` is false; active in all
/// build modes (these guard library invariants, not user errors).
#define CHECK(cond)                                          \
  if (!(cond)) LOG(FATAL) << "Check failed: " #cond " "

#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // AUDIT_GAME_UTIL_LOGGING_H_
