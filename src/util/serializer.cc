#include "util/serializer.h"

#include <array>
#include <cstring>

namespace auditgame::util {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  const std::array<uint32_t, 256>& table = CrcTable();
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

void Serializer::Fail(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

void Serializer::PutBytes(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

bool Serializer::TakeBytes(void* out, size_t size) {
  if (!ok()) {
    std::memset(out, 0, size);
    return false;
  }
  if (remaining() < size) {
    std::memset(out, 0, size);
    Fail(InvalidArgumentError("serializer: truncated input (need " +
                              std::to_string(size) + " bytes, have " +
                              std::to_string(remaining()) + ")"));
    return false;
  }
  std::memcpy(out, input_.data() + pos_, size);
  pos_ += size;
  return true;
}

void Serializer::U8(uint8_t& v) {
  if (!ok()) {
    if (reading()) v = 0;
    return;
  }
  if (reading()) {
    TakeBytes(&v, 1);
  } else {
    PutBytes(&v, 1);
  }
}

void Serializer::U16(uint16_t& v) {
  if (!ok()) {
    if (reading()) v = 0;
    return;
  }
  if (reading()) {
    unsigned char b[2];
    if (!TakeBytes(b, 2)) {
      v = 0;
      return;
    }
    v = static_cast<uint16_t>((uint16_t{b[0]} << 8) | uint16_t{b[1]});
  } else {
    unsigned char b[2] = {static_cast<unsigned char>(v >> 8),
                          static_cast<unsigned char>(v)};
    PutBytes(b, 2);
  }
}

void Serializer::U32(uint32_t& v) {
  if (!ok()) {
    if (reading()) v = 0;
    return;
  }
  if (reading()) {
    unsigned char b[4];
    if (!TakeBytes(b, 4)) {
      v = 0;
      return;
    }
    v = (uint32_t{b[0]} << 24) | (uint32_t{b[1]} << 16) |
        (uint32_t{b[2]} << 8) | uint32_t{b[3]};
  } else {
    unsigned char b[4] = {
        static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
        static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
    PutBytes(b, 4);
  }
}

void Serializer::U64(uint64_t& v) {
  if (!ok()) {
    if (reading()) v = 0;
    return;
  }
  if (reading()) {
    unsigned char b[8];
    if (!TakeBytes(b, 8)) {
      v = 0;
      return;
    }
    v = 0;
    for (unsigned char byte : b) v = (v << 8) | byte;
  } else {
    unsigned char b[8];
    for (int i = 7; i >= 0; --i) {
      b[i] = static_cast<unsigned char>(v >> (8 * (7 - i)));
    }
    PutBytes(b, 8);
  }
}

void Serializer::I32(int& v) {
  int64_t wide = v;
  I64(wide);
  if (reading()) v = static_cast<int>(wide);
}

void Serializer::I64(int64_t& v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
  if (reading()) std::memcpy(&v, &bits, sizeof(v));
}

void Serializer::SizeT(size_t& v) {
  uint64_t wide = v;
  U64(wide);
  if (reading()) v = static_cast<size_t>(wide);
}

void Serializer::Bool(bool& v) {
  uint8_t byte = v ? 1 : 0;
  U8(byte);
  if (reading()) {
    if (byte > 1) {
      Fail(InvalidArgumentError("serializer: invalid bool byte"));
      v = false;
      return;
    }
    v = byte != 0;
  }
}

void Serializer::F64(double& v) {
  // Raw bit pattern: round trips every value (incl. -0.0, NaN payloads)
  // bit-for-bit, which replay determinism depends on.
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
  if (reading()) std::memcpy(&v, &bits, sizeof(v));
}

void Serializer::TimingF64(double& v) {
  if (fingerprinting()) return;
  F64(v);
}

void Serializer::TimingI64(int64_t& v) {
  if (fingerprinting()) return;
  I64(v);
}

uint64_t Serializer::Length(size_t size) {
  uint64_t n = size;
  U64(n);
  if (reading() && ok() && n > remaining()) {
    Fail(InvalidArgumentError("serializer: length " + std::to_string(n) +
                              " exceeds remaining input (" +
                              std::to_string(remaining()) + " bytes)"));
    return 0;
  }
  return ok() ? n : 0;
}

void Serializer::Str(std::string& v) {
  uint64_t n = Length(v.size());
  if (!ok()) {
    if (reading()) v.clear();
    return;
  }
  if (reading()) {
    v.assign(input_.data() + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
  } else {
    PutBytes(v.data(), v.size());
  }
}

void Serializer::VecF64(std::vector<double>& v) {
  uint64_t n = Length(v.size());
  if (!ok()) {
    if (reading()) v.clear();
    return;
  }
  if (reading()) v.assign(static_cast<size_t>(n), 0.0);
  for (double& x : v) {
    F64(x);
    if (!ok()) return;
  }
}

void Serializer::VecTimingF64(std::vector<double>& v) {
  if (fingerprinting()) return;
  VecF64(v);
}

void Serializer::VecI32(std::vector<int>& v) {
  uint64_t n = Length(v.size());
  if (!ok()) {
    if (reading()) v.clear();
    return;
  }
  if (reading()) v.assign(static_cast<size_t>(n), 0);
  for (int& x : v) {
    I32(x);
    if (!ok()) return;
  }
}

void Serializer::VecStr(std::vector<std::string>& v) {
  uint64_t n = Length(v.size());
  if (!ok()) {
    if (reading()) v.clear();
    return;
  }
  if (reading()) v.assign(static_cast<size_t>(n), std::string());
  for (std::string& s : v) {
    Str(s);
    if (!ok()) return;
  }
}

void Serializer::VecVecI32(std::vector<std::vector<int>>& v) {
  uint64_t n = Length(v.size());
  if (!ok()) {
    if (reading()) v.clear();
    return;
  }
  if (reading()) v.assign(static_cast<size_t>(n), std::vector<int>());
  for (std::vector<int>& inner : v) {
    VecI32(inner);
    if (!ok()) return;
  }
}

void Serializer::Section(std::string_view tag, uint32_t version) {
  std::string stored_tag(tag);
  Str(stored_tag);
  if (reading() && ok() && stored_tag != tag) {
    Fail(InvalidArgumentError("serializer: section tag mismatch (expected '" +
                              std::string(tag) + "', found '" + stored_tag +
                              "')"));
  }
  uint32_t stored_version = version;
  U32(stored_version);
  if (reading() && ok() && stored_version != version) {
    Fail(InvalidArgumentError(
        "serializer: section '" + std::string(tag) + "' version mismatch " +
        "(stream has v" + std::to_string(stored_version) +
        ", this build reads v" + std::to_string(version) + ")"));
  }
}

void Serializer::ExpectExhausted() {
  if (!ok() || !reading()) return;
  if (remaining() != 0) {
    Fail(InvalidArgumentError("serializer: " + std::to_string(remaining()) +
                              " trailing bytes after final field"));
  }
}

}  // namespace auditgame::util
