#ifndef AUDIT_GAME_UTIL_COMBINATORICS_H_
#define AUDIT_GAME_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace auditgame::util {

/// Returns n! as a 64-bit integer. Requires 0 <= n <= 20 (21! overflows).
uint64_t Factorial(int n);

/// Returns the binomial coefficient C(n, k). Requires 0 <= k <= n and a
/// result that fits in 64 bits.
uint64_t Binomial(int n, int k);

/// Returns all permutations of {0, 1, ..., n-1} in lexicographic order.
/// Intended for small n (the controlled evaluation uses n = 4, i.e. 24
/// permutations); callers enumerating larger spaces should use
/// ForEachPermutation to avoid materializing the whole set.
std::vector<std::vector<int>> AllPermutations(int n);

/// Calls `fn` once for each permutation of {0..n-1} in lexicographic order.
/// Stops early if `fn` returns false.
void ForEachPermutation(int n, const std::function<bool(const std::vector<int>&)>& fn);

/// Returns all k-element subsets of {0..n-1} in lexicographic order, each
/// subset sorted ascending. Matches MATLAB's choose(|T|, lh) enumeration
/// used by ISHM (Algorithm 2, line 4).
std::vector<std::vector<int>> AllCombinations(int n, int k);

/// Calls `fn` once per k-subset in lexicographic order; stops early if `fn`
/// returns false.
void ForEachCombination(int n, int k, const std::function<bool(const std::vector<int>&)>& fn);

/// Enumerates integer vectors v of length `dims.size()` with
/// 0 <= v[i] <= dims[i], in odometer (row-major) order. Used by the
/// brute-force OAP solver to sweep threshold vectors. Stops early if `fn`
/// returns false.
void ForEachIntegerVector(const std::vector<int>& dims, const std::function<bool(const std::vector<int>&)>& fn);

}  // namespace auditgame::util

#endif  // AUDIT_GAME_UTIL_COMBINATORICS_H_
