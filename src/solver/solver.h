#ifndef AUDIT_GAME_SOLVER_SOLVER_H_
#define AUDIT_GAME_SOLVER_SOLVER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/brute_force.h"
#include "core/cggs.h"
#include "core/detection.h"
#include "core/game.h"
#include "core/ishm.h"
#include "core/policy.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::util {
class Serializer;
}  // namespace auditgame::util

namespace auditgame::solver {

/// The unified solver seam. The paper's algorithms form a family of
/// interchangeable backends for the same problem — find the auditor's
/// optimal (thresholds, ordering-mixture) policy — differing only in what
/// they search and how exactly:
///
///   name          searches thresholds?  ordering mixture      exact?
///   ------------  --------------------  --------------------  -----------
///   brute-force   all integer vectors   full LP (|T|! cols)   yes
///   full-lp       no (caller fixes b)   full LP (|T|! cols)   given b
///   cggs          no (caller fixes b)   column generation     heuristic
///   ishm-full     ISHM (Alg. 2)         full LP               heuristic
///   ishm-cggs     ISHM (Alg. 2)         CGGS (Alg. 1)         heuristic
///
/// Callers select a backend by name through the registry
/// (solver::Create("ishm-cggs", options)) instead of hand-wiring the free
/// functions in core/; see docs/DESIGN.md "Solver layer".

/// Construction-time configuration. Every backend reads only its slice;
/// unused fields are ignored, so one options object can configure a whole
/// batch of heterogeneous solvers.
struct SolverOptions {
  core::IshmOptions ishm;
  core::CggsOptions cggs;
  core::BruteForceOptions brute_force;
};

/// Search seeds carried over from a previously solved, nearby request —
/// e.g. the same game one audit cycle ago, before a small alert-count
/// drift. Backends use the parts they understand and ignore the rest;
/// empty fields mean cold start. Seeding never changes what a backend
/// searches for, only where it starts, so a warm solve is a valid solve
/// of the *current* request (see docs/DESIGN.md "Serving layer").
struct WarmStart {
  /// ISHM backends: raw threshold vector to start the shrink search at.
  std::vector<double> thresholds;
  /// CGGS-based backends: orderings seeding the column pool (typically the
  /// support of the previous policy). Invalid orderings are dropped.
  std::vector<std::vector<int>> orderings;
};

/// Per-call inputs. The budget and the detection configuration live in the
/// DetectionModel passed to Solve().
struct SolveRequest {
  /// Required by threshold-searching backends (brute-force, ishm-*): the
  /// uncompiled instance, for threshold upper bounds and validation. Must
  /// be the instance `game` was compiled from.
  const core::GameInstance* instance = nullptr;
  /// Required by fixed-threshold backends (full-lp, cggs): the threshold
  /// vector b to evaluate.
  std::vector<double> thresholds;
  /// Optional warm start for the heuristic backends.
  WarmStart warm_start;
};

/// Search-effort counters, unified across backends. Fields irrelevant to a
/// backend stay zero (e.g. `lp_solves` for brute-force, `evaluations` for
/// the fixed-threshold evaluators).
struct SolveStats {
  /// ISHM: threshold vectors submitted for evaluation (Table VII).
  int64_t evaluations = 0;
  /// ISHM: distinct effective vectors actually evaluated (cache misses).
  int64_t distinct_evaluations = 0;
  /// ISHM: accepted improvements.
  int improvements = 0;
  /// CGGS: restricted master LPs solved.
  int lp_solves = 0;
  /// CGGS: master solves warm-started from the previous basis (the
  /// incremental master; see core/master_lp.h).
  int warm_lp_solves = 0;
  /// CGGS: columns generated beyond the initial set.
  int columns_generated = 0;
  /// CGGS: wall-clock spent in the pricing rounds (the part
  /// CggsOptions::pricing_threads parallelizes).
  double pricing_seconds = 0.0;
  /// Brute force: threshold vectors whose LP was solved.
  uint64_t vectors_evaluated = 0;
  /// Brute force: size of the full search space prod_t (J_t + 1).
  uint64_t search_space = 0;
  /// Wall-clock time of the Solve() call.
  double seconds = 0.0;

  /// Timing fields stream as TimingF64 — skipped by state fingerprints,
  /// since two bit-identical recoveries measure different wall-clocks.
  void StreamState(util::Serializer& s);
};

/// What every backend returns: the objective (expected auditor loss), the
/// assembled policy, the effective thresholds it commits to, and stats.
struct SolveResult {
  /// Registry name of the backend that produced this result.
  std::string solver;
  double objective = 0.0;
  core::AuditPolicy policy;
  /// The thresholds of the returned policy (searched or as requested,
  /// floored to whole audits where the backend does so).
  std::vector<double> thresholds;
  SolveStats stats;

  void StreamState(util::Serializer& s);
};

/// Abstract polymorphic solver. Implementations are stateless between
/// Solve() calls except for deliberate warm-start caches (ishm-cggs keeps
/// its column pool per *call*, not per solver object, so repeated Solve()
/// calls are independent and deterministic).
///
/// Thread-safety: a Solver object may be used from one thread at a time;
/// `detection` is mutated (SetThresholds) during the solve. For parallel
/// batches give each request its own DetectionModel — SolverEngine does.
class Solver {
 public:
  virtual ~Solver() = default;

  /// The registry name ("ishm-cggs", ...).
  virtual std::string_view Name() const = 0;

  /// Solves the game. `detection` must be bound to the same instance and
  /// carries the budget; its thresholds are overwritten.
  virtual util::StatusOr<SolveResult> Solve(const core::CompiledGame& game,
                                            core::DetectionModel& detection,
                                            const SolveRequest& request) = 0;
};

}  // namespace auditgame::solver

#endif  // AUDIT_GAME_SOLVER_SOLVER_H_
