#ifndef AUDIT_GAME_SOLVER_ENGINE_H_
#define AUDIT_GAME_SOLVER_ENGINE_H_

#include <string>
#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "solver/solver.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace auditgame::solver {

/// One self-contained unit of work for the engine: everything needed to
/// compile the game, bind a detection model, build a solver by name, and
/// run it. Each request gets its own DetectionModel (the models are mutated
/// during a solve), so requests never share mutable state and a batch is
/// safe to run on any number of threads.
struct EngineRequest {
  /// Registry name of the backend ("ishm-cggs", ...).
  std::string solver;
  /// The game to solve. Must outlive the SolveAll() call.
  const core::GameInstance* instance = nullptr;
  /// Audit budget B for this request.
  double budget = 0.0;
  /// Detection-model configuration (semantics, mode, ...).
  core::DetectionModel::Options detection_options;
  /// Thresholds for fixed-threshold backends (full-lp, cggs); ignored by
  /// the searching backends.
  std::vector<double> thresholds;
  /// Backend configuration (step size, CGGS seed, ...).
  SolverOptions options;
};

/// Fans a batch of independent solve requests across a util::ThreadPool.
/// Typical batches: one instance at several budgets (a sweep), one budget
/// at several step sizes, or independent instances. Results come back in
/// request order regardless of completion order, and each result is
/// bit-for-bit identical to running the same request serially (per-request
/// RNG state, no sharing).
class SolverEngine {
 public:
  /// `num_threads` = 0 uses ThreadPool::DefaultThreadCount().
  explicit SolverEngine(int num_threads = 0) : pool_(num_threads) {}

  int num_threads() const { return pool_.num_threads(); }

  /// Runs every request. Failures (unknown solver, invalid game, solve
  /// error) are reported per-slot; one bad request never aborts the batch.
  std::vector<util::StatusOr<SolveResult>> SolveAll(
      const std::vector<EngineRequest>& requests);

  /// Runs a single request on the calling thread (the serial baseline the
  /// engine's parallel results are compared against).
  static util::StatusOr<SolveResult> SolveOne(const EngineRequest& request);

 private:
  util::ThreadPool pool_;
};

}  // namespace auditgame::solver

#endif  // AUDIT_GAME_SOLVER_ENGINE_H_
