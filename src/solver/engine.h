#ifndef AUDIT_GAME_SOLVER_ENGINE_H_
#define AUDIT_GAME_SOLVER_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "solver/solver.h"
#include "util/hash.h"
#include "util/lru_cache.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace auditgame::solver {

/// One self-contained unit of work for the engine: everything needed to
/// compile the game, bind a detection model, build a solver by name, and
/// run it. Each request gets its own DetectionModel (the models are mutated
/// during a solve), so requests never share mutable state and a batch is
/// safe to run on any number of threads.
struct EngineRequest {
  /// Registry name of the backend ("ishm-cggs", ...).
  std::string solver;
  /// The game to solve. Must outlive the SolveAll() call.
  const core::GameInstance* instance = nullptr;
  /// Audit budget B for this request.
  double budget = 0.0;
  /// Detection-model configuration (semantics, mode, ...).
  core::DetectionModel::Options detection_options;
  /// Thresholds for fixed-threshold backends (full-lp, cggs); ignored by
  /// the searching backends.
  std::vector<double> thresholds;
  /// Backend configuration (step size, CGGS seed, ...).
  SolverOptions options;
  /// Optional search seed from a previous nearby solve (ISHM thresholds,
  /// CGGS orderings); empty fields mean cold start.
  WarmStart warm_start;
};

/// Fans a batch of independent solve requests across a util::ThreadPool.
/// Typical batches: one instance at several budgets (a sweep), one budget
/// at several step sizes, or independent instances. Results come back in
/// request order regardless of completion order, and each result is
/// bit-for-bit identical to running the same request serially (per-request
/// RNG state, no sharing).
///
/// Compilation is cached across the engine's lifetime, keyed by the game's
/// structure fingerprint (type count + adversaries — the only content
/// Compile() reads): a serving loop that re-solves the same game every
/// cycle compiles it exactly once, even while its alert-count
/// distributions drift, and many batches over one sweep instance share one
/// compile. The cache is LRU-bounded and thread-safe (one mutex; workers
/// only read shared_ptr snapshots taken before the batch is scheduled).
class SolverEngine {
 public:
  struct CompileCacheStats {
    int64_t hits = 0;
    int64_t misses = 0;
  };

  /// `num_threads` = 0 uses ThreadPool::DefaultThreadCount(); < 0 selects
  /// *inline mode* — no pool at all, SolveAll() runs every request on the
  /// calling thread. Inline mode exists for hosts that already own the
  /// concurrency (the audit server's shards: thousands of tenant engines,
  /// each solving from its single shard thread — a pool per tenant would
  /// be thousands of idle threads). `compile_cache_capacity` bounds the
  /// number of distinct compiled games kept across batches.
  explicit SolverEngine(int num_threads = 0,
                        size_t compile_cache_capacity = 64)
      : pool_(num_threads < 0 ? nullptr
                              : std::make_unique<util::ThreadPool>(
                                    num_threads)),
        compiled_cache_(compile_cache_capacity) {}

  /// 0 in inline mode (no worker threads exist).
  int num_threads() const { return pool_ ? pool_->num_threads() : 0; }

  /// Runs every request. Failures (unknown solver, invalid game, solve
  /// error) are reported per-slot; one bad request never aborts the batch.
  std::vector<util::StatusOr<SolveResult>> SolveAll(
      const std::vector<EngineRequest>& requests);

  /// Runs a single request on the calling thread (the serial baseline the
  /// engine's parallel results are compared against). Does not touch the
  /// compile cache.
  static util::StatusOr<SolveResult> SolveOne(const EngineRequest& request);

  CompileCacheStats compile_cache_stats() const;

 private:
  using CompiledPtr = std::shared_ptr<const util::StatusOr<core::CompiledGame>>;

  /// Returns the compiled form of `instance`, compiling and caching on miss.
  CompiledPtr CompileCached(const core::GameInstance& instance);

  /// Null in inline mode.
  std::unique_ptr<util::ThreadPool> pool_;
  mutable std::mutex cache_mutex_;
  util::LruCache<util::Fingerprint, CompiledPtr> compiled_cache_;
  CompileCacheStats cache_stats_;
};

}  // namespace auditgame::solver

#endif  // AUDIT_GAME_SOLVER_ENGINE_H_
