// The five built-in Solver adapters, wrapping the free functions in core/.
// Each adapter is a thin translation layer: it forwards to the underlying
// algorithm unchanged (same options, same seeds), so results are bit-for-bit
// identical to direct calls — solver_registry_test enforces this.
#include <memory>
#include <string>
#include <utility>

#include "core/brute_force.h"
#include "core/cggs.h"
#include "core/game_lp.h"
#include "core/ishm.h"
#include "solver/registry.h"
#include "solver/solver.h"
#include "util/serializer.h"
#include "util/timer.h"

namespace auditgame::solver {
namespace {

util::Status RequireInstance(const SolveRequest& request,
                             std::string_view name) {
  if (request.instance == nullptr) {
    return util::InvalidArgumentError(
        std::string(name) +
        " searches thresholds and needs SolveRequest::instance");
  }
  return util::OkStatus();
}

util::Status RequireThresholds(const core::CompiledGame& game,
                               const SolveRequest& request,
                               std::string_view name) {
  if (static_cast<int>(request.thresholds.size()) != game.num_types) {
    return util::InvalidArgumentError(
        std::string(name) +
        " evaluates a fixed threshold vector and needs "
        "SolveRequest::thresholds with one entry per type");
  }
  return util::OkStatus();
}

class BruteForceSolver : public Solver {
 public:
  explicit BruteForceSolver(const SolverOptions& options)
      : options_(options.brute_force) {}

  std::string_view Name() const override { return "brute-force"; }

  util::StatusOr<SolveResult> Solve(const core::CompiledGame& game,
                                    core::DetectionModel& detection,
                                    const SolveRequest& request) override {
    RETURN_IF_ERROR(RequireInstance(request, Name()));
    util::Timer timer;
    ASSIGN_OR_RETURN(
        core::BruteForceResult brute,
        core::SolveBruteForce(*request.instance, game, detection, options_));
    SolveResult result;
    result.solver = Name();
    result.objective = brute.objective;
    result.policy = std::move(brute.policy);
    result.thresholds = result.policy.thresholds;
    result.stats.vectors_evaluated = brute.vectors_evaluated;
    result.stats.search_space = brute.search_space;
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }

 private:
  core::BruteForceOptions options_;
};

class FullLpSolver : public Solver {
 public:
  explicit FullLpSolver(const SolverOptions&) {}

  std::string_view Name() const override { return "full-lp"; }

  util::StatusOr<SolveResult> Solve(const core::CompiledGame& game,
                                    core::DetectionModel& detection,
                                    const SolveRequest& request) override {
    RETURN_IF_ERROR(RequireThresholds(game, request, Name()));
    util::Timer timer;
    ASSIGN_OR_RETURN(
        core::FullLpResult full,
        core::SolveFullGameLp(game, detection, request.thresholds));
    SolveResult result;
    result.solver = Name();
    result.objective = full.objective;
    result.policy = std::move(full.policy);
    result.thresholds = result.policy.thresholds;
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }
};

class CggsSolver : public Solver {
 public:
  explicit CggsSolver(const SolverOptions& options) : options_(options.cggs) {}

  std::string_view Name() const override { return "cggs"; }

  util::StatusOr<SolveResult> Solve(const core::CompiledGame& game,
                                    core::DetectionModel& detection,
                                    const SolveRequest& request) override {
    RETURN_IF_ERROR(RequireThresholds(game, request, Name()));
    util::Timer timer;
    core::CggsOptions options = options_;
    options.initial_orderings.insert(options.initial_orderings.end(),
                                     request.warm_start.orderings.begin(),
                                     request.warm_start.orderings.end());
    ASSIGN_OR_RETURN(
        core::CggsResult cggs,
        core::SolveCggs(game, detection, request.thresholds, options));
    SolveResult result;
    result.solver = Name();
    result.objective = cggs.objective;
    result.policy = std::move(cggs.policy);
    result.thresholds = result.policy.thresholds;
    result.stats.lp_solves = cggs.lp_solves;
    result.stats.warm_lp_solves = cggs.warm_lp_solves;
    result.stats.columns_generated = cggs.columns_generated;
    result.stats.pricing_seconds = cggs.pricing_seconds;
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }

 private:
  core::CggsOptions options_;
};

/// Shared shape of the two ISHM adapters; `evaluator_name` selects the
/// threshold evaluator wired under the shrink search.
class IshmSolver : public Solver {
 public:
  enum class Evaluator { kFullLp, kCggs };

  IshmSolver(const SolverOptions& options, Evaluator evaluator)
      : options_(options), evaluator_(evaluator) {}

  std::string_view Name() const override {
    return evaluator_ == Evaluator::kFullLp ? "ishm-full" : "ishm-cggs";
  }

  util::StatusOr<SolveResult> Solve(const core::CompiledGame& game,
                                    core::DetectionModel& detection,
                                    const SolveRequest& request) override {
    RETURN_IF_ERROR(RequireInstance(request, Name()));
    util::Timer timer;
    SolverOptions options = options_;
    if (!request.warm_start.thresholds.empty()) {
      options.ishm.initial_thresholds = request.warm_start.thresholds;
    }
    options.cggs.initial_orderings.insert(
        options.cggs.initial_orderings.end(),
        request.warm_start.orderings.begin(),
        request.warm_start.orderings.end());
    // A fresh evaluator per call keeps the CGGS warm-start pool scoped to
    // this solve: repeated Solve() calls are independent and deterministic.
    const core::ThresholdEvaluator evaluator =
        evaluator_ == Evaluator::kFullLp
            ? core::MakeFullLpEvaluator(game, detection)
            : core::MakeCggsEvaluator(game, detection, options.cggs);
    ASSIGN_OR_RETURN(
        core::IshmResult ishm,
        core::SolveIshm(*request.instance, evaluator, options.ishm));
    SolveResult result;
    result.solver = Name();
    result.objective = ishm.objective;
    result.policy = std::move(ishm.policy);
    result.thresholds = std::move(ishm.effective_thresholds);
    result.stats.evaluations = ishm.stats.evaluations;
    result.stats.distinct_evaluations = ishm.stats.distinct_evaluations;
    result.stats.improvements = ishm.stats.improvements;
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }

 private:
  SolverOptions options_;
  Evaluator evaluator_;
};

}  // namespace

void SolveStats::StreamState(util::Serializer& s) {
  s.Section("solve_stats", 1);
  s.I64(evaluations);
  s.I64(distinct_evaluations);
  s.I32(improvements);
  s.I32(lp_solves);
  s.I32(warm_lp_solves);
  s.I32(columns_generated);
  s.TimingF64(pricing_seconds);
  s.U64(vectors_evaluated);
  s.U64(search_space);
  s.TimingF64(seconds);
}

void SolveResult::StreamState(util::Serializer& s) {
  s.Section("solve_result", 1);
  s.Str(solver);
  s.F64(objective);
  s.Object(policy);
  s.VecF64(thresholds);
  s.Object(stats);
}

namespace internal {

void RegisterBuiltinSolvers() {
  (void)internal::RegisterFactory("brute-force", [](const SolverOptions& options) {
    return std::make_unique<BruteForceSolver>(options);
  });
  (void)internal::RegisterFactory("full-lp", [](const SolverOptions& options) {
    return std::make_unique<FullLpSolver>(options);
  });
  (void)internal::RegisterFactory("cggs", [](const SolverOptions& options) {
    return std::make_unique<CggsSolver>(options);
  });
  (void)internal::RegisterFactory("ishm-full", [](const SolverOptions& options) {
    return std::make_unique<IshmSolver>(options, IshmSolver::Evaluator::kFullLp);
  });
  (void)internal::RegisterFactory("ishm-cggs", [](const SolverOptions& options) {
    return std::make_unique<IshmSolver>(options, IshmSolver::Evaluator::kCggs);
  });
}

}  // namespace internal
}  // namespace auditgame::solver
