#include "solver/registry.h"

#include <map>
#include <mutex>
#include <utility>

namespace auditgame::solver {

namespace internal {
// Defined in solvers.cc; registers the five built-in backends.
void RegisterBuiltinSolvers();
}  // namespace internal

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, SolverFactory> factories;
};

// Leaked singleton: safe to use from static initializers and worker threads.
Registry& GetRegistry() {
  static Registry* const kRegistry = [] {
    auto* registry = new Registry();
    return registry;
  }();
  return *kRegistry;
}

// The built-ins are installed on first use of the public API so that a
// static-library link never dead-strips them.
void EnsureBuiltins() {
  static const bool kDone = [] {
    internal::RegisterBuiltinSolvers();
    return true;
  }();
  (void)kDone;
}

}  // namespace

namespace internal {

util::Status RegisterFactory(const std::string& name, SolverFactory factory) {
  if (name.empty()) {
    return util::InvalidArgumentError("solver name must be non-empty");
  }
  if (factory == nullptr) {
    return util::InvalidArgumentError("solver factory must be non-null");
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto [it, inserted] =
      registry.factories.emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    return util::FailedPreconditionError("solver already registered: " + name);
  }
  return util::OkStatus();
}

}  // namespace internal

util::Status Register(const std::string& name, SolverFactory factory) {
  // Install the built-ins first, so a downstream Register() that runs
  // before the first Create() cannot silently claim — and later shadow —
  // a built-in name.
  EnsureBuiltins();
  return internal::RegisterFactory(name, std::move(factory));
}

util::StatusOr<std::unique_ptr<Solver>> Create(const std::string& name,
                                               const SolverOptions& options) {
  EnsureBuiltins();
  SolverFactory factory;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    const auto it = registry.factories.find(name);
    if (it == registry.factories.end()) {
      std::string known;
      for (const auto& [known_name, unused] : registry.factories) {
        if (!known.empty()) known += ", ";
        known += known_name;
      }
      return util::NotFoundError("unknown solver \"" + name +
                                 "\" (registered: " + known + ")");
    }
    factory = it->second;
  }
  std::unique_ptr<Solver> created = factory(options);
  if (created == nullptr) {
    return util::InternalError("factory for \"" + name + "\" returned null");
  }
  return created;
}

std::vector<std::string> RegisteredNames() {
  EnsureBuiltins();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.factories.size());
  for (const auto& [name, unused] : registry.factories) names.push_back(name);
  return names;
}

}  // namespace auditgame::solver
