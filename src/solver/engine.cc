#include "solver/engine.h"

#include <exception>
#include <map>
#include <memory>
#include <utility>

#include "core/game_io.h"
#include "solver/registry.h"

namespace auditgame::solver {
namespace {

// The per-request work once the compiled game is in hand.
util::StatusOr<SolveResult> SolveCompiled(const EngineRequest& request,
                                          const core::CompiledGame& game) {
  ASSIGN_OR_RETURN(std::unique_ptr<Solver> solver,
                   Create(request.solver, request.options));
  ASSIGN_OR_RETURN(core::DetectionModel detection,
                   core::DetectionModel::Create(*request.instance,
                                                request.budget,
                                                request.detection_options));
  SolveRequest solve_request;
  solve_request.instance = request.instance;
  solve_request.thresholds = request.thresholds;
  solve_request.warm_start = request.warm_start;
  return solver->Solve(game, detection, solve_request);
}

}  // namespace

util::StatusOr<SolveResult> SolverEngine::SolveOne(
    const EngineRequest& request) {
  if (request.instance == nullptr) {
    return util::InvalidArgumentError("EngineRequest::instance is null");
  }
  ASSIGN_OR_RETURN(core::CompiledGame game, core::Compile(*request.instance));
  return SolveCompiled(request, game);
}

SolverEngine::CompiledPtr SolverEngine::CompileCached(
    const core::GameInstance& instance) {
  // Invalid instances are never cached (and never hit): caching keys on
  // the compile-relevant structure only, and validity also depends on the
  // parts the key skips (distribution count, cost positivity).
  if (util::Status valid = instance.Validate(); !valid.ok()) {
    return std::make_shared<const util::StatusOr<core::CompiledGame>>(
        std::move(valid));
  }
  // Fingerprinting is O(instance size) — negligible next to a solve — and
  // makes the cache content-addressed: the same game behind two different
  // pointers (or re-parsed next cycle) still compiles once. The structure
  // fingerprint skips the alert-count distributions, which Compile() does
  // not read, so a serving loop whose distributions drift every cycle
  // still hits.
  const util::Fingerprint key = core::FingerprintGameStructure(instance);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (CompiledPtr* cached = compiled_cache_.Lookup(key)) {
      ++cache_stats_.hits;
      return *cached;
    }
  }
  // Compile outside the lock; a rare duplicate compile of the same game by
  // two concurrent SolveAll calls is cheaper than serializing all compiles.
  auto compiled = std::make_shared<const util::StatusOr<core::CompiledGame>>(
      core::Compile(instance));
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++cache_stats_.misses;
  compiled_cache_.Insert(key, compiled);
  return compiled;
}

SolverEngine::CompileCacheStats SolverEngine::compile_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_stats_;
}

std::vector<util::StatusOr<SolveResult>> SolverEngine::SolveAll(
    const std::vector<EngineRequest>& requests) {
  // Batches typically share one instance across many budgets/step sizes:
  // resolve each distinct instance against the persistent compile cache up
  // front. The map is read-only once the workers start, so they need no
  // locking, and the shared_ptrs keep entries alive even if another batch
  // evicts them meanwhile.
  std::map<const core::GameInstance*, CompiledPtr> compiled;
  for (const EngineRequest& request : requests) {
    if (request.instance != nullptr &&
        compiled.find(request.instance) == compiled.end()) {
      compiled.emplace(request.instance, CompileCached(*request.instance));
    }
  }

  // Workers fill preassigned slots so the output order is the input order,
  // independent of scheduling. Inline mode (no pool) runs the same worker
  // body on the calling thread — bit-for-bit the same results, since
  // requests never share mutable state either way.
  std::vector<std::unique_ptr<util::StatusOr<SolveResult>>> slots(
      requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const EngineRequest& request = requests[i];
    auto& slot = slots[i];
    auto work = [&request, &slot, &compiled] {
      // Library code is exception-free (Status-based), but a worker must
      // never let anything escape onto the pool thread.
      try {
        if (request.instance == nullptr) {
          slot = std::make_unique<util::StatusOr<SolveResult>>(
              util::InvalidArgumentError("EngineRequest::instance is null"));
          return;
        }
        const auto& game = *compiled.at(request.instance);
        slot = std::make_unique<util::StatusOr<SolveResult>>(
            game.ok() ? SolveCompiled(request, *game)
                      : util::StatusOr<SolveResult>(game.status()));
      } catch (const std::exception& e) {
        slot = std::make_unique<util::StatusOr<SolveResult>>(
            util::InternalError(std::string("solver threw: ") + e.what()));
      } catch (...) {
        slot = std::make_unique<util::StatusOr<SolveResult>>(
            util::InternalError("solver threw a non-exception"));
      }
    };
    if (pool_) {
      pool_->Schedule(std::move(work));
    } else {
      work();
    }
  }
  if (pool_) pool_->Wait();

  std::vector<util::StatusOr<SolveResult>> results;
  results.reserve(slots.size());
  for (auto& slot : slots) {
    results.push_back(slot == nullptr
                          ? util::StatusOr<SolveResult>(
                                util::InternalError("request never ran"))
                          : std::move(*slot));
  }
  return results;
}

}  // namespace auditgame::solver
