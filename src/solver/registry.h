#ifndef AUDIT_GAME_SOLVER_REGISTRY_H_
#define AUDIT_GAME_SOLVER_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "solver/solver.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::solver {

/// Builds a solver configured with `options`.
using SolverFactory =
    std::function<std::unique_ptr<Solver>(const SolverOptions& options)>;

/// Registers a factory under `name`. The five built-in backends
/// (brute-force, full-lp, cggs, ishm-full, ishm-cggs) are pre-registered;
/// downstream code may add its own. Re-registering an existing name is an
/// error (kFailedPrecondition). Thread-safe.
util::Status Register(const std::string& name, SolverFactory factory);

/// Instantiates the backend registered under `name`. Unknown names return
/// kNotFound with the list of registered names in the message. Thread-safe.
util::StatusOr<std::unique_ptr<Solver>> Create(const std::string& name,
                                               const SolverOptions& options);
inline util::StatusOr<std::unique_ptr<Solver>> Create(
    const std::string& name) {
  return Create(name, SolverOptions());
}

/// All registered names, sorted. Thread-safe.
std::vector<std::string> RegisteredNames();

namespace internal {
/// Registration path used by the built-in adapters while they are being
/// installed (the public Register() first installs the built-ins, which
/// must not re-enter that installation). Downstream code uses Register().
util::Status RegisterFactory(const std::string& name, SolverFactory factory);
}  // namespace internal

}  // namespace auditgame::solver

#endif  // AUDIT_GAME_SOLVER_REGISTRY_H_
