#include "lp/model.h"

#include <cmath>

namespace auditgame::lp {

int LpModel::AddVariable(double cost, double lower, double upper,
                         std::string name) {
  costs_.push_back(cost);
  lower_.push_back(lower);
  upper_.push_back(upper);
  if (name.empty()) name = "x" + std::to_string(costs_.size() - 1);
  var_names_.push_back(std::move(name));
  return num_variables() - 1;
}

int LpModel::AddConstraint(Sense sense, double rhs, std::string name) {
  rows_.emplace_back();
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  if (name.empty()) name = "c" + std::to_string(rows_.size() - 1);
  row_names_.push_back(std::move(name));
  return num_constraints() - 1;
}

void LpModel::AddCoefficient(int row, int var, double value) {
  Row& r = rows_[row];
  // Accumulate into an existing entry if present (callers may add the same
  // variable twice, e.g. when building utility rows term by term).
  for (size_t k = 0; k < r.vars.size(); ++k) {
    if (r.vars[k] == var) {
      r.coeffs[k] += value;
      return;
    }
  }
  r.vars.push_back(var);
  r.coeffs.push_back(value);
}

double LpModel::RowActivity(int row, const std::vector<double>& x) const {
  const Row& r = rows_[row];
  double activity = 0.0;
  for (size_t k = 0; k < r.vars.size(); ++k) {
    activity += r.coeffs[k] * x[r.vars[k]];
  }
  return activity;
}

double LpModel::Objective(const std::vector<double>& x) const {
  double obj = objective_constant_;
  for (int j = 0; j < num_variables(); ++j) obj += costs_[j] * x[j];
  return obj;
}

util::Status LpModel::Validate() const {
  for (int j = 0; j < num_variables(); ++j) {
    if (lower_[j] > upper_[j]) {
      return util::InvalidArgumentError("variable " + var_names_[j] +
                                        " has lower bound > upper bound");
    }
    if (!std::isfinite(costs_[j])) {
      return util::InvalidArgumentError("variable " + var_names_[j] +
                                        " has non-finite cost");
    }
  }
  for (int i = 0; i < num_constraints(); ++i) {
    if (!std::isfinite(rhs_[i])) {
      return util::InvalidArgumentError("constraint " + row_names_[i] +
                                        " has non-finite rhs");
    }
    for (double c : rows_[i].coeffs) {
      if (!std::isfinite(c)) {
        return util::InvalidArgumentError("constraint " + row_names_[i] +
                                          " has non-finite coefficient");
      }
    }
  }
  return util::OkStatus();
}

}  // namespace auditgame::lp
