#ifndef AUDIT_GAME_LP_VALIDATE_H_
#define AUDIT_GAME_LP_VALIDATE_H_

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/status.h"

namespace auditgame::lp {

/// Independent checks applied to a claimed-optimal solution. Used in tests
/// and available to callers who want defense in depth around the solver.
struct ValidationOptions {
  double feasibility_tolerance = 1e-6;
  double duality_gap_tolerance = 1e-6;
};

/// Verifies primal feasibility: every row satisfied within tolerance and
/// every variable within its bounds.
util::Status CheckPrimalFeasibility(const LpModel& model,
                                    const LpSolution& solution,
                                    const ValidationOptions& options = {});

/// Verifies dual sign conventions (>= rows have dual >= 0, <= rows have
/// dual <= 0 for minimization) and strong duality: the dual objective
/// implied by `solution.dual` (plus bound contributions recovered from
/// reduced costs) matches the primal objective within tolerance.
util::Status CheckOptimality(const LpModel& model, const LpSolution& solution,
                             const ValidationOptions& options = {});

}  // namespace auditgame::lp

#endif  // AUDIT_GAME_LP_VALIDATE_H_
