#ifndef AUDIT_GAME_LP_MODEL_H_
#define AUDIT_GAME_LP_MODEL_H_

#include <limits>
#include <string>
#include <vector>

#include "util/status.h"

namespace auditgame::lp {

/// Sense of a linear constraint row.
enum class Sense { kLessEqual, kGreaterEqual, kEqual };

/// Positive infinity used for unbounded variable bounds.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A linear program in the form
///
///     minimize    c'x
///     subject to  a_i'x  {<=, >=, =}  b_i     for each row i
///                 lb_j <= x_j <= ub_j         for each variable j
///
/// Rows are stored sparsely. The model is a plain builder: it performs no
/// solving itself (see SimplexSolver). Maximization problems should be
/// expressed by negating the objective.
class LpModel {
 public:
  /// Adds a variable with objective coefficient `cost` and bounds
  /// [lower, upper]; use -kInfinity / kInfinity for free directions.
  /// Returns the variable index.
  int AddVariable(double cost, double lower, double upper,
                  std::string name = "");

  /// Convenience: non-negative variable.
  int AddNonNegativeVariable(double cost, std::string name = "") {
    return AddVariable(cost, 0.0, kInfinity, std::move(name));
  }

  /// Convenience: free variable.
  int AddFreeVariable(double cost, std::string name = "") {
    return AddVariable(cost, -kInfinity, kInfinity, std::move(name));
  }

  /// Starts a new empty constraint row `a'x sense rhs`; returns its index.
  int AddConstraint(Sense sense, double rhs, std::string name = "");

  /// Sets (accumulates) a coefficient in a row. Requires valid indices.
  void AddCoefficient(int row, int var, double value);

  /// Pre-sizes the model-level storage for `variables` variables and
  /// `constraints` rows. Purely an allocation hint for builders that know
  /// their final shape (the column-generation master reserves its full
  /// column budget up front so appending columns never reallocates).
  void Reserve(int variables, int constraints) {
    costs_.reserve(variables);
    lower_.reserve(variables);
    upper_.reserve(variables);
    var_names_.reserve(variables);
    rows_.reserve(constraints);
    senses_.reserve(constraints);
    rhs_.reserve(constraints);
    row_names_.reserve(constraints);
  }

  /// Pre-sizes one row's sparse entry storage for `entries` coefficients.
  void ReserveRowEntries(int row, int entries) {
    rows_[row].vars.reserve(entries);
    rows_[row].coeffs.reserve(entries);
  }

  /// Adds a constant to the objective (useful when substituting out fixed
  /// variable parts); reported objective includes it.
  void AddObjectiveConstant(double value) { objective_constant_ += value; }

  int num_variables() const { return static_cast<int>(costs_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }
  double objective_constant() const { return objective_constant_; }

  double cost(int var) const { return costs_[var]; }
  double lower_bound(int var) const { return lower_[var]; }
  double upper_bound(int var) const { return upper_[var]; }
  const std::string& variable_name(int var) const { return var_names_[var]; }
  const std::string& constraint_name(int row) const { return row_names_[row]; }
  Sense sense(int row) const { return senses_[row]; }
  double rhs(int row) const { return rhs_[row]; }

  /// Sparse entries of a row as parallel (variable, coefficient) vectors.
  const std::vector<int>& row_vars(int row) const { return rows_[row].vars; }
  const std::vector<double>& row_coeffs(int row) const {
    return rows_[row].coeffs;
  }

  /// Evaluates a_i'x for a dense point x.
  double RowActivity(int row, const std::vector<double>& x) const;

  /// Evaluates c'x + objective constant.
  double Objective(const std::vector<double>& x) const;

  /// Validates basic well-formedness (bounds ordered, finite rhs, ...).
  util::Status Validate() const;

 private:
  struct Row {
    std::vector<int> vars;
    std::vector<double> coeffs;
  };

  std::vector<double> costs_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::string> var_names_;
  std::vector<Row> rows_;
  std::vector<Sense> senses_;
  std::vector<double> rhs_;
  std::vector<std::string> row_names_;
  double objective_constant_ = 0.0;
};

}  // namespace auditgame::lp

#endif  // AUDIT_GAME_LP_MODEL_H_
