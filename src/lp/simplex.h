#ifndef AUDIT_GAME_LP_SIMPLEX_H_
#define AUDIT_GAME_LP_SIMPLEX_H_

#include <vector>

#include "lp/model.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::util {
class WorkspacePool;
}  // namespace auditgame::util

namespace auditgame::lp {

/// Termination status of a solve.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* SolveStatusToString(SolveStatus status);

/// Which simplex implementation solves the model.
///  * kDenseTableau — the full-tableau two-phase solver below. The
///    reference backend: simple, exhaustively validated, O(m*n) per pivot.
///  * kRevised — the bounded-variable revised simplex in
///    lp/revised_simplex.h: no upper-bound rows, no free-variable
///    splitting, LU-factorized basis with eta updates, and warm-startable
///    from a Basis snapshot. Same LpSolution contract.
enum class SimplexBackend { kDenseTableau, kRevised };

const char* SimplexBackendToString(SimplexBackend backend);

/// Result of solving an LpModel.
struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;

  /// c'x* + objective constant (meaningful when status == kOptimal).
  double objective = 0.0;

  /// Optimal primal values, one per model variable.
  std::vector<double> primal;

  /// Dual values (shadow prices), one per model constraint, oriented for
  /// the original row: dual[i] = d(objective)/d(rhs[i]). For a minimization
  /// problem, duals of >= rows are >= 0 and duals of <= rows are <= 0 at
  /// optimality.
  std::vector<double> dual;

  /// Reduced costs in the original variable space:
  ///   rc[j] = c[j] - sum_i dual[i] * a[i][j].
  /// For a non-basic variable at its lower bound rc[j] >= 0 (minimization).
  std::vector<double> reduced_cost;

  /// Simplex iterations used in each phase.
  int phase1_iterations = 0;
  int phase2_iterations = 0;
};

/// Dense two-phase primal simplex.
///
/// Design notes:
///  * The model is converted to computational standard form
///    (min c'x, Ax = b, x >= 0) by shifting/splitting variables and adding
///    slack/surplus and artificial columns.
///  * Pricing is Dantzig (most negative reduced cost) with an automatic,
///    permanent switch to Bland's rule when the objective stalls, which
///    guarantees termination.
///  * Duals are recovered as y = c_B * B^{-1}, where B^{-1} is read off the
///    final tableau at the positions of the initial identity basis.
///
/// This is exact (up to floating point) and comfortably fast for the game
/// LPs in this project (hundreds of rows, hundreds of columns). It is not
/// intended for large sparse industrial LPs.
class SimplexSolver {
 public:
  struct Options {
    /// Hard cap on total pivots across both phases.
    int max_iterations = 200000;
    /// Pivot magnitude tolerance.
    double pivot_tolerance = 1e-9;
    /// Feasibility / optimality tolerance on reduced costs and residuals.
    double tolerance = 1e-8;
    /// Backend dispatched by Solve(). The dense tableau remains the
    /// reference implementation; kRevised is the bounded-variable revised
    /// simplex (lp/revised_simplex.h), which additionally supports basis
    /// warm starts through its own entry point.
    SimplexBackend backend = SimplexBackend::kDenseTableau;
    /// kRevised only: basis pivots between LU refactorizations.
    int refactor_interval = 64;
    /// Optional non-owning scratch pool (util/arena.h) the revised simplex
    /// draws its per-solve working memory from (LU factors, eta d-vectors,
    /// Ftran/Btran scratch); must outlive every Solve using these options.
    /// Null = each solve allocates its own scratch. Callers that solve in a
    /// loop (the incremental master LP) share one pool here so steady-state
    /// re-solves never touch the heap.
    util::WorkspacePool* workspace = nullptr;
  };

  /// Solves `model`. Returns an error status only for malformed models;
  /// infeasible/unbounded outcomes are reported in LpSolution::status.
  static util::StatusOr<LpSolution> Solve(const LpModel& model,
                                          const Options& options);
  static util::StatusOr<LpSolution> Solve(const LpModel& model) {
    return Solve(model, Options());
  }
};

}  // namespace auditgame::lp

#endif  // AUDIT_GAME_LP_SIMPLEX_H_
