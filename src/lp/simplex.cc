#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lp/revised_simplex.h"
#include "util/logging.h"

namespace auditgame::lp {
namespace {

// How each original variable maps into standard-form columns.
struct VarMap {
  enum Kind { kShiftedFromLower, kReflectedFromUpper, kFreeSplit } kind;
  int col = -1;        // primary standard-form column
  int col_neg = -1;    // second column for kFreeSplit
  double offset = 0.0; // lb (kShiftedFromLower) or ub (kReflectedFromUpper)
};

// Internal dense standard-form problem: min c'x, Ax = b (b >= 0), x >= 0.
struct StandardForm {
  int m = 0;                     // rows
  int n_structural = 0;          // columns before slacks/artificials
  int n_total = 0;               // all columns
  std::vector<double> tableau;   // (m) x (n_total + 1); rhs in last column
  std::vector<double> cost;      // phase-2 costs, size n_total
  std::vector<bool> artificial;  // per column
  std::vector<int> basis;        // basic column per row
  std::vector<int> identity_col; // column providing row i's initial identity
  std::vector<double> row_flip;  // +1/-1 applied to original row i
  std::vector<int> orig_row;     // maps standard row -> original row (-1 for
                                 // variable-bound rows)
  double objective_constant = 0.0;
  std::vector<VarMap> var_map;   // per original variable
};

class Tableau {
 public:
  Tableau(StandardForm sf, const SimplexSolver::Options& options)
      : sf_(std::move(sf)), options_(options), width_(sf_.n_total + 1) {}

  double& At(int row, int col) { return sf_.tableau[row * width_ + col]; }
  double At(int row, int col) const { return sf_.tableau[row * width_ + col]; }
  double& Rhs(int row) { return sf_.tableau[row * width_ + sf_.n_total]; }
  double Rhs(int row) const { return sf_.tableau[row * width_ + sf_.n_total]; }

  const StandardForm& sf() const { return sf_; }
  StandardForm& sf() { return sf_; }

  // Runs one simplex phase with the given cost vector. `allow_enter`
  // filters candidate entering columns. Returns the number of iterations,
  // or -1 for unboundedness, -2 for the iteration cap.
  int RunPhase(const std::vector<double>& cost,
               const std::vector<bool>& allow_enter, int iteration_budget) {
    ComputeReducedCosts(cost);
    int iterations = 0;
    int stall = 0;
    bool bland = false;
    double last_objective = CurrentObjective(cost);
    for (;;) {
      const int entering = ChooseEntering(allow_enter, bland);
      if (entering < 0) return iterations;  // optimal for this phase
      // Only a basis that still has work to do can run out of budget; an
      // already-optimal basis with a zero remaining budget is optimal.
      if (iterations >= iteration_budget) return -2;
      const int leaving_row = ChooseLeavingRow(entering, bland);
      if (leaving_row < 0) return -1;  // unbounded direction
      Pivot(leaving_row, entering);
      ++iterations;
      const double objective = CurrentObjective(cost);
      if (objective < last_objective - 1e-12) {
        last_objective = objective;
        stall = 0;
        bland = false;
      } else if (!bland && ++stall > 2 * (sf_.m + 50)) {
        bland = true;  // switch to Bland's rule to escape cycling
      }
    }
  }

  double CurrentObjective(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (int i = 0; i < sf_.m; ++i) obj += cost[sf_.basis[i]] * Rhs(i);
    return obj;
  }

  // Reduced costs d_j = c_j - c_B' B^{-1} A_j, maintained incrementally
  // during pivots.
  void ComputeReducedCosts(const std::vector<double>& cost) {
    d_.assign(sf_.n_total, 0.0);
    for (int j = 0; j < sf_.n_total; ++j) {
      double cbTj = 0.0;
      for (int i = 0; i < sf_.m; ++i) cbTj += cost[sf_.basis[i]] * At(i, j);
      d_[j] = cost[j] - cbTj;
    }
  }

  const std::vector<double>& reduced_costs() const { return d_; }

  // Pivots basic artificials out of the basis where possible (end of
  // phase 1). Rows left with a basic artificial are redundant (all
  // structural entries ~ 0) and remain harmless.
  void DriveOutArtificials() {
    for (int i = 0; i < sf_.m; ++i) {
      if (!sf_.artificial[sf_.basis[i]]) continue;
      int pivot_col = -1;
      for (int j = 0; j < sf_.n_total; ++j) {
        if (sf_.artificial[j]) continue;
        if (std::fabs(At(i, j)) > options_.pivot_tolerance * 10) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) Pivot(i, pivot_col);
    }
  }

  // Dual values of the standard-form rows: y = c_B' B^{-1}. Column
  // identity_col[i] of the final tableau is B^{-1} e_i.
  std::vector<double> ComputeDuals(const std::vector<double>& cost) const {
    std::vector<double> y(sf_.m, 0.0);
    for (int i = 0; i < sf_.m; ++i) {
      double yi = 0.0;
      const int col = sf_.identity_col[i];
      for (int k = 0; k < sf_.m; ++k) yi += cost[sf_.basis[k]] * At(k, col);
      y[i] = yi;
    }
    return y;
  }

 private:
  int ChooseEntering(const std::vector<bool>& allow, bool bland) const {
    const double tol = options_.tolerance;
    if (bland) {
      for (int j = 0; j < sf_.n_total; ++j) {
        if (allow[j] && d_[j] < -tol) return j;
      }
      return -1;
    }
    int best = -1;
    double best_d = -tol;
    for (int j = 0; j < sf_.n_total; ++j) {
      if (allow[j] && d_[j] < best_d) {
        best_d = d_[j];
        best = j;
      }
    }
    return best;
  }

  // Minimum-ratio test. The previous tie-break picked the largest pivot
  // using float equality within 1e-12, so mathematically equal but
  // bitwise-different tableaus could leave through different rows across
  // platforms, breaking bit-for-bit policy-cache identity. The rule here is
  // deterministic and index-based: among near-tie ratios, keep the rows
  // whose pivot is within a coarse relative factor of the largest (numeric
  // stability without hair-trigger comparisons), then take the smallest
  // basic variable index. Under Bland's rule the pivot screen is dropped —
  // the anti-cycling theorem needs the smallest index among *all* min-ratio
  // rows, on the leaving side as well as the entering side.
  int ChooseLeavingRow(int entering, bool bland) const {
    const double tol = options_.pivot_tolerance;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < sf_.m; ++i) {
      const double a = At(i, entering);
      if (a <= tol) continue;
      const double ratio = Rhs(i) / a;
      if (ratio < best_ratio) best_ratio = ratio;
    }
    if (best_ratio == std::numeric_limits<double>::infinity()) return -1;
    const double cutoff = best_ratio + 1e-9 * (1.0 + best_ratio);
    double max_pivot = 0.0;
    for (int i = 0; i < sf_.m; ++i) {
      const double a = At(i, entering);
      if (a <= tol || Rhs(i) / a > cutoff) continue;
      max_pivot = std::max(max_pivot, a);
    }
    int best_row = -1;
    for (int i = 0; i < sf_.m; ++i) {
      const double a = At(i, entering);
      if (a <= tol || Rhs(i) / a > cutoff) continue;
      if (!bland && a < 0.1 * max_pivot) continue;
      if (best_row < 0 || sf_.basis[i] < sf_.basis[best_row]) best_row = i;
    }
    return best_row;
  }

  void Pivot(int pivot_row, int pivot_col) {
    const double pivot = At(pivot_row, pivot_col);
    const double inv = 1.0 / pivot;
    double* prow = &sf_.tableau[pivot_row * width_];
    for (int j = 0; j <= sf_.n_total; ++j) prow[j] *= inv;
    prow[pivot_col] = 1.0;  // exact
    for (int i = 0; i < sf_.m; ++i) {
      if (i == pivot_row) continue;
      double* row = &sf_.tableau[i * width_];
      const double factor = row[pivot_col];
      if (factor == 0.0) continue;
      for (int j = 0; j <= sf_.n_total; ++j) row[j] -= factor * prow[j];
      row[pivot_col] = 0.0;  // exact
    }
    // Update reduced costs.
    const double dfactor = d_[pivot_col];
    if (dfactor != 0.0) {
      for (int j = 0; j < sf_.n_total; ++j) d_[j] -= dfactor * prow[j];
      d_[pivot_col] = 0.0;
    }
    sf_.basis[pivot_row] = pivot_col;
  }

  StandardForm sf_;
  SimplexSolver::Options options_;
  int width_;
  std::vector<double> d_;
};

// Builds the dense standard form from the model.
StandardForm BuildStandardForm(const LpModel& model) {
  StandardForm sf;
  const int n_orig = model.num_variables();
  const int m_orig = model.num_constraints();

  // --- Variable substitutions -------------------------------------------
  sf.var_map.resize(n_orig);
  int next_col = 0;
  int num_upper_rows = 0;
  for (int j = 0; j < n_orig; ++j) {
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    VarMap& vm = sf.var_map[j];
    if (lb == -kInfinity && ub == kInfinity) {
      vm.kind = VarMap::kFreeSplit;
      vm.col = next_col++;
      vm.col_neg = next_col++;
    } else if (lb != -kInfinity) {
      vm.kind = VarMap::kShiftedFromLower;
      vm.offset = lb;
      vm.col = next_col++;
      if (ub != kInfinity) ++num_upper_rows;  // x' <= ub - lb
    } else {
      vm.kind = VarMap::kReflectedFromUpper;
      vm.offset = ub;
      vm.col = next_col++;
    }
  }
  sf.n_structural = next_col;
  sf.m = m_orig + num_upper_rows;
  sf.objective_constant = model.objective_constant();

  // Dense A (m x n_structural), b, senses in substituted space.
  std::vector<double> dense(static_cast<size_t>(sf.m) * sf.n_structural, 0.0);
  std::vector<double> b(sf.m, 0.0);
  std::vector<Sense> senses(sf.m, Sense::kLessEqual);
  sf.orig_row.assign(sf.m, -1);

  auto add_entry = [&](int row, int var, double coef) {
    const VarMap& vm = sf.var_map[var];
    switch (vm.kind) {
      case VarMap::kFreeSplit:
        dense[static_cast<size_t>(row) * sf.n_structural + vm.col] += coef;
        dense[static_cast<size_t>(row) * sf.n_structural + vm.col_neg] -= coef;
        break;
      case VarMap::kShiftedFromLower:
        dense[static_cast<size_t>(row) * sf.n_structural + vm.col] += coef;
        b[row] -= coef * vm.offset;
        break;
      case VarMap::kReflectedFromUpper:
        dense[static_cast<size_t>(row) * sf.n_structural + vm.col] -= coef;
        b[row] -= coef * vm.offset;
        break;
    }
  };

  for (int i = 0; i < m_orig; ++i) {
    b[i] = model.rhs(i);
    senses[i] = model.sense(i);
    sf.orig_row[i] = i;
    const auto& vars = model.row_vars(i);
    const auto& coeffs = model.row_coeffs(i);
    for (size_t k = 0; k < vars.size(); ++k) add_entry(i, vars[k], coeffs[k]);
  }
  // Upper-bound rows for doubly bounded variables.
  {
    int row = m_orig;
    for (int j = 0; j < n_orig; ++j) {
      const VarMap& vm = sf.var_map[j];
      if (vm.kind == VarMap::kShiftedFromLower &&
          model.upper_bound(j) != kInfinity) {
        dense[static_cast<size_t>(row) * sf.n_structural + vm.col] = 1.0;
        b[row] = model.upper_bound(j) - model.lower_bound(j);
        senses[row] = Sense::kLessEqual;
        ++row;
      }
    }
  }

  // Costs in substituted space (+ constant from offsets).
  std::vector<double> cost(sf.n_structural, 0.0);
  for (int j = 0; j < n_orig; ++j) {
    const VarMap& vm = sf.var_map[j];
    const double c = model.cost(j);
    switch (vm.kind) {
      case VarMap::kFreeSplit:
        cost[vm.col] += c;
        cost[vm.col_neg] -= c;
        break;
      case VarMap::kShiftedFromLower:
        cost[vm.col] += c;
        sf.objective_constant += c * vm.offset;
        break;
      case VarMap::kReflectedFromUpper:
        cost[vm.col] -= c;
        sf.objective_constant += c * vm.offset;
        break;
    }
  }

  // --- Row normalization and slack/artificial columns --------------------
  sf.row_flip.assign(sf.m, 1.0);
  for (int i = 0; i < sf.m; ++i) {
    if (b[i] < 0) {
      sf.row_flip[i] = -1.0;
      b[i] = -b[i];
      for (int j = 0; j < sf.n_structural; ++j) {
        dense[static_cast<size_t>(i) * sf.n_structural + j] *= -1.0;
      }
      if (senses[i] == Sense::kLessEqual) {
        senses[i] = Sense::kGreaterEqual;
      } else if (senses[i] == Sense::kGreaterEqual) {
        senses[i] = Sense::kLessEqual;
      }
    }
  }

  int num_slacks = 0;
  int num_artificials = 0;
  for (int i = 0; i < sf.m; ++i) {
    if (senses[i] != Sense::kEqual) ++num_slacks;
    if (senses[i] != Sense::kLessEqual) ++num_artificials;
  }
  sf.n_total = sf.n_structural + num_slacks + num_artificials;

  sf.tableau.assign(static_cast<size_t>(sf.m) * (sf.n_total + 1), 0.0);
  sf.cost.assign(sf.n_total, 0.0);
  std::copy(cost.begin(), cost.end(), sf.cost.begin());
  sf.artificial.assign(sf.n_total, false);
  sf.basis.assign(sf.m, -1);
  sf.identity_col.assign(sf.m, -1);

  const int width = sf.n_total + 1;
  for (int i = 0; i < sf.m; ++i) {
    for (int j = 0; j < sf.n_structural; ++j) {
      sf.tableau[static_cast<size_t>(i) * width + j] =
          dense[static_cast<size_t>(i) * sf.n_structural + j];
    }
    sf.tableau[static_cast<size_t>(i) * width + sf.n_total] = b[i];
  }

  int next = sf.n_structural;
  for (int i = 0; i < sf.m; ++i) {
    if (senses[i] == Sense::kLessEqual) {
      sf.tableau[static_cast<size_t>(i) * width + next] = 1.0;  // slack
      sf.basis[i] = next;
      sf.identity_col[i] = next;
      ++next;
    } else if (senses[i] == Sense::kGreaterEqual) {
      sf.tableau[static_cast<size_t>(i) * width + next] = -1.0;  // surplus
      ++next;
    }
  }
  for (int i = 0; i < sf.m; ++i) {
    if (senses[i] != Sense::kLessEqual) {
      sf.tableau[static_cast<size_t>(i) * width + next] = 1.0;  // artificial
      sf.artificial[next] = true;
      sf.basis[i] = next;
      sf.identity_col[i] = next;
      ++next;
    }
  }
  CHECK_EQ(next, sf.n_total);
  return sf;
}

}  // namespace

const char* SimplexBackendToString(SimplexBackend backend) {
  switch (backend) {
    case SimplexBackend::kDenseTableau:
      return "dense-tableau";
    case SimplexBackend::kRevised:
      return "revised";
  }
  return "UNKNOWN";
}

const char* SolveStatusToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "OPTIMAL";
    case SolveStatus::kInfeasible:
      return "INFEASIBLE";
    case SolveStatus::kUnbounded:
      return "UNBOUNDED";
    case SolveStatus::kIterationLimit:
      return "ITERATION_LIMIT";
  }
  return "UNKNOWN";
}

util::StatusOr<LpSolution> SimplexSolver::Solve(const LpModel& model,
                                                const Options& options) {
  if (options.backend == SimplexBackend::kRevised) {
    ASSIGN_OR_RETURN(RevisedSolution revised,
                     RevisedSimplex::Solve(model, options));
    return std::move(revised.solution);
  }
  RETURN_IF_ERROR(model.Validate());

  LpSolution solution;
  StandardForm sf = BuildStandardForm(model);
  const int m = sf.m;

  if (m == 0) {
    // No constraints: each variable sits at its cost-minimizing bound.
    solution.primal.assign(model.num_variables(), 0.0);
    double obj = model.objective_constant();
    for (int j = 0; j < model.num_variables(); ++j) {
      const double c = model.cost(j);
      double x;
      if (c > 0) {
        x = model.lower_bound(j);
      } else if (c < 0) {
        x = model.upper_bound(j);
      } else {
        // Zero cost: any feasible value works; take the one nearest zero
        // (max with a -inf lower bound yields 0, min with a +inf upper
        // keeps it, so the result is always finite).
        x = std::min(std::max(0.0, model.lower_bound(j)),
                     model.upper_bound(j));
      }
      if (!std::isfinite(x) && c != 0) {
        solution.status = SolveStatus::kUnbounded;
        return solution;
      }
      if (!std::isfinite(x)) x = 0;
      solution.primal[j] = x;
      obj += c * x;
    }
    solution.status = SolveStatus::kOptimal;
    solution.objective = obj;
    // With no constraints there are no duals, so a variable resting at a
    // bound keeps its full cost as its reduced cost — the same bounded-
    // variable convention the constrained path produces.
    solution.reduced_cost.assign(model.num_variables(), 0.0);
    for (int j = 0; j < model.num_variables(); ++j) {
      solution.reduced_cost[j] = model.cost(j);
    }
    return solution;
  }

  Tableau tableau(std::move(sf), options);
  const StandardForm& s = tableau.sf();

  // ---- Phase 1: minimize the sum of artificials -------------------------
  bool has_artificials = false;
  std::vector<double> phase1_cost(s.n_total, 0.0);
  for (int j = 0; j < s.n_total; ++j) {
    if (s.artificial[j]) {
      phase1_cost[j] = 1.0;
      has_artificials = true;
    }
  }
  std::vector<bool> allow_all(s.n_total, true);
  if (has_artificials) {
    const int iters =
        tableau.RunPhase(phase1_cost, allow_all, options.max_iterations);
    if (iters == -1) {
      // Phase-1 objective is bounded below by zero; an unbounded signal here
      // indicates numerical trouble.
      return util::InternalError("phase 1 reported unbounded");
    }
    if (iters == -2) {
      solution.status = SolveStatus::kIterationLimit;
      return solution;
    }
    solution.phase1_iterations = iters;
    if (tableau.CurrentObjective(phase1_cost) > options.tolerance * 100) {
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
    tableau.DriveOutArtificials();
  }

  // ---- Phase 2: original objective, artificials barred from entering ----
  std::vector<bool> allow(s.n_total, true);
  for (int j = 0; j < s.n_total; ++j) {
    if (s.artificial[j]) allow[j] = false;
  }
  const int iters = tableau.RunPhase(
      s.cost, allow, options.max_iterations - solution.phase1_iterations);
  if (iters == -1) {
    solution.status = SolveStatus::kUnbounded;
    return solution;
  }
  if (iters == -2) {
    solution.status = SolveStatus::kIterationLimit;
    return solution;
  }
  solution.phase2_iterations = iters;
  solution.status = SolveStatus::kOptimal;
  solution.objective =
      tableau.CurrentObjective(s.cost) + tableau.sf().objective_constant;

  // ---- Recover primal in original variable space ------------------------
  std::vector<double> x_std(s.n_total, 0.0);
  for (int i = 0; i < m; ++i) x_std[s.basis[i]] = tableau.Rhs(i);
  solution.primal.assign(model.num_variables(), 0.0);
  for (int j = 0; j < model.num_variables(); ++j) {
    const VarMap& vm = s.var_map[j];
    switch (vm.kind) {
      case VarMap::kFreeSplit:
        solution.primal[j] = x_std[vm.col] - x_std[vm.col_neg];
        break;
      case VarMap::kShiftedFromLower:
        solution.primal[j] = vm.offset + x_std[vm.col];
        break;
      case VarMap::kReflectedFromUpper:
        solution.primal[j] = vm.offset - x_std[vm.col];
        break;
    }
  }

  // ---- Duals for the original rows --------------------------------------
  const std::vector<double> y = tableau.ComputeDuals(s.cost);
  solution.dual.assign(model.num_constraints(), 0.0);
  for (int i = 0; i < m; ++i) {
    if (s.orig_row[i] >= 0) {
      solution.dual[s.orig_row[i]] = s.row_flip[i] * y[i];
    }
  }

  // ---- Reduced costs in original space -----------------------------------
  solution.reduced_cost.assign(model.num_variables(), 0.0);
  for (int j = 0; j < model.num_variables(); ++j) {
    solution.reduced_cost[j] = model.cost(j);
  }
  for (int i = 0; i < model.num_constraints(); ++i) {
    const double yi = solution.dual[i];
    if (yi == 0.0) continue;
    const auto& vars = model.row_vars(i);
    const auto& coeffs = model.row_coeffs(i);
    for (size_t k = 0; k < vars.size(); ++k) {
      solution.reduced_cost[vars[k]] -= yi * coeffs[k];
    }
  }
  return solution;
}

}  // namespace auditgame::lp
