#ifndef AUDIT_GAME_LP_REVISED_SIMPLEX_H_
#define AUDIT_GAME_LP_REVISED_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/statusor.h"

namespace auditgame::lp {

/// Where a column rests relative to the current basis. Nonbasic variables
/// sit at a finite bound (or at zero when free in both directions); basic
/// variables are solved for from the constraints.
enum class VarStatus : uint8_t {
  kAtLower,
  kAtUpper,
  kNonbasicFree,
  kBasic,
};

/// Snapshot of a simplex basis: one status per structural variable (in
/// model order) and one per constraint's logical (slack) variable.
///
/// Warm-start contract (see docs/DESIGN.md "LP layer"): a Basis taken from
/// a solved model M may be passed back to RevisedSimplex::Solve for a model
/// M' obtained from M by *appending variables and coefficients in existing
/// rows* (the column-generation pattern). Appended variables start nonbasic
/// at their lower bound when finite, else their upper bound, else at zero.
/// The constraint set must be unchanged; if the snapshot does not fit the
/// model, or the recorded basic set is singular, the solver silently falls
/// back to a cold start — a warm start never changes what is solved, only
/// where the search begins.
struct Basis {
  std::vector<VarStatus> structural;
  std::vector<VarStatus> logical;

  bool empty() const { return structural.empty() && logical.empty(); }
};

/// Result of a revised-simplex solve: the usual LpSolution plus the final
/// basis, which the caller can feed back after appending columns.
struct RevisedSolution {
  LpSolution solution;
  /// Valid when solution.status == kOptimal (empty otherwise).
  Basis basis;
  /// True when the warm-start basis was accepted and was still
  /// primal-feasible, so phase 1 performed zero pivots. False for cold
  /// starts, rejected snapshots, and accepted-but-infeasible snapshots
  /// (which pay a real phase 1).
  bool warm_started = false;
};

/// Bounded-variable revised simplex.
///
/// Unlike the dense tableau backend, variables live at their bounds
/// directly: doubly-bounded variables cost no extra rows, and free
/// variables are not split into differences of nonnegatives. The basis is
/// held as a dense LU factorization with product-form (eta) updates and
/// periodic refactorization, so a pivot costs O(m^2 + nnz) instead of a
/// full O(m*n) tableau sweep, and a warm re-solve after appending columns
/// reuses the previous basis instead of restarting phase 1.
///
/// Phase 1 minimizes the sum of bound violations of the basic variables
/// (composite objective, recomputed every iteration); when the starting
/// basis — the all-logical basis on a cold start, the snapshot on a warm
/// start — is already primal-feasible, phase 1 performs zero pivots.
class RevisedSimplex {
 public:
  /// Solves `model` with the given options (SimplexSolver::Options is
  /// shared between backends; `options.backend` is ignored here). When
  /// `warm_start` is non-null and compatible, the solve resumes from it.
  static util::StatusOr<RevisedSolution> Solve(const LpModel& model,
                                               const SimplexSolver::Options& options,
                                               const Basis* warm_start = nullptr);
  static util::StatusOr<RevisedSolution> Solve(const LpModel& model) {
    return Solve(model, SimplexSolver::Options(), nullptr);
  }

  /// Allocation-reusing form for re-solve loops (the CGGS master): `out`'s
  /// solution and basis buffers are cleared and refilled in place, so a
  /// caller that keeps one RevisedSolution across rounds solves without
  /// touching the heap once the buffers reach steady-state size. `out` may
  /// not alias `warm_start`'s basis.
  static util::Status SolveInto(const LpModel& model,
                                const SimplexSolver::Options& options,
                                const Basis* warm_start, RevisedSolution& out);
};

}  // namespace auditgame::lp

#endif  // AUDIT_GAME_LP_REVISED_SIMPLEX_H_
