#include "lp/lp_format.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace auditgame::lp {
namespace {

std::string FormatCoefficient(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

// LP-format identifiers cannot contain spaces or several symbols; sanitize
// defensively (names in this codebase are already plain).
std::string Sanitize(const std::string& name) {
  std::string result;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.';
    result += ok ? c : '_';
  }
  if (result.empty()) result = "v";
  return result;
}

void WriteLinearExpr(std::ostream& os, const LpModel& model,
                     const std::vector<int>& vars,
                     const std::vector<double>& coeffs) {
  bool first = true;
  for (size_t k = 0; k < vars.size(); ++k) {
    const double c = coeffs[k];
    if (c == 0.0) continue;
    if (first) {
      if (c < 0) os << "- ";
      first = false;
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    os << FormatCoefficient(std::fabs(c)) << " "
       << Sanitize(model.variable_name(vars[k]));
  }
  if (first) os << "0 " << Sanitize(model.variable_name(0));
}

}  // namespace

std::string WriteLpFormat(const LpModel& model) {
  std::ostringstream os;
  os << "\\ written by auditgame lp::WriteLpFormat\n";
  os << "Minimize\n obj: ";
  {
    std::vector<int> vars;
    std::vector<double> coeffs;
    for (int j = 0; j < model.num_variables(); ++j) {
      if (model.cost(j) != 0.0) {
        vars.push_back(j);
        coeffs.push_back(model.cost(j));
      }
    }
    if (vars.empty() && model.num_variables() > 0) {
      os << "0 " << Sanitize(model.variable_name(0));
    } else {
      WriteLinearExpr(os, model, vars, coeffs);
    }
  }
  os << "\nSubject To\n";
  for (int i = 0; i < model.num_constraints(); ++i) {
    os << " " << Sanitize(model.constraint_name(i)) << ": ";
    WriteLinearExpr(os, model, model.row_vars(i), model.row_coeffs(i));
    switch (model.sense(i)) {
      case Sense::kLessEqual:
        os << " <= ";
        break;
      case Sense::kGreaterEqual:
        os << " >= ";
        break;
      case Sense::kEqual:
        os << " = ";
        break;
    }
    os << FormatCoefficient(model.rhs(i)) << "\n";
  }
  os << "Bounds\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    const std::string name = Sanitize(model.variable_name(j));
    if (lb == -kInfinity && ub == kInfinity) {
      os << " " << name << " free\n";
    } else if (lb == 0.0 && ub == kInfinity) {
      // Default bound; omit.
    } else if (ub == kInfinity) {
      os << " " << name << " >= " << FormatCoefficient(lb) << "\n";
    } else if (lb == -kInfinity) {
      os << " " << name << " <= " << FormatCoefficient(ub) << "\n";
    } else {
      os << " " << FormatCoefficient(lb) << " <= " << name
         << " <= " << FormatCoefficient(ub) << "\n";
    }
  }
  os << "End\n";
  return os.str();
}

}  // namespace auditgame::lp
