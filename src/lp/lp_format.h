#ifndef AUDIT_GAME_LP_LP_FORMAT_H_
#define AUDIT_GAME_LP_LP_FORMAT_H_

#include <string>

#include "lp/model.h"

namespace auditgame::lp {

/// Renders a model in the CPLEX LP text format, so any external solver
/// (glpsol, lp_solve, CPLEX, Gurobi) can be used to cross-check the
/// built-in simplex on a concrete instance:
///
///   \ written by auditgame
///   Minimize
///    obj: 1 x0 + 2 x1
///   Subject To
///    c0: 1 x0 + 1 x1 >= 1
///   Bounds
///    x0 free
///   End
std::string WriteLpFormat(const LpModel& model);

}  // namespace auditgame::lp

#endif  // AUDIT_GAME_LP_LP_FORMAT_H_
