#include "lp/validate.h"

#include <cmath>
#include <string>

namespace auditgame::lp {

util::Status CheckPrimalFeasibility(const LpModel& model,
                                    const LpSolution& solution,
                                    const ValidationOptions& options) {
  if (solution.status != SolveStatus::kOptimal) {
    return util::FailedPreconditionError("solution is not optimal");
  }
  if (static_cast<int>(solution.primal.size()) != model.num_variables()) {
    return util::InternalError("primal size mismatch");
  }
  const double tol = options.feasibility_tolerance;
  for (int j = 0; j < model.num_variables(); ++j) {
    const double x = solution.primal[j];
    if (x < model.lower_bound(j) - tol || x > model.upper_bound(j) + tol) {
      return util::InternalError("variable " + model.variable_name(j) +
                                 " out of bounds: " + std::to_string(x));
    }
  }
  for (int i = 0; i < model.num_constraints(); ++i) {
    const double activity = model.RowActivity(i, solution.primal);
    const double rhs = model.rhs(i);
    bool ok = true;
    switch (model.sense(i)) {
      case Sense::kLessEqual:
        ok = activity <= rhs + tol;
        break;
      case Sense::kGreaterEqual:
        ok = activity >= rhs - tol;
        break;
      case Sense::kEqual:
        ok = std::fabs(activity - rhs) <= tol;
        break;
    }
    if (!ok) {
      return util::InternalError("constraint " + model.constraint_name(i) +
                                 " violated: activity=" +
                                 std::to_string(activity) +
                                 " rhs=" + std::to_string(rhs));
    }
  }
  return util::OkStatus();
}

util::Status CheckOptimality(const LpModel& model, const LpSolution& solution,
                             const ValidationOptions& options) {
  RETURN_IF_ERROR(CheckPrimalFeasibility(model, solution, options));
  const double tol = options.duality_gap_tolerance;

  // Dual sign conventions for minimization.
  for (int i = 0; i < model.num_constraints(); ++i) {
    const double y = solution.dual[i];
    if (model.sense(i) == Sense::kLessEqual && y > tol) {
      return util::InternalError("<= row " + model.constraint_name(i) +
                                 " has positive dual " + std::to_string(y));
    }
    if (model.sense(i) == Sense::kGreaterEqual && y < -tol) {
      return util::InternalError(">= row " + model.constraint_name(i) +
                                 " has negative dual " + std::to_string(y));
    }
  }

  // Lagrangian / strong-duality check:
  //   objective = y'b + sum_j rc_j * x_j^{bound}
  // where for each variable the reduced cost multiplier must be consistent
  // with the bound the variable rests at (rc >= 0 at lower, rc <= 0 at
  // upper, rc ~ 0 strictly between).
  double dual_obj = model.objective_constant();
  for (int i = 0; i < model.num_constraints(); ++i) {
    dual_obj += solution.dual[i] * model.rhs(i);
  }
  for (int j = 0; j < model.num_variables(); ++j) {
    const double rc = solution.reduced_cost[j];
    const double x = solution.primal[j];
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    const bool at_lower = std::isfinite(lb) && x <= lb + 1e-6;
    const bool at_upper = std::isfinite(ub) && x >= ub - 1e-6;
    if (!at_lower && !at_upper && std::fabs(rc) > 1e-5) {
      return util::InternalError("interior variable " +
                                 model.variable_name(j) +
                                 " has nonzero reduced cost " +
                                 std::to_string(rc));
    }
    if (at_lower && !at_upper && rc < -1e-5) {
      return util::InternalError("variable " + model.variable_name(j) +
                                 " at lower bound has negative reduced cost");
    }
    if (at_upper && !at_lower && rc > 1e-5) {
      return util::InternalError("variable " + model.variable_name(j) +
                                 " at upper bound has positive reduced cost");
    }
    if (at_lower) {
      dual_obj += rc * lb;
    } else if (at_upper) {
      dual_obj += rc * ub;
    }
  }
  if (std::fabs(dual_obj - solution.objective) >
      tol * (1.0 + std::fabs(solution.objective))) {
    return util::InternalError(
        "duality gap: primal=" + std::to_string(solution.objective) +
        " dual=" + std::to_string(dual_obj));
  }
  return util::OkStatus();
}

}  // namespace auditgame::lp
