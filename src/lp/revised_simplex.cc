#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace auditgame::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The solver works on the model columns directly plus one logical (slack)
// column per row, turning every row into an equality:
//
//   a_i'x + s_i = b_i,   s_i in [0, inf)   for <= rows
//                        s_i in (-inf, 0]  for >= rows
//                        s_i = 0           for  = rows
//
// so a basis is any nonsingular m-subset of the n_structural + m columns
// and every nonbasic column rests at a bound (or at zero when free).
class Engine {
 public:
  Engine(const LpModel& model, const SimplexSolver::Options& options)
      : model_(model),
        options_(options),
        ns_(model.num_variables()),
        m_(model.num_constraints()),
        n_(ns_ + m_) {
    cols_.resize(ns_);
    for (int i = 0; i < m_; ++i) {
      const auto& vars = model.row_vars(i);
      const auto& coeffs = model.row_coeffs(i);
      for (size_t k = 0; k < vars.size(); ++k) {
        cols_[vars[k]].emplace_back(i, coeffs[k]);
      }
    }
    lower_.resize(n_);
    upper_.resize(n_);
    cost_.assign(n_, 0.0);
    for (int j = 0; j < ns_; ++j) {
      lower_[j] = model.lower_bound(j);
      upper_[j] = model.upper_bound(j);
      cost_[j] = model.cost(j);
    }
    b_.resize(m_);
    for (int i = 0; i < m_; ++i) {
      b_[i] = model.rhs(i);
      const int col = ns_ + i;
      switch (model.sense(i)) {
        case Sense::kLessEqual:
          lower_[col] = 0.0;
          upper_[col] = kInf;
          break;
        case Sense::kGreaterEqual:
          lower_[col] = -kInf;
          upper_[col] = 0.0;
          break;
        case Sense::kEqual:
          lower_[col] = 0.0;
          upper_[col] = 0.0;
          break;
      }
    }
  }

  util::StatusOr<RevisedSolution> Run(const Basis* warm_start) {
    RevisedSolution result;
    bool installed = InstallBasis(warm_start);
    if (!installed) InstallColdBasis();
    if (installed && !Factorize()) {
      // A recorded basic set can be singular after the model changed under
      // it; the cold all-logical basis is the identity and never is.
      InstallColdBasis();
      installed = false;
    }
    if (!installed) CHECK(Factorize());
    ComputeBasicValues();

    LpSolution& solution = result.solution;
    int used = 0;

    const PhaseOutcome phase1 = RunPhase(/*phase1=*/true,
                                         options_.max_iterations, &used);
    solution.phase1_iterations = used;
    // "Warm started" is a statement about work actually saved: the
    // snapshot was accepted *and* was still primal-feasible, so phase 1
    // performed no pivots.
    result.warm_started = installed && used == 0;
    switch (phase1) {
      case PhaseOutcome::kDone:
        break;
      case PhaseOutcome::kInfeasible:
        solution.status = SolveStatus::kInfeasible;
        return result;
      case PhaseOutcome::kIterationLimit:
        solution.status = SolveStatus::kIterationLimit;
        return result;
      case PhaseOutcome::kUnbounded:
        return util::InternalError(
            "revised simplex: phase 1 reported an unbounded direction");
      case PhaseOutcome::kNumericalFailure:
        return util::InternalError(
            "revised simplex: singular basis during phase 1");
    }
    ComputeBasicValues();

    int used2 = 0;
    const PhaseOutcome phase2 =
        RunPhase(/*phase1=*/false, options_.max_iterations - used, &used2);
    solution.phase2_iterations = used2;
    switch (phase2) {
      case PhaseOutcome::kDone:
        break;
      case PhaseOutcome::kUnbounded:
        solution.status = SolveStatus::kUnbounded;
        return result;
      case PhaseOutcome::kIterationLimit:
        solution.status = SolveStatus::kIterationLimit;
        return result;
      case PhaseOutcome::kInfeasible:
        solution.status = SolveStatus::kInfeasible;
        return result;
      case PhaseOutcome::kNumericalFailure:
        return util::InternalError(
            "revised simplex: singular basis during phase 2");
    }
    ComputeBasicValues();
    ExtractSolution(result);
    return result;
  }

 private:
  enum class PhaseOutcome {
    kDone,            // phase 1: feasible; phase 2: optimal
    kInfeasible,      // phase 1 only
    kUnbounded,
    kIterationLimit,
    kNumericalFailure,
  };

  struct Eta {
    int r;                  // basis position replaced
    std::vector<double> d;  // B_old^{-1} a_entering (position-indexed)
  };

  double FeasTol(double bound) const {
    return options_.tolerance * (1.0 + std::fabs(bound));
  }

  // ---- Basis installation ----------------------------------------------

  void InstallColdBasis() {
    status_.assign(n_, VarStatus::kAtLower);
    for (int j = 0; j < ns_; ++j) status_[j] = DefaultNonbasicStatus(j);
    basic_.resize(m_);
    for (int i = 0; i < m_; ++i) {
      basic_[i] = ns_ + i;
      status_[ns_ + i] = VarStatus::kBasic;
    }
  }

  VarStatus DefaultNonbasicStatus(int col) const {
    if (lower_[col] != -kInf) return VarStatus::kAtLower;
    if (upper_[col] != kInf) return VarStatus::kAtUpper;
    return VarStatus::kNonbasicFree;
  }

  // Validates and installs a warm-start basis; returns false (leaving the
  // engine for a cold start) when the snapshot does not fit the model.
  bool InstallBasis(const Basis* warm) {
    if (warm == nullptr || warm->empty()) return false;
    if (static_cast<int>(warm->logical.size()) != m_ ||
        static_cast<int>(warm->structural.size()) > ns_) {
      return false;
    }
    status_.assign(n_, VarStatus::kAtLower);
    std::vector<int> basics;
    for (int j = 0; j < n_; ++j) {
      VarStatus s;
      if (j < ns_) {
        s = static_cast<size_t>(j) < warm->structural.size()
                ? warm->structural[j]
                : DefaultNonbasicStatus(j);
      } else {
        s = warm->logical[j - ns_];
      }
      if (s == VarStatus::kBasic) {
        basics.push_back(j);
      } else {
        // Repair statuses pointing at bounds the column does not have.
        if (s == VarStatus::kAtLower && lower_[j] == -kInf) {
          s = DefaultNonbasicStatus(j);
        } else if (s == VarStatus::kAtUpper && upper_[j] == kInf) {
          s = DefaultNonbasicStatus(j);
        } else if (s == VarStatus::kNonbasicFree &&
                   (lower_[j] != -kInf || upper_[j] != kInf)) {
          s = DefaultNonbasicStatus(j);
        }
      }
      status_[j] = s;
    }
    if (static_cast<int>(basics.size()) != m_) return false;
    basic_ = std::move(basics);
    return true;
  }

  // ---- Factorization: dense LU with partial pivoting + eta file --------

  double& Lu(int i, int j) { return lu_[static_cast<size_t>(i) * m_ + j]; }
  double Lu(int i, int j) const {
    return lu_[static_cast<size_t>(i) * m_ + j];
  }

  bool Factorize() {
    etas_.clear();
    lu_.assign(static_cast<size_t>(m_) * m_, 0.0);
    for (int k = 0; k < m_; ++k) {
      const int col = basic_[k];
      if (col < ns_) {
        for (const auto& [row, value] : cols_[col]) Lu(row, k) += value;
      } else {
        Lu(col - ns_, k) += 1.0;
      }
    }
    perm_.resize(m_);
    for (int i = 0; i < m_; ++i) perm_[i] = i;
    for (int k = 0; k < m_; ++k) {
      int p = k;
      double best = std::fabs(Lu(k, k));
      for (int i = k + 1; i < m_; ++i) {
        const double a = std::fabs(Lu(i, k));
        if (a > best) {
          best = a;
          p = i;
        }
      }
      if (best < options_.pivot_tolerance) return false;  // singular
      if (p != k) {
        for (int j = 0; j < m_; ++j) std::swap(Lu(k, j), Lu(p, j));
        std::swap(perm_[k], perm_[p]);
      }
      const double inv = 1.0 / Lu(k, k);
      for (int i = k + 1; i < m_; ++i) {
        const double factor = Lu(i, k) * inv;
        if (factor == 0.0) continue;
        Lu(i, k) = factor;
        for (int j = k + 1; j < m_; ++j) Lu(i, j) -= factor * Lu(k, j);
      }
    }
    return true;
  }

  // Solves B w = v. Input indexed by row, output by basis position.
  std::vector<double> Ftran(const std::vector<double>& v) const {
    std::vector<double> w(m_);
    for (int k = 0; k < m_; ++k) w[k] = v[perm_[k]];
    for (int k = 1; k < m_; ++k) {
      double sum = w[k];
      for (int j = 0; j < k; ++j) sum -= Lu(k, j) * w[j];
      w[k] = sum;
    }
    for (int k = m_ - 1; k >= 0; --k) {
      double sum = w[k];
      for (int j = k + 1; j < m_; ++j) sum -= Lu(k, j) * w[j];
      w[k] = sum / Lu(k, k);
    }
    for (const Eta& eta : etas_) {
      const double t = w[eta.r] / eta.d[eta.r];
      for (int i = 0; i < m_; ++i) w[i] -= eta.d[i] * t;
      w[eta.r] = t;
    }
    return w;
  }

  // Solves B'y = c. Input indexed by basis position, output by row.
  std::vector<double> Btran(std::vector<double> c) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      const Eta& eta = *it;
      double dot = 0.0;
      for (int i = 0; i < m_; ++i) dot += c[i] * eta.d[i];
      c[eta.r] = (c[eta.r] - (dot - c[eta.r] * eta.d[eta.r])) / eta.d[eta.r];
    }
    std::vector<double> a(m_);
    for (int k = 0; k < m_; ++k) {
      double sum = c[k];
      for (int j = 0; j < k; ++j) sum -= Lu(j, k) * a[j];
      a[k] = sum / Lu(k, k);
    }
    for (int k = m_ - 1; k >= 0; --k) {
      double sum = a[k];
      for (int j = k + 1; j < m_; ++j) sum -= Lu(j, k) * a[j];
      a[k] = sum;
    }
    std::vector<double> y(m_);
    for (int k = 0; k < m_; ++k) y[perm_[k]] = a[k];
    return y;
  }

  // Column `col` of the constraint matrix, densified by row.
  std::vector<double> DenseColumn(int col) const {
    std::vector<double> a(m_, 0.0);
    if (col < ns_) {
      for (const auto& [row, value] : cols_[col]) a[row] += value;
    } else {
      a[col - ns_] = 1.0;
    }
    return a;
  }

  double DotColumn(const std::vector<double>& y, int col) const {
    if (col >= ns_) return y[col - ns_];
    double dot = 0.0;
    for (const auto& [row, value] : cols_[col]) dot += y[row] * value;
    return dot;
  }

  double NonbasicValue(int col) const {
    switch (status_[col]) {
      case VarStatus::kAtLower:
        return lower_[col];
      case VarStatus::kAtUpper:
        return upper_[col];
      default:
        return 0.0;
    }
  }

  // Recomputes x_B = B^{-1}(b - N x_N) from the factorization, clearing
  // the drift of the incremental updates.
  void ComputeBasicValues() {
    x_.assign(n_, 0.0);
    std::vector<double> v = b_;
    for (int j = 0; j < n_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double xj = NonbasicValue(j);
      x_[j] = xj;
      if (xj == 0.0) continue;
      if (j < ns_) {
        for (const auto& [row, value] : cols_[j]) v[row] -= value * xj;
      } else {
        v[j - ns_] -= xj;
      }
    }
    const std::vector<double> xb = Ftran(v);
    for (int k = 0; k < m_; ++k) x_[basic_[k]] = xb[k];
  }

  // Sum of bound violations over the basic variables (the phase-1
  // objective) and, via `cb`, its gradient on the basis.
  double Infeasibility(std::vector<double>* cb) const {
    double total = 0.0;
    if (cb != nullptr) cb->assign(m_, 0.0);
    for (int k = 0; k < m_; ++k) {
      const int col = basic_[k];
      const double x = x_[col];
      if (x < lower_[col] - FeasTol(lower_[col])) {
        total += lower_[col] - x;
        if (cb != nullptr) (*cb)[k] = -1.0;
      } else if (x > upper_[col] + FeasTol(upper_[col])) {
        total += x - upper_[col];
        if (cb != nullptr) (*cb)[k] = 1.0;
      }
    }
    return total;
  }

  // ---- The simplex loop -------------------------------------------------

  PhaseOutcome RunPhase(bool phase1, int iteration_budget, int* used) {
    *used = 0;
    int stall = 0;
    bool bland = false;
    double last_objective = kInf;
    std::vector<double> cb(m_);
    for (;;) {
      double objective;
      if (phase1) {
        objective = Infeasibility(&cb);
        if (objective <= options_.tolerance * 10) return PhaseOutcome::kDone;
      } else {
        for (int k = 0; k < m_; ++k) cb[k] = cost_[basic_[k]];
        objective = 0.0;
        for (int j = 0; j < n_; ++j) objective += cost_[j] * x_[j];
      }
      if (objective < last_objective - 1e-12) {
        last_objective = objective;
        stall = 0;
        bland = false;
      } else if (!bland && ++stall > 2 * (m_ + 50)) {
        bland = true;  // Bland's rule escapes degenerate cycling
      }

      const std::vector<double> y = Btran(cb);
      int entering = -1;
      double entering_dir = 0.0;
      double best_violation = options_.tolerance;
      for (int j = 0; j < n_; ++j) {
        if (status_[j] == VarStatus::kBasic) continue;
        if (upper_[j] - lower_[j] <= 0.0) continue;  // fixed, cannot move
        const double phase_cost = phase1 ? 0.0 : cost_[j];
        const double d = phase_cost - DotColumn(y, j);
        double violation = 0.0;
        double dir = 0.0;
        if (status_[j] == VarStatus::kAtLower && d < -options_.tolerance) {
          violation = -d;
          dir = 1.0;
        } else if (status_[j] == VarStatus::kAtUpper &&
                   d > options_.tolerance) {
          violation = d;
          dir = -1.0;
        } else if (status_[j] == VarStatus::kNonbasicFree &&
                   std::fabs(d) > options_.tolerance) {
          violation = std::fabs(d);
          dir = d < 0 ? 1.0 : -1.0;
        } else {
          continue;
        }
        if (bland) {
          entering = j;
          entering_dir = dir;
          break;
        }
        if (violation > best_violation) {
          best_violation = violation;
          entering = j;
          entering_dir = dir;
        }
      }
      if (entering < 0) {
        // No improving column: this basis is as good as it gets for the
        // phase. For phase 1 that means infeasible iff violations remain.
        if (phase1 && Infeasibility(nullptr) > options_.tolerance * 10) {
          return PhaseOutcome::kInfeasible;
        }
        return PhaseOutcome::kDone;
      }
      // The already-optimal case is handled above, so hitting the budget
      // here means real work remains (see the dense RunPhase for the same
      // contract).
      if (*used >= iteration_budget) return PhaseOutcome::kIterationLimit;

      const std::vector<double> w = Ftran(DenseColumn(entering));
      const PhaseOutcome step =
          Step(phase1, entering, entering_dir, w, bland);
      if (step != PhaseOutcome::kDone) return step;
      ++*used;
    }
  }

  // One ratio test + update (bound flip or basis change). Returns kDone on
  // a completed step, or a terminal outcome.
  PhaseOutcome Step(bool phase1, int entering, double dir,
                    const std::vector<double>& w, bool bland) {
    constexpr double kTieTol = 1e-9;
    const double flip_t = upper_[entering] - lower_[entering];  // inf ok

    // Pass 1: the tightest blocking ratio.
    double best_t = kInf;
    for (int k = 0; k < m_; ++k) {
      const double t = BlockingRatio(phase1, k, -dir * w[k], nullptr);
      if (t < best_t) best_t = t;
    }

    if (flip_t <= best_t) {
      if (flip_t == kInf) return PhaseOutcome::kUnbounded;
      // Bound flip: the entering variable traverses to its opposite bound
      // without any basis change.
      for (int k = 0; k < m_; ++k) x_[basic_[k]] += -dir * w[k] * flip_t;
      status_[entering] = status_[entering] == VarStatus::kAtLower
                              ? VarStatus::kAtUpper
                              : VarStatus::kAtLower;
      x_[entering] = NonbasicValue(entering);
      return PhaseOutcome::kDone;
    }

    // Pass 2: deterministic leaving choice among near-ties — the largest
    // pivot magnitude for stability, then the smallest basic column index;
    // under Bland's rule, the smallest index alone.
    int leaving = -1;
    bool to_upper = false;
    double best_pivot = -1.0;
    for (int k = 0; k < m_; ++k) {
      bool hits_upper = false;
      const double t = BlockingRatio(phase1, k, -dir * w[k], &hits_upper);
      if (t > best_t + kTieTol) continue;
      const double pivot = std::fabs(w[k]);
      const bool better =
          leaving < 0 ||
          (bland ? basic_[k] < basic_[leaving]
                 : (pivot > best_pivot + kTieTol ||
                    (pivot > best_pivot - kTieTol &&
                     basic_[k] < basic_[leaving])));
      if (better) {
        leaving = k;
        to_upper = hits_upper;
        best_pivot = pivot;
      }
    }
    CHECK(leaving >= 0);

    // Update primal values along the direction, then swap the basis.
    const double t = std::max(0.0, best_t);
    for (int k = 0; k < m_; ++k) x_[basic_[k]] += -dir * w[k] * t;
    x_[entering] = NonbasicValue(entering) + dir * t;
    const int leaving_col = basic_[leaving];
    status_[leaving_col] = to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    x_[leaving_col] = NonbasicValue(leaving_col);
    status_[entering] = VarStatus::kBasic;
    basic_[leaving] = entering;
    etas_.push_back(Eta{leaving, w});
    if (static_cast<int>(etas_.size()) >=
        std::max(1, options_.refactor_interval)) {
      if (!Factorize()) return PhaseOutcome::kNumericalFailure;
      ComputeBasicValues();
    }
    return PhaseOutcome::kDone;
  }

  // Ratio at which basis position k blocks a move with per-unit step
  // `delta`, or +inf. In phase 1 a basic variable outside its bounds
  // blocks only at the bound it violates (reaching it restores
  // feasibility); moving it further out never blocks — the composite
  // objective accounts for the growing violation.
  double BlockingRatio(bool phase1, int k, double delta,
                       bool* hits_upper) const {
    if (std::fabs(delta) <= options_.pivot_tolerance) return kInf;
    const int col = basic_[k];
    const double x = x_[col];
    const double l = lower_[col];
    const double u = upper_[col];
    double bound;
    bool upper;
    if (phase1 && x < l - FeasTol(l)) {
      if (delta <= 0) return kInf;
      bound = l;
      upper = false;
    } else if (phase1 && x > u + FeasTol(u)) {
      if (delta >= 0) return kInf;
      bound = u;
      upper = true;
    } else if (delta > 0) {
      if (u == kInf) return kInf;
      bound = u;
      upper = true;
    } else {
      if (l == -kInf) return kInf;
      bound = l;
      upper = false;
    }
    if (hits_upper != nullptr) *hits_upper = upper;
    return std::max(0.0, (bound - x) / delta);
  }

  // ---- Solution extraction ---------------------------------------------

  void ExtractSolution(RevisedSolution& result) const {
    LpSolution& solution = result.solution;
    solution.status = SolveStatus::kOptimal;
    solution.primal.assign(ns_, 0.0);
    double objective = model_.objective_constant();
    for (int j = 0; j < ns_; ++j) {
      solution.primal[j] = x_[j];
      objective += cost_[j] * x_[j];
    }
    solution.objective = objective;

    std::vector<double> cb(m_);
    for (int k = 0; k < m_; ++k) cb[k] = cost_[basic_[k]];
    const std::vector<double> y = Btran(std::move(cb));
    solution.dual = y;
    solution.reduced_cost.assign(ns_, 0.0);
    for (int j = 0; j < ns_; ++j) {
      solution.reduced_cost[j] = cost_[j] - DotColumn(y, j);
    }

    result.basis.structural.assign(status_.begin(), status_.begin() + ns_);
    result.basis.logical.assign(status_.begin() + ns_, status_.end());
  }

  const LpModel& model_;
  const SimplexSolver::Options& options_;
  const int ns_;  // structural columns
  const int m_;   // rows
  const int n_;   // structural + logical columns

  std::vector<std::vector<std::pair<int, double>>> cols_;
  std::vector<double> lower_, upper_, cost_, b_;

  std::vector<VarStatus> status_;  // per column
  std::vector<int> basic_;         // basis position -> column
  std::vector<double> x_;          // per column

  std::vector<double> lu_;  // packed L (unit lower) / U factors of B
  std::vector<int> perm_;   // row permutation of the factorization
  std::vector<Eta> etas_;
};

// No constraints: every variable sits at its cost-minimizing bound. Kept in
// sync with the dense backend's m == 0 path, including the convention that
// a variable resting at a bound keeps its cost as its reduced cost.
util::StatusOr<RevisedSolution> SolveUnconstrained(const LpModel& model) {
  RevisedSolution result;
  LpSolution& solution = result.solution;
  solution.primal.assign(model.num_variables(), 0.0);
  solution.reduced_cost.assign(model.num_variables(), 0.0);
  result.basis.structural.assign(model.num_variables(), VarStatus::kAtLower);
  double objective = model.objective_constant();
  for (int j = 0; j < model.num_variables(); ++j) {
    const double c = model.cost(j);
    double x;
    VarStatus status = VarStatus::kAtLower;
    if (c > 0) {
      x = model.lower_bound(j);
    } else if (c < 0) {
      x = model.upper_bound(j);
      status = VarStatus::kAtUpper;
    } else {
      // Zero cost: the feasible value nearest zero, always finite (max
      // with a -inf lower bound yields 0, min with a +inf upper keeps it).
      x = std::min(std::max(0.0, model.lower_bound(j)),
                   model.upper_bound(j));
      if (x == model.upper_bound(j)) {
        status = VarStatus::kAtUpper;
      } else if (x != model.lower_bound(j)) {
        status = VarStatus::kNonbasicFree;
      }
    }
    if (!std::isfinite(x)) {
      solution.status = SolveStatus::kUnbounded;
      result.basis = Basis();
      return result;
    }
    solution.primal[j] = x;
    solution.reduced_cost[j] = c;
    result.basis.structural[j] = status;
    objective += c * x;
  }
  solution.status = SolveStatus::kOptimal;
  solution.objective = objective;
  return result;
}

}  // namespace

util::StatusOr<RevisedSolution> RevisedSimplex::Solve(
    const LpModel& model, const SimplexSolver::Options& options,
    const Basis* warm_start) {
  RETURN_IF_ERROR(model.Validate());
  if (model.num_constraints() == 0) return SolveUnconstrained(model);
  Engine engine(model, options);
  return engine.Run(warm_start);
}

}  // namespace auditgame::lp
