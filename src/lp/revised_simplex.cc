#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "math/kernels.h"
#include "util/arena.h"
#include "util/logging.h"

namespace auditgame::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The solver works on the model columns directly plus one logical (slack)
// column per row, turning every row into an equality:
//
//   a_i'x + s_i = b_i,   s_i in [0, inf)   for <= rows
//                        s_i in (-inf, 0]  for >= rows
//                        s_i = 0           for  = rows
//
// so a basis is any nonsingular m-subset of the n_structural + m columns
// and every nonbasic column rests at a bound (or at zero when free).
//
// Memory: every engine buffer — bounds, costs, the LU factors and their
// transpose, the eta file's d-vectors, all Ftran/Btran scratch — is drawn
// from one arena (the caller's WorkspacePool slot 0 when provided, a local
// arena otherwise) under a single RAII scope, so a caller that solves in a
// loop (the incremental master LP) pays heap allocations only on its first
// solve. Dense inner loops (forward/backward substitution, elimination,
// reduced-cost dots) run on math/kernels, so they vectorize while staying
// bit-identical across kernel backends; Btran substitutes against a
// transposed copy of the LU factors refreshed at each factorization, which
// turns its column-strided traversal into contiguous kernel dots.
class Engine {
 public:
  Engine(const LpModel& model, const SimplexSolver::Options& options)
      : model_(model),
        options_(options),
        ns_(model.num_variables()),
        m_(model.num_constraints()),
        n_(ns_ + m_),
        owned_arena_(options.workspace == nullptr
                         ? std::make_unique<util::Arena>()
                         : nullptr),
        arena_(options.workspace != nullptr ? options.workspace->Get(0)
                                            : *owned_arena_),
        scope_(arena_),
        col_starts_(arena_),
        col_entries_(arena_),
        lower_(arena_),
        upper_(arena_),
        cost_(arena_),
        b_(arena_),
        status_(arena_),
        basic_(arena_),
        x_(arena_),
        lu_(arena_),
        lut_(arena_),
        perm_(arena_),
        etas_(arena_),
        work_v_(arena_),
        work_w_(arena_),
        cb_(arena_),
        y_(arena_),
        w_(arena_),
        col_(arena_) {
    // Structural columns in CSR-like form, entries ordered by row within
    // each column (the build traverses rows in order).
    col_starts_.assign(static_cast<size_t>(ns_) + 1, 0);
    for (int i = 0; i < m_; ++i) {
      for (int var : model.row_vars(i)) {
        ++col_starts_[static_cast<size_t>(var) + 1];
      }
    }
    for (int j = 0; j < ns_; ++j) {
      col_starts_[static_cast<size_t>(j) + 1] +=
          col_starts_[static_cast<size_t>(j)];
    }
    col_entries_.resize(col_starts_[static_cast<size_t>(ns_)]);
    {
      util::ArenaScope cursor_scope(arena_);
      int* cursor = arena_.AllocateArray<int>(static_cast<size_t>(ns_));
      for (int j = 0; j < ns_; ++j) cursor[j] = col_starts_[j];
      for (int i = 0; i < m_; ++i) {
        const auto& vars = model.row_vars(i);
        const auto& coeffs = model.row_coeffs(i);
        for (size_t k = 0; k < vars.size(); ++k) {
          col_entries_[static_cast<size_t>(cursor[vars[k]]++)] = {i, coeffs[k]};
        }
      }
    }
    lower_.resize(static_cast<size_t>(n_));
    upper_.resize(static_cast<size_t>(n_));
    cost_.assign(static_cast<size_t>(n_), 0.0);
    for (int j = 0; j < ns_; ++j) {
      lower_[j] = model.lower_bound(j);
      upper_[j] = model.upper_bound(j);
      cost_[j] = model.cost(j);
    }
    b_.resize(static_cast<size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      b_[i] = model.rhs(i);
      const int col = ns_ + i;
      switch (model.sense(i)) {
        case Sense::kLessEqual:
          lower_[col] = 0.0;
          upper_[col] = kInf;
          break;
        case Sense::kGreaterEqual:
          lower_[col] = -kInf;
          upper_[col] = 0.0;
          break;
        case Sense::kEqual:
          lower_[col] = 0.0;
          upper_[col] = 0.0;
          break;
      }
    }
    // Size the solve scratch once; nothing below reallocates mid-solve.
    const size_t ms = static_cast<size_t>(m_);
    x_.assign(static_cast<size_t>(n_), 0.0);
    work_v_.reserve(ms);
    work_w_.reserve(ms);
    cb_.reserve(ms);
    y_.reserve(ms);
    w_.reserve(ms);
    col_.reserve(ms);
    etas_.reserve(static_cast<size_t>(std::max(1, options_.refactor_interval)));
  }

  util::Status Run(const Basis* warm_start, RevisedSolution& result) {
    // Reused buffers: clear (keeping capacity) so every early-return path
    // leaves the same state a fresh RevisedSolution would have.
    result.solution.objective = 0.0;
    result.solution.primal.clear();
    result.solution.dual.clear();
    result.solution.reduced_cost.clear();
    result.solution.phase1_iterations = 0;
    result.solution.phase2_iterations = 0;
    result.solution.status = SolveStatus::kIterationLimit;
    result.basis.structural.clear();
    result.basis.logical.clear();
    result.warm_started = false;
    bool installed = InstallBasis(warm_start);
    if (!installed) InstallColdBasis();
    if (installed && !Factorize()) {
      // A recorded basic set can be singular after the model changed under
      // it; the cold all-logical basis is the identity and never is.
      InstallColdBasis();
      installed = false;
    }
    if (!installed) CHECK(Factorize());
    ComputeBasicValues();

    LpSolution& solution = result.solution;
    int used = 0;

    const PhaseOutcome phase1 = RunPhase(/*phase1=*/true,
                                         options_.max_iterations, &used);
    solution.phase1_iterations = used;
    // "Warm started" is a statement about work actually saved: the
    // snapshot was accepted *and* was still primal-feasible, so phase 1
    // performed no pivots.
    result.warm_started = installed && used == 0;
    switch (phase1) {
      case PhaseOutcome::kDone:
        break;
      case PhaseOutcome::kInfeasible:
        solution.status = SolveStatus::kInfeasible;
        return util::OkStatus();
      case PhaseOutcome::kIterationLimit:
        solution.status = SolveStatus::kIterationLimit;
        return util::OkStatus();
      case PhaseOutcome::kUnbounded:
        return util::InternalError(
            "revised simplex: phase 1 reported an unbounded direction");
      case PhaseOutcome::kNumericalFailure:
        return util::InternalError(
            "revised simplex: singular basis during phase 1");
    }
    ComputeBasicValues();

    int used2 = 0;
    const PhaseOutcome phase2 =
        RunPhase(/*phase1=*/false, options_.max_iterations - used, &used2);
    solution.phase2_iterations = used2;
    switch (phase2) {
      case PhaseOutcome::kDone:
        break;
      case PhaseOutcome::kUnbounded:
        solution.status = SolveStatus::kUnbounded;
        return util::OkStatus();
      case PhaseOutcome::kIterationLimit:
        solution.status = SolveStatus::kIterationLimit;
        return util::OkStatus();
      case PhaseOutcome::kInfeasible:
        solution.status = SolveStatus::kInfeasible;
        return util::OkStatus();
      case PhaseOutcome::kNumericalFailure:
        return util::InternalError(
            "revised simplex: singular basis during phase 2");
    }
    ComputeBasicValues();
    ExtractSolution(result);
    return util::OkStatus();
  }

 private:
  enum class PhaseOutcome {
    kDone,            // phase 1: feasible; phase 2: optimal
    kInfeasible,      // phase 1 only
    kUnbounded,
    kIterationLimit,
    kNumericalFailure,
  };

  struct Eta {
    int r;      // basis position replaced
    double* d;  // B_old^{-1} a_entering (position-indexed), arena-owned
  };

  struct ColEntry {
    int row;
    double value;
  };

  double FeasTol(double bound) const {
    return options_.tolerance * (1.0 + std::fabs(bound));
  }

  // ---- Basis installation ----------------------------------------------

  void InstallColdBasis() {
    status_.assign(static_cast<size_t>(n_), VarStatus::kAtLower);
    for (int j = 0; j < ns_; ++j) status_[j] = DefaultNonbasicStatus(j);
    basic_.resize(static_cast<size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      basic_[i] = ns_ + i;
      status_[ns_ + i] = VarStatus::kBasic;
    }
  }

  VarStatus DefaultNonbasicStatus(int col) const {
    if (lower_[col] != -kInf) return VarStatus::kAtLower;
    if (upper_[col] != kInf) return VarStatus::kAtUpper;
    return VarStatus::kNonbasicFree;
  }

  // Validates and installs a warm-start basis; returns false (leaving the
  // engine for a cold start) when the snapshot does not fit the model.
  bool InstallBasis(const Basis* warm) {
    if (warm == nullptr || warm->empty()) return false;
    if (static_cast<int>(warm->logical.size()) != m_ ||
        static_cast<int>(warm->structural.size()) > ns_) {
      return false;
    }
    status_.assign(static_cast<size_t>(n_), VarStatus::kAtLower);
    basic_.clear();
    for (int j = 0; j < n_; ++j) {
      VarStatus s;
      if (j < ns_) {
        s = static_cast<size_t>(j) < warm->structural.size()
                ? warm->structural[j]
                : DefaultNonbasicStatus(j);
      } else {
        s = warm->logical[j - ns_];
      }
      if (s == VarStatus::kBasic) {
        basic_.push_back(j);
      } else {
        // Repair statuses pointing at bounds the column does not have.
        if (s == VarStatus::kAtLower && lower_[j] == -kInf) {
          s = DefaultNonbasicStatus(j);
        } else if (s == VarStatus::kAtUpper && upper_[j] == kInf) {
          s = DefaultNonbasicStatus(j);
        } else if (s == VarStatus::kNonbasicFree &&
                   (lower_[j] != -kInf || upper_[j] != kInf)) {
          s = DefaultNonbasicStatus(j);
        }
      }
      status_[j] = s;
    }
    return static_cast<int>(basic_.size()) == m_;
  }

  // ---- Factorization: dense LU with partial pivoting + eta file --------

  double& Lu(int i, int j) { return lu_[static_cast<size_t>(i) * m_ + j]; }
  double Lu(int i, int j) const {
    return lu_[static_cast<size_t>(i) * m_ + j];
  }

  bool Factorize() {
    etas_.clear();
    lu_.assign(static_cast<size_t>(m_) * m_, 0.0);
    for (int k = 0; k < m_; ++k) {
      const int col = basic_[k];
      if (col < ns_) {
        for (int e = col_starts_[col]; e < col_starts_[col + 1]; ++e) {
          Lu(col_entries_[e].row, k) += col_entries_[e].value;
        }
      } else {
        Lu(col - ns_, k) += 1.0;
      }
    }
    perm_.resize(static_cast<size_t>(m_));
    for (int i = 0; i < m_; ++i) perm_[i] = i;
    for (int k = 0; k < m_; ++k) {
      int p = k;
      double best = std::fabs(Lu(k, k));
      for (int i = k + 1; i < m_; ++i) {
        const double a = std::fabs(Lu(i, k));
        if (a > best) {
          best = a;
          p = i;
        }
      }
      if (best < options_.pivot_tolerance) return false;  // singular
      if (p != k) {
        for (int j = 0; j < m_; ++j) std::swap(Lu(k, j), Lu(p, j));
        std::swap(perm_[k], perm_[p]);
      }
      const double inv = 1.0 / Lu(k, k);
      for (int i = k + 1; i < m_; ++i) {
        const double factor = Lu(i, k) * inv;
        if (factor == 0.0) continue;
        Lu(i, k) = factor;
        // Row update: one contiguous axpy over the trailing submatrix row.
        math::Axpy(-factor, &lu_[static_cast<size_t>(k) * m_ + k + 1],
                   &lu_[static_cast<size_t>(i) * m_ + k + 1],
                   static_cast<size_t>(m_ - k - 1));
      }
    }
    // Transposed copy: Btran substitutes along LU *columns*, which stride
    // by m in lu_; lut_(i, j) = Lu(j, i) makes those traversals contiguous
    // kernel dots. Refreshed with every factorization.
    lut_.resize(static_cast<size_t>(m_) * m_);
    for (int i = 0; i < m_; ++i) {
      for (int j = 0; j < m_; ++j) {
        lut_[static_cast<size_t>(i) * m_ + j] = Lu(j, i);
      }
    }
    return true;
  }

  double Lut(int i, int j) const {
    return lut_[static_cast<size_t>(i) * m_ + j];
  }

  // Solves B w = v into `w`. Input indexed by row, output by basis
  // position. `v` and `w` must be distinct buffers.
  void Ftran(const util::ArenaVector<double>& v,
             util::ArenaVector<double>& w) const {
    w.resize(static_cast<size_t>(m_));
    for (int k = 0; k < m_; ++k) w[k] = v[perm_[k]];
    for (int k = 1; k < m_; ++k) {
      // Forward substitution: L rows are contiguous prefixes of lu_ rows.
      w[k] -= math::Dot(&lu_[static_cast<size_t>(k) * m_], w.data(),
                        static_cast<size_t>(k));
    }
    for (int k = m_ - 1; k >= 0; --k) {
      const double sum =
          w[k] - math::Dot(&lu_[static_cast<size_t>(k) * m_ + k + 1],
                           w.data() + k + 1, static_cast<size_t>(m_ - k - 1));
      w[k] = sum / Lu(k, k);
    }
    for (size_t e = 0; e < etas_.size(); ++e) {
      const Eta& eta = etas_[e];
      const double t = w[eta.r] / eta.d[eta.r];
      math::Axpy(-t, eta.d, w.data(), static_cast<size_t>(m_));
      w[eta.r] = t;
    }
  }

  // Solves B'y = c into `y`, consuming `c` as scratch. Inputs indexed by
  // basis position, output by row.
  void Btran(util::ArenaVector<double>& c, util::ArenaVector<double>& y) {
    for (size_t e = etas_.size(); e-- > 0;) {
      const Eta& eta = etas_[e];
      const double dot =
          math::Dot(c.data(), eta.d, static_cast<size_t>(m_));
      c[eta.r] = (c[eta.r] - (dot - c[eta.r] * eta.d[eta.r])) / eta.d[eta.r];
    }
    work_v_.resize(static_cast<size_t>(m_));
    util::ArenaVector<double>& a = work_v_;
    for (int k = 0; k < m_; ++k) {
      // U' is lower triangular; its rows are contiguous in the transposed
      // factors.
      const double sum =
          c[k] - math::Dot(&lut_[static_cast<size_t>(k) * m_], a.data(),
                           static_cast<size_t>(k));
      a[k] = sum / Lut(k, k);
    }
    for (int k = m_ - 1; k >= 0; --k) {
      a[k] -= math::Dot(&lut_[static_cast<size_t>(k) * m_ + k + 1],
                        a.data() + k + 1, static_cast<size_t>(m_ - k - 1));
    }
    y.resize(static_cast<size_t>(m_));
    for (int k = 0; k < m_; ++k) y[perm_[k]] = a[k];
  }

  // Column `col` of the constraint matrix, densified by row into `a`.
  void DenseColumnInto(int col, util::ArenaVector<double>& a) const {
    a.assign(static_cast<size_t>(m_), 0.0);
    if (col < ns_) {
      for (int e = col_starts_[col]; e < col_starts_[col + 1]; ++e) {
        a[col_entries_[e].row] += col_entries_[e].value;
      }
    } else {
      a[col - ns_] = 1.0;
    }
  }

  double DotColumn(const util::ArenaVector<double>& y, int col) const {
    if (col >= ns_) return y[col - ns_];
    double dot = 0.0;
    for (int e = col_starts_[col]; e < col_starts_[col + 1]; ++e) {
      dot += y[col_entries_[e].row] * col_entries_[e].value;
    }
    return dot;
  }

  double NonbasicValue(int col) const {
    switch (status_[col]) {
      case VarStatus::kAtLower:
        return lower_[col];
      case VarStatus::kAtUpper:
        return upper_[col];
      default:
        return 0.0;
    }
  }

  // Recomputes x_B = B^{-1}(b - N x_N) from the factorization, clearing
  // the drift of the incremental updates.
  void ComputeBasicValues() {
    x_.assign(static_cast<size_t>(n_), 0.0);
    work_v_.assign(b_.begin(), b_.end());
    for (int j = 0; j < n_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double xj = NonbasicValue(j);
      x_[j] = xj;
      if (xj == 0.0) continue;
      if (j < ns_) {
        for (int e = col_starts_[j]; e < col_starts_[j + 1]; ++e) {
          work_v_[col_entries_[e].row] -= col_entries_[e].value * xj;
        }
      } else {
        work_v_[j - ns_] -= xj;
      }
    }
    Ftran(work_v_, work_w_);
    for (int k = 0; k < m_; ++k) x_[basic_[k]] = work_w_[k];
  }

  // Sum of bound violations over the basic variables (the phase-1
  // objective) and, via `cb`, its gradient on the basis.
  double Infeasibility(util::ArenaVector<double>* cb) const {
    double total = 0.0;
    if (cb != nullptr) cb->assign(static_cast<size_t>(m_), 0.0);
    for (int k = 0; k < m_; ++k) {
      const int col = basic_[k];
      const double x = x_[col];
      if (x < lower_[col] - FeasTol(lower_[col])) {
        total += lower_[col] - x;
        if (cb != nullptr) (*cb)[k] = -1.0;
      } else if (x > upper_[col] + FeasTol(upper_[col])) {
        total += x - upper_[col];
        if (cb != nullptr) (*cb)[k] = 1.0;
      }
    }
    return total;
  }

  // ---- The simplex loop -------------------------------------------------

  PhaseOutcome RunPhase(bool phase1, int iteration_budget, int* used) {
    *used = 0;
    int stall = 0;
    bool bland = false;
    double last_objective = kInf;
    for (;;) {
      double objective;
      if (phase1) {
        objective = Infeasibility(&cb_);
        if (objective <= options_.tolerance * 10) return PhaseOutcome::kDone;
      } else {
        cb_.resize(static_cast<size_t>(m_));
        for (int k = 0; k < m_; ++k) cb_[k] = cost_[basic_[k]];
        objective =
            math::Dot(cost_.data(), x_.data(), static_cast<size_t>(n_));
      }
      if (objective < last_objective - 1e-12) {
        last_objective = objective;
        stall = 0;
        bland = false;
      } else if (!bland && ++stall > 2 * (m_ + 50)) {
        bland = true;  // Bland's rule escapes degenerate cycling
      }

      Btran(cb_, y_);
      int entering = -1;
      double entering_dir = 0.0;
      double best_violation = options_.tolerance;
      for (int j = 0; j < n_; ++j) {
        if (status_[j] == VarStatus::kBasic) continue;
        if (upper_[j] - lower_[j] <= 0.0) continue;  // fixed, cannot move
        const double phase_cost = phase1 ? 0.0 : cost_[j];
        const double d = phase_cost - DotColumn(y_, j);
        double violation = 0.0;
        double dir = 0.0;
        if (status_[j] == VarStatus::kAtLower && d < -options_.tolerance) {
          violation = -d;
          dir = 1.0;
        } else if (status_[j] == VarStatus::kAtUpper &&
                   d > options_.tolerance) {
          violation = d;
          dir = -1.0;
        } else if (status_[j] == VarStatus::kNonbasicFree &&
                   std::fabs(d) > options_.tolerance) {
          violation = std::fabs(d);
          dir = d < 0 ? 1.0 : -1.0;
        } else {
          continue;
        }
        if (bland) {
          entering = j;
          entering_dir = dir;
          break;
        }
        if (violation > best_violation) {
          best_violation = violation;
          entering = j;
          entering_dir = dir;
        }
      }
      if (entering < 0) {
        // No improving column: this basis is as good as it gets for the
        // phase. For phase 1 that means infeasible iff violations remain.
        if (phase1 && Infeasibility(nullptr) > options_.tolerance * 10) {
          return PhaseOutcome::kInfeasible;
        }
        return PhaseOutcome::kDone;
      }
      // The already-optimal case is handled above, so hitting the budget
      // here means real work remains (see the dense RunPhase for the same
      // contract).
      if (*used >= iteration_budget) return PhaseOutcome::kIterationLimit;

      DenseColumnInto(entering, col_);
      Ftran(col_, w_);
      const PhaseOutcome step =
          Step(phase1, entering, entering_dir, w_, bland);
      if (step != PhaseOutcome::kDone) return step;
      ++*used;
    }
  }

  // One ratio test + update (bound flip or basis change). Returns kDone on
  // a completed step, or a terminal outcome.
  PhaseOutcome Step(bool phase1, int entering, double dir,
                    const util::ArenaVector<double>& w, bool bland) {
    constexpr double kTieTol = 1e-9;
    const double flip_t = upper_[entering] - lower_[entering];  // inf ok

    // Pass 1: the tightest blocking ratio.
    double best_t = kInf;
    for (int k = 0; k < m_; ++k) {
      const double t = BlockingRatio(phase1, k, -dir * w[k], nullptr);
      if (t < best_t) best_t = t;
    }

    if (flip_t <= best_t) {
      if (flip_t == kInf) return PhaseOutcome::kUnbounded;
      // Bound flip: the entering variable traverses to its opposite bound
      // without any basis change.
      for (int k = 0; k < m_; ++k) x_[basic_[k]] += -dir * w[k] * flip_t;
      status_[entering] = status_[entering] == VarStatus::kAtLower
                              ? VarStatus::kAtUpper
                              : VarStatus::kAtLower;
      x_[entering] = NonbasicValue(entering);
      return PhaseOutcome::kDone;
    }

    // Pass 2: deterministic leaving choice among near-ties — the largest
    // pivot magnitude for stability, then the smallest basic column index;
    // under Bland's rule, the smallest index alone.
    int leaving = -1;
    bool to_upper = false;
    double best_pivot = -1.0;
    for (int k = 0; k < m_; ++k) {
      bool hits_upper = false;
      const double t = BlockingRatio(phase1, k, -dir * w[k], &hits_upper);
      if (t > best_t + kTieTol) continue;
      const double pivot = std::fabs(w[k]);
      const bool better =
          leaving < 0 ||
          (bland ? basic_[k] < basic_[leaving]
                 : (pivot > best_pivot + kTieTol ||
                    (pivot > best_pivot - kTieTol &&
                     basic_[k] < basic_[leaving])));
      if (better) {
        leaving = k;
        to_upper = hits_upper;
        best_pivot = pivot;
      }
    }
    CHECK(leaving >= 0);

    // Update primal values along the direction, then swap the basis.
    const double t = std::max(0.0, best_t);
    for (int k = 0; k < m_; ++k) x_[basic_[k]] += -dir * w[k] * t;
    x_[entering] = NonbasicValue(entering) + dir * t;
    const int leaving_col = basic_[leaving];
    status_[leaving_col] = to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    x_[leaving_col] = NonbasicValue(leaving_col);
    status_[entering] = VarStatus::kBasic;
    basic_[leaving] = entering;
    // The eta d-vector is a bump allocation, not a heap vector: the whole
    // eta file is reclaimed when the engine's arena scope unwinds (or
    // logically discarded at the next refactorization).
    double* d = arena_.AllocateArray<double>(static_cast<size_t>(m_));
    std::memcpy(d, w.data(), static_cast<size_t>(m_) * sizeof(double));
    etas_.push_back(Eta{leaving, d});
    if (static_cast<int>(etas_.size()) >=
        std::max(1, options_.refactor_interval)) {
      if (!Factorize()) return PhaseOutcome::kNumericalFailure;
      ComputeBasicValues();
    }
    return PhaseOutcome::kDone;
  }

  // Ratio at which basis position k blocks a move with per-unit step
  // `delta`, or +inf. In phase 1 a basic variable outside its bounds
  // blocks only at the bound it violates (reaching it restores
  // feasibility); moving it further out never blocks — the composite
  // objective accounts for the growing violation.
  double BlockingRatio(bool phase1, int k, double delta,
                       bool* hits_upper) const {
    if (std::fabs(delta) <= options_.pivot_tolerance) return kInf;
    const int col = basic_[k];
    const double x = x_[col];
    const double l = lower_[col];
    const double u = upper_[col];
    double bound;
    bool upper;
    if (phase1 && x < l - FeasTol(l)) {
      if (delta <= 0) return kInf;
      bound = l;
      upper = false;
    } else if (phase1 && x > u + FeasTol(u)) {
      if (delta >= 0) return kInf;
      bound = u;
      upper = true;
    } else if (delta > 0) {
      if (u == kInf) return kInf;
      bound = u;
      upper = true;
    } else {
      if (l == -kInf) return kInf;
      bound = l;
      upper = false;
    }
    if (hits_upper != nullptr) *hits_upper = upper;
    return std::max(0.0, (bound - x) / delta);
  }

  // ---- Solution extraction ---------------------------------------------

  void ExtractSolution(RevisedSolution& result) {
    LpSolution& solution = result.solution;
    solution.status = SolveStatus::kOptimal;
    solution.primal.assign(static_cast<size_t>(ns_), 0.0);
    for (int j = 0; j < ns_; ++j) solution.primal[j] = x_[j];
    solution.objective =
        model_.objective_constant() +
        math::Dot(cost_.data(), x_.data(), static_cast<size_t>(ns_));

    cb_.resize(static_cast<size_t>(m_));
    for (int k = 0; k < m_; ++k) cb_[k] = cost_[basic_[k]];
    Btran(cb_, y_);
    solution.dual.assign(y_.begin(), y_.end());
    solution.reduced_cost.assign(static_cast<size_t>(ns_), 0.0);
    for (int j = 0; j < ns_; ++j) {
      solution.reduced_cost[j] = cost_[j] - DotColumn(y_, j);
    }

    result.basis.structural.assign(status_.begin(), status_.begin() + ns_);
    result.basis.logical.assign(status_.begin() + ns_, status_.end());
  }

  const LpModel& model_;
  const SimplexSolver::Options& options_;
  const int ns_;  // structural columns
  const int m_;   // rows
  const int n_;   // structural + logical columns

  // Arena backing for everything below: the caller's workspace slot 0 or a
  // locally owned arena. `scope_` must precede every ArenaVector member so
  // its rewind (to the pre-solve mark) runs after their (trivial) cleanup.
  std::unique_ptr<util::Arena> owned_arena_;
  util::Arena& arena_;
  util::ArenaScope scope_;

  // Structural columns, CSR over columns (entries row-ordered).
  util::ArenaVector<int> col_starts_;
  util::ArenaVector<ColEntry> col_entries_;
  util::ArenaVector<double> lower_, upper_, cost_, b_;

  util::ArenaVector<VarStatus> status_;  // per column
  util::ArenaVector<int> basic_;         // basis position -> column
  util::ArenaVector<double> x_;          // per column

  util::ArenaVector<double> lu_;   // packed L (unit lower) / U factors of B
  util::ArenaVector<double> lut_;  // transposed factors, for Btran
  util::ArenaVector<int> perm_;    // row permutation of the factorization
  util::ArenaVector<Eta> etas_;

  // Per-iteration scratch, sized once in the constructor.
  util::ArenaVector<double> work_v_, work_w_;  // ComputeBasicValues / Btran
  util::ArenaVector<double> cb_, y_, w_, col_;
};

// No constraints: every variable sits at its cost-minimizing bound. Kept in
// sync with the dense backend's m == 0 path, including the convention that
// a variable resting at a bound keeps its cost as its reduced cost.
util::Status SolveUnconstrained(const LpModel& model,
                                RevisedSolution& result) {
  LpSolution& solution = result.solution;
  solution.objective = 0.0;
  solution.phase1_iterations = 0;
  solution.phase2_iterations = 0;
  solution.dual.clear();
  solution.primal.assign(model.num_variables(), 0.0);
  solution.reduced_cost.assign(model.num_variables(), 0.0);
  result.warm_started = false;
  result.basis.logical.clear();
  result.basis.structural.assign(model.num_variables(), VarStatus::kAtLower);
  double objective = model.objective_constant();
  for (int j = 0; j < model.num_variables(); ++j) {
    const double c = model.cost(j);
    double x;
    VarStatus status = VarStatus::kAtLower;
    if (c > 0) {
      x = model.lower_bound(j);
    } else if (c < 0) {
      x = model.upper_bound(j);
      status = VarStatus::kAtUpper;
    } else {
      // Zero cost: the feasible value nearest zero, always finite (max
      // with a -inf lower bound yields 0, min with a +inf upper keeps it).
      x = std::min(std::max(0.0, model.lower_bound(j)),
                   model.upper_bound(j));
      if (x == model.upper_bound(j)) {
        status = VarStatus::kAtUpper;
      } else if (x != model.lower_bound(j)) {
        status = VarStatus::kNonbasicFree;
      }
    }
    if (!std::isfinite(x)) {
      solution.status = SolveStatus::kUnbounded;
      result.basis.structural.clear();
      result.basis.logical.clear();
      return util::OkStatus();
    }
    solution.primal[j] = x;
    solution.reduced_cost[j] = c;
    result.basis.structural[j] = status;
    objective += c * x;
  }
  solution.status = SolveStatus::kOptimal;
  solution.objective = objective;
  return util::OkStatus();
}

}  // namespace

util::StatusOr<RevisedSolution> RevisedSimplex::Solve(
    const LpModel& model, const SimplexSolver::Options& options,
    const Basis* warm_start) {
  RevisedSolution result;
  RETURN_IF_ERROR(SolveInto(model, options, warm_start, result));
  return result;
}

util::Status RevisedSimplex::SolveInto(const LpModel& model,
                                       const SimplexSolver::Options& options,
                                       const Basis* warm_start,
                                       RevisedSolution& out) {
  RETURN_IF_ERROR(model.Validate());
  if (model.num_constraints() == 0) return SolveUnconstrained(model, out);
  Engine engine(model, options);
  return engine.Run(warm_start, out);
}

}  // namespace auditgame::lp
