#include "data/credit.h"

#include "util/logging.h"
#include "util/random.h"

namespace auditgame::data {

const char* const kCreditPurposes[kCreditNumPurposes] = {
    "new car",  "used car", "furniture", "appliance",
    "education", "business", "repairs",   "retraining",
};

const double kCreditAlertMeans[kCreditNumTypes] = {370.04, 82.42, 5.13, 28.21,
                                                   8.31};
const double kCreditAlertStds[kCreditNumTypes] = {15.81, 7.87, 2.08, 5.25,
                                                  2.96};

audit::RuleEngine BuildCreditRules() {
  using audit::And;
  using audit::Or;
  using audit::StringAttrEquals;

  audit::RuleEngine engine;
  auto add = [&engine](std::string name, int type, audit::Predicate p) {
    CHECK(engine.AddRule({std::move(name), type, 1.0, std::move(p)}).ok());
  };
  const audit::Predicate no_checking = StringAttrEquals("checking", "none");
  const audit::Predicate checking_negative =
      StringAttrEquals("checking", "negative");
  const audit::Predicate checking_positive =
      StringAttrEquals("checking", "positive");
  const audit::Predicate unskilled = StringAttrEquals("skill", "unskilled");
  const audit::Predicate critical = StringAttrEquals("history", "critical");

  add("no_checking_any_purpose", 0, no_checking);
  add("negative_newcar_or_education", 1,
      And(checking_negative, Or(StringAttrEquals("purpose", "new car"),
                                StringAttrEquals("purpose", "education"))));
  add("positive_unskilled_education", 2,
      And(checking_positive,
          And(unskilled, StringAttrEquals("purpose", "education"))));
  add("positive_unskilled_appliance", 3,
      And(checking_positive,
          And(unskilled, StringAttrEquals("purpose", "appliance"))));
  add("positive_critical_business", 4,
      And(checking_positive,
          And(critical, StringAttrEquals("purpose", "business"))));
  return engine;
}

audit::AccessEvent MakeCreditEvent(const CreditApplicant& applicant,
                                   int purpose_index) {
  audit::AccessEvent event;
  event.subject_id = applicant.id;
  event.object_id = kCreditPurposes[purpose_index];
  switch (applicant.checking) {
    case CheckingStatus::kNone:
      event.string_attrs["checking"] = "none";
      break;
    case CheckingStatus::kNegative:
      event.string_attrs["checking"] = "negative";
      break;
    case CheckingStatus::kPositive:
      event.string_attrs["checking"] = "positive";
      break;
  }
  event.string_attrs["skill"] = applicant.unskilled ? "unskilled" : "skilled";
  event.string_attrs["history"] =
      applicant.critical_account ? "critical" : "normal";
  event.string_attrs["purpose"] = kCreditPurposes[purpose_index];
  return event;
}

util::StatusOr<CreditWorld> GenerateCreditWorld(const CreditConfig& config) {
  if (config.num_applicants <= 0) {
    return util::InvalidArgumentError("num_applicants must be positive");
  }
  if (config.p_no_checking + config.p_checking_negative > 1.0) {
    return util::InvalidArgumentError("checking-status probabilities sum > 1");
  }
  util::Rng rng(config.seed);
  for (int attempt = 0; attempt < 64; ++attempt) {
    CreditWorld world;
    world.rules = BuildCreditRules();
    for (int a = 0; a < config.num_applicants; ++a) {
      CreditApplicant applicant;
      applicant.id = "app" + std::to_string(a);
      const double u = rng.Uniform();
      if (u < config.p_no_checking) {
        applicant.checking = CheckingStatus::kNone;
      } else if (u < config.p_no_checking + config.p_checking_negative) {
        applicant.checking = CheckingStatus::kNegative;
      } else {
        applicant.checking = CheckingStatus::kPositive;
      }
      applicant.unskilled = rng.Uniform() < config.p_unskilled;
      applicant.critical_account = rng.Uniform() < config.p_critical_account;
      world.applicants.push_back(std::move(applicant));
    }
    world.pair_types.assign(static_cast<size_t>(config.num_applicants),
                            std::vector<int>(kCreditNumPurposes, -1));
    std::vector<bool> type_seen(kCreditNumTypes, false);
    for (int a = 0; a < config.num_applicants; ++a) {
      for (int p = 0; p < kCreditNumPurposes; ++p) {
        const auto match = world.rules.Match(
            MakeCreditEvent(world.applicants[static_cast<size_t>(a)], p));
        if (match.has_value()) {
          world.pair_types[static_cast<size_t>(a)][static_cast<size_t>(p)] =
              match->first;
          type_seen[static_cast<size_t>(match->first)] = true;
        }
      }
    }
    bool all_seen = true;
    for (bool seen : type_seen) all_seen = all_seen && seen;
    if (all_seen) return world;
  }
  return util::InternalError(
      "could not realize all 5 credit alert types; adjust CreditConfig");
}

util::StatusOr<core::GameInstance> MakeCreditGame(const CreditConfig& config) {
  if (config.type_benefits.size() != static_cast<size_t>(kCreditNumTypes)) {
    return util::InvalidArgumentError("type_benefits must have 5 entries");
  }
  ASSIGN_OR_RETURN(CreditWorld world, GenerateCreditWorld(config));

  core::GameInstance instance;
  instance.type_names = {
      "No checking account, any purpose",
      "Checking < 0, new car / education",
      "Checking > 0, unskilled, education",
      "Checking > 0, unskilled, appliance",
      "Checking > 0, critical account, business",
  };
  instance.audit_costs.assign(kCreditNumTypes, config.audit_cost);
  for (int t = 0; t < kCreditNumTypes; ++t) {
    ASSIGN_OR_RETURN(prob::CountDistribution dist,
                     prob::CountDistribution::DiscretizedGaussianWithCoverage(
                         kCreditAlertMeans[t], kCreditAlertStds[t], 0.995));
    instance.alert_distributions.push_back(std::move(dist));
  }
  for (int a = 0; a < config.num_applicants; ++a) {
    core::Adversary adversary;
    adversary.attack_probability = config.attack_probability;
    adversary.can_opt_out = config.can_opt_out;
    for (int p = 0; p < kCreditNumPurposes; ++p) {
      const int type =
          world.pair_types[static_cast<size_t>(a)][static_cast<size_t>(p)];
      core::VictimProfile victim;
      victim.type_probs.assign(kCreditNumTypes, 0.0);
      victim.attack_cost = config.attack_cost;
      victim.penalty = config.penalty;
      if (type >= 0) {
        victim.type_probs[static_cast<size_t>(type)] = 1.0;
        victim.benefit = config.type_benefits[static_cast<size_t>(type)];
      } else {
        victim.benefit = 0.0;
      }
      adversary.victims.push_back(std::move(victim));
    }
    instance.adversaries.push_back(std::move(adversary));
  }
  RETURN_IF_ERROR(instance.Validate());
  return instance;
}

}  // namespace auditgame::data
