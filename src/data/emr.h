#ifndef AUDIT_GAME_DATA_EMR_H_
#define AUDIT_GAME_DATA_EMR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "audit/event.h"
#include "audit/log.h"
#include "audit/rules.h"
#include "core/game.h"
#include "util/statusor.h"

namespace auditgame::data {

/// Synthetic stand-in for the paper's Rea A dataset (VUMC EMR access logs,
/// which are not publicly available — see docs/DESIGN.md "Dataset substitutions").
///
/// We generate a hospital population (employees and patients with last
/// names, departments, residential addresses and coordinates), classify
/// every employee-patient access with the same seven composite alert types
/// as Table VIII via the rule engine, and attach the paper's published
/// per-type alert-volume statistics (Table VIII means/stds) and utility
/// parameters (Section V-A).
struct EmrConfig {
  int num_employees = 50;
  int num_patients = 50;
  uint64_t seed = 2017;

  /// Population-shaping knobs.
  int last_name_pool = 18;
  int department_pool = 8;
  int address_pool = 30;
  /// City side length; the "neighbor" rule radius is 0.5 (miles).
  double city_size = 3.0;
  double neighbor_radius = 0.5;

  /// Utility parameters (paper defaults).
  std::vector<double> type_benefits = {10, 12, 12, 24, 25, 25, 27};
  double penalty = 15.0;
  double attack_cost = 1.0;
  double audit_cost = 1.0;
  double attack_probability = 1.0;
  bool can_opt_out = true;
};

/// One member of the synthetic hospital population.
struct EmrPerson {
  std::string id;
  std::string last_name;
  std::string department;  // empty for non-employee patients
  std::string address_id;
  double x = 0.0;
  double y = 0.0;
};

/// The generated world: population, rules and the labeled access matrix.
struct EmrWorld {
  std::vector<EmrPerson> employees;
  std::vector<EmrPerson> patients;
  audit::RuleEngine rules;
  /// pair_types[e][p]: 0-based alert type of access <e, p>, or -1 (benign).
  std::vector<std::vector<int>> pair_types;
};

/// Builds the Table VIII rule set (composite types first so the
/// first-match-wins engine resolves combinations correctly). Types are
/// 0-based: 0 = same last name, 1 = department co-worker, 2 = neighbor,
/// 3 = last name + same address, 4 = last name + neighbor,
/// 5 = same address + neighbor, 6 = last name + same address + neighbor.
audit::RuleEngine BuildEmrRules(double neighbor_radius = 0.5);

/// The access event for employee `e` touching patient `p`'s record, with
/// all attributes the rules predicate on.
audit::AccessEvent MakeEmrAccessEvent(const EmrPerson& employee,
                                      const EmrPerson& patient);

/// Generates a deterministic world from the config seed. Retries internally
/// until every one of the seven alert types occurs in the access matrix
/// (mirrors the paper sampling employees/patients that generate alerts).
util::StatusOr<EmrWorld> GenerateEmrWorld(const EmrConfig& config = {});

/// Number of alert types in the EMR game.
inline constexpr int kEmrNumTypes = 7;

/// Table VIII per-type daily alert-count statistics.
extern const double kEmrAlertMeans[kEmrNumTypes];
extern const double kEmrAlertStds[kEmrNumTypes];

/// Assembles the full game instance (world + Table VIII distributions +
/// Section V-A utilities).
util::StatusOr<core::GameInstance> MakeEmrGame(const EmrConfig& config = {});

/// Simulates `days` of benign EMR accesses: every day each employee touches
/// a random subset of patients (`accesses_per_employee_per_day` on
/// average), each access is classified by the rule engine, and per-type
/// alert counts are recorded. Returns the resulting alert log — the
/// artifact a privacy office would learn F_t from (AlertLog::
/// LearnGaussianFit / LearnDistribution).
util::StatusOr<audit::AlertLog> SimulateAccessLog(
    const EmrWorld& world, int days, double accesses_per_employee_per_day,
    uint64_t seed);

/// Builds a game instance whose alert-count distributions are LEARNED from
/// a simulated access log instead of taken from Table VIII. Demonstrates
/// the paper's "this distribution can be obtained from historical alert
/// logs" pipeline end to end.
util::StatusOr<core::GameInstance> MakeEmrGameFromLogs(
    const EmrConfig& config, int days, double accesses_per_employee_per_day);

}  // namespace auditgame::data

#endif  // AUDIT_GAME_DATA_EMR_H_
