#ifndef AUDIT_GAME_DATA_SYN_A_H_
#define AUDIT_GAME_DATA_SYN_A_H_

#include "core/game.h"
#include "util/statusor.h"

namespace auditgame::data {

/// The controlled-evaluation dataset Syn A (Table II of the paper):
///  * 4 alert types with Gaussian daily counts — means [6, 5, 4, 4],
///    stddevs [2, 1.6, 1.3, 1], truncated at the 99.5% coverage band
///    (supports [1,11], [1,9], [1,7], [1,7]);
///  * 5 potential attackers (p_e = 1; see docs/DESIGN.md on the "(pe = 12)" PDF
///    artifact) and 8 records; the deterministic access -> type matrix of
///    Table IIb ("-" entries are benign, providing a do-little option but
///    no true opt-out);
///  * adversary benefit per type [3.4, 3.7, 4, 4.3], attack cost 0.4,
///    audit cost 1 per type, capture penalty 4.
util::StatusOr<core::GameInstance> MakeSynA();

/// How the "-" (benign) entries of Table IIb enter the adversary's strategy
/// space. The paper's text allows "refraining from malicious behavior";
/// treating the benign access as that zero-utility outside option
/// (kFreeOptOut) reproduces Table III's values most closely.
enum class SynABenignMode {
  /// Benign access is an attack with no alert and no gain: Ua = -K.
  kCostlyAccess,
  /// Benign access means refraining: Ua = 0 for employees that have one.
  kFreeOptOut,
  /// Every employee may refrain (utility floor 0 for all).
  kGlobalOptOut,
};

struct SynAOptions {
  /// Gaussian discretization window shift; the pmf mass of integer z is
  /// taken from [z - 0.5 + shift, z + 0.5 + shift]. 0 = midpoint.
  double gauss_shift = 0.0;
  SynABenignMode benign_mode = SynABenignMode::kFreeOptOut;
};

/// Variant exposing the calibration knobs above (used by the semantics
/// ablation bench; see docs/DESIGN.md "Calibration notes").
util::StatusOr<core::GameInstance> MakeSynAVariant(const SynAOptions& options);

}  // namespace auditgame::data

#endif  // AUDIT_GAME_DATA_SYN_A_H_
