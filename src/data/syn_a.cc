#include "data/syn_a.h"

#include <array>

namespace auditgame::data {
namespace {

constexpr int kNumTypes = 4;
constexpr int kNumEmployees = 5;
constexpr int kNumRecords = 8;

constexpr std::array<double, kNumTypes> kMeans = {6, 5, 4, 4};
constexpr std::array<double, kNumTypes> kStds = {2, 1.6, 1.3, 1};
constexpr std::array<int, kNumTypes> kCoverage = {5, 4, 3, 3};
constexpr std::array<double, kNumTypes> kBenefit = {3.4, 3.7, 4.0, 4.3};
constexpr double kAttackCost = 0.4;
constexpr double kAuditCost = 1.0;
constexpr double kPenalty = 4.0;
constexpr double kAttackProbability = 1.0;

// Table IIb: alert type (1-based) triggered by employee e accessing record
// r; 0 denotes a benign access.
constexpr int kTypeMatrix[kNumEmployees][kNumRecords] = {
    {0, 3, 2, 2, 3, 4, 3, 1},  // e1
    {1, 0, 1, 1, 1, 2, 1, 1},  // e2
    {1, 3, 4, 0, 1, 3, 1, 4},  // e3
    {2, 1, 3, 1, 4, 4, 2, 2},  // e4
    {2, 3, 1, 4, 2, 1, 3, 2},  // e5
};

}  // namespace

util::StatusOr<core::GameInstance> MakeSynA() {
  return MakeSynAVariant(SynAOptions());
}

util::StatusOr<core::GameInstance> MakeSynAVariant(const SynAOptions& options) {
  const double shift = options.gauss_shift;
  core::GameInstance instance;
  instance.type_names = {"Type 1", "Type 2", "Type 3", "Type 4"};
  instance.audit_costs.assign(kNumTypes, kAuditCost);
  for (int t = 0; t < kNumTypes; ++t) {
    const int lo = std::max(0, static_cast<int>(kMeans[t]) - kCoverage[t]);
    const int hi = static_cast<int>(kMeans[t]) + kCoverage[t];
    // A shifted discretization window is equivalent to shifting the mean the
    // other way.
    ASSIGN_OR_RETURN(prob::CountDistribution dist,
                     prob::CountDistribution::DiscretizedGaussian(
                         kMeans[t] - shift, kStds[t], lo, hi));
    instance.alert_distributions.push_back(std::move(dist));
  }
  for (int e = 0; e < kNumEmployees; ++e) {
    core::Adversary adversary;
    adversary.attack_probability = kAttackProbability;
    adversary.can_opt_out =
        options.benign_mode == SynABenignMode::kGlobalOptOut;
    for (int r = 0; r < kNumRecords; ++r) {
      const int type = kTypeMatrix[e][r];
      if (type == 0 && options.benign_mode != SynABenignMode::kCostlyAccess) {
        // The "-" access is interpreted as refraining from an attack.
        adversary.can_opt_out = true;
        continue;
      }
      core::VictimProfile victim;
      victim.type_probs.assign(kNumTypes, 0.0);
      victim.attack_cost = kAttackCost;
      victim.penalty = kPenalty;
      if (type > 0) {
        victim.type_probs[type - 1] = 1.0;
        victim.benefit = kBenefit[type - 1];
      } else {
        victim.benefit = 0.0;  // benign access: no alert, no gain
      }
      adversary.victims.push_back(std::move(victim));
    }
    instance.adversaries.push_back(std::move(adversary));
  }
  RETURN_IF_ERROR(instance.Validate());
  return instance;
}

}  // namespace auditgame::data
