#include "data/emr.h"

#include <string>

#include "util/logging.h"
#include "util/random.h"

namespace auditgame::data {

const double kEmrAlertMeans[kEmrNumTypes] = {183.21, 32.18,  113.89, 15.43,
                                             23.75,  20.07,  32.07};
const double kEmrAlertStds[kEmrNumTypes] = {46.40, 23.14, 80.44, 14.61,
                                            11.07, 11.49, 16.54};

audit::RuleEngine BuildEmrRules(double neighbor_radius) {
  using audit::And;
  using audit::EuclideanWithin;
  using audit::StringAttrsMatch;

  audit::RuleEngine engine;
  const audit::Predicate same_last_name =
      StringAttrsMatch("employee_last_name", "patient_last_name");
  const audit::Predicate same_department =
      StringAttrsMatch("employee_department", "patient_department");
  const audit::Predicate same_address =
      StringAttrsMatch("employee_address", "patient_address");
  const audit::Predicate neighbor =
      EuclideanWithin("employee_x", "employee_y", "patient_x", "patient_y",
                      neighbor_radius);

  // Most specific combinations first: the engine assigns the FIRST matching
  // rule, which realizes the paper's "redefine the set of alert types to
  // also consider combinations" (Table VIII).
  auto add = [&engine](std::string name, int type, audit::Predicate p) {
    CHECK(engine.AddRule({std::move(name), type, 1.0, std::move(p)}).ok());
  };
  add("last_name+address+neighbor", 6,
      And(same_last_name, And(same_address, neighbor)));
  add("address+neighbor", 5, And(same_address, neighbor));
  add("last_name+neighbor", 4, And(same_last_name, neighbor));
  add("last_name+address", 3, And(same_last_name, same_address));
  add("neighbor", 2, neighbor);
  add("department_coworker", 1, same_department);
  add("last_name", 0, same_last_name);
  return engine;
}

audit::AccessEvent MakeEmrAccessEvent(const EmrPerson& employee,
                                      const EmrPerson& patient) {
  audit::AccessEvent event;
  event.subject_id = employee.id;
  event.object_id = patient.id;
  event.string_attrs["employee_last_name"] = employee.last_name;
  event.string_attrs["patient_last_name"] = patient.last_name;
  event.string_attrs["employee_department"] = employee.department;
  event.string_attrs["patient_department"] = patient.department;
  event.string_attrs["employee_address"] = employee.address_id;
  event.string_attrs["patient_address"] = patient.address_id;
  event.numeric_attrs["employee_x"] = employee.x;
  event.numeric_attrs["employee_y"] = employee.y;
  event.numeric_attrs["patient_x"] = patient.x;
  event.numeric_attrs["patient_y"] = patient.y;
  return event;
}

namespace {

EmrPerson GeneratePerson(const EmrConfig& config, const std::string& id,
                         bool is_employee, util::Rng& rng) {
  EmrPerson person;
  person.id = id;
  // Zipf-ish skew: small name indices are much more common, creating
  // realistic last-name collisions.
  std::vector<double> name_weights(static_cast<size_t>(config.last_name_pool));
  for (size_t i = 0; i < name_weights.size(); ++i) {
    name_weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  person.last_name = "LN" + std::to_string(rng.Categorical(name_weights));
  if (is_employee) {
    person.department =
        "D" + std::to_string(rng.UniformInt(
                  static_cast<uint64_t>(config.department_pool)));
  } else {
    // Some patients are themselves hospital employees (the paper's dataset
    // flags this); give ~25% of patients a department affiliation.
    person.department =
        rng.Uniform() < 0.25
            ? "D" + std::to_string(rng.UniformInt(
                        static_cast<uint64_t>(config.department_pool)))
            : "none_" + id;
  }
  person.address_id = "A" + std::to_string(rng.UniformInt(
                               static_cast<uint64_t>(config.address_pool)));
  person.x = rng.Uniform(0.0, config.city_size);
  person.y = rng.Uniform(0.0, config.city_size);
  return person;
}

}  // namespace

util::StatusOr<EmrWorld> GenerateEmrWorld(const EmrConfig& config) {
  if (config.num_employees <= 0 || config.num_patients <= 0) {
    return util::InvalidArgumentError("population sizes must be positive");
  }
  util::Rng rng(config.seed);
  // Retry until every composite type occurs at least once (the paper
  // samples employees/patients that generate alerts).
  for (int attempt = 0; attempt < 64; ++attempt) {
    EmrWorld world;
    world.rules = BuildEmrRules(config.neighbor_radius);
    for (int e = 0; e < config.num_employees; ++e) {
      world.employees.push_back(
          GeneratePerson(config, "emp" + std::to_string(e), true, rng));
    }
    for (int p = 0; p < config.num_patients; ++p) {
      world.patients.push_back(
          GeneratePerson(config, "pat" + std::to_string(p), false, rng));
    }
    // Couple a slice of the population: give some patients an employee's
    // exact last name / address / location (spouses, housemates, coworkers
    // who are patients), otherwise composite types are vanishingly rare.
    for (int p = 0; p < config.num_patients; ++p) {
      if (rng.Uniform() < 0.30) {
        const EmrPerson& emp = world.employees[static_cast<size_t>(
            rng.UniformInt(static_cast<uint64_t>(config.num_employees)))];
        EmrPerson& pat = world.patients[static_cast<size_t>(p)];
        const double relation = rng.Uniform();
        if (relation < 0.45) {
          // Family member living together.
          pat.last_name = emp.last_name;
          pat.address_id = emp.address_id;
          pat.x = emp.x + rng.Uniform(-0.1, 0.1);
          pat.y = emp.y + rng.Uniform(-0.1, 0.1);
        } else if (relation < 0.70) {
          // Relative across town: same name, different address.
          pat.last_name = emp.last_name;
        } else if (relation < 0.85) {
          // Housemate: same address, different name.
          pat.address_id = emp.address_id;
          pat.x = emp.x + rng.Uniform(-0.1, 0.1);
          pat.y = emp.y + rng.Uniform(-0.1, 0.1);
        } else {
          // Neighbor down the street.
          pat.x = emp.x + rng.Uniform(-0.3, 0.3);
          pat.y = emp.y + rng.Uniform(-0.3, 0.3);
        }
      }
    }

    world.pair_types.assign(static_cast<size_t>(config.num_employees),
                            std::vector<int>(config.num_patients, -1));
    std::vector<bool> type_seen(kEmrNumTypes, false);
    for (int e = 0; e < config.num_employees; ++e) {
      for (int p = 0; p < config.num_patients; ++p) {
        const audit::AccessEvent event = MakeEmrAccessEvent(
            world.employees[static_cast<size_t>(e)],
            world.patients[static_cast<size_t>(p)]);
        const auto match = world.rules.Match(event);
        if (match.has_value()) {
          world.pair_types[static_cast<size_t>(e)][static_cast<size_t>(p)] =
              match->first;
          type_seen[static_cast<size_t>(match->first)] = true;
        }
      }
    }
    bool all_seen = true;
    for (bool seen : type_seen) all_seen = all_seen && seen;
    if (all_seen) return world;
  }
  return util::InternalError(
      "could not realize all 7 EMR alert types; adjust EmrConfig pools");
}

util::StatusOr<audit::AlertLog> SimulateAccessLog(
    const EmrWorld& world, int days, double accesses_per_employee_per_day,
    uint64_t seed) {
  if (days <= 0) return util::InvalidArgumentError("days must be > 0");
  if (accesses_per_employee_per_day <= 0) {
    return util::InvalidArgumentError("access rate must be > 0");
  }
  if (world.employees.empty() || world.patients.empty()) {
    return util::InvalidArgumentError("empty world");
  }
  util::Rng rng(seed);
  audit::AlertLog log(kEmrNumTypes);
  ASSIGN_OR_RETURN(prob::CountDistribution accesses_per_day,
                   prob::CountDistribution::TruncatedPoisson(
                       accesses_per_employee_per_day));
  for (int day = 0; day < days; ++day) {
    log.StartPeriod();
    for (const EmrPerson& employee : world.employees) {
      const int accesses = accesses_per_day.Sample(rng);
      for (int a = 0; a < accesses; ++a) {
        const EmrPerson& patient = world.patients[static_cast<size_t>(
            rng.UniformInt(static_cast<uint64_t>(world.patients.size())))];
        const auto type =
            world.rules.Trigger(MakeEmrAccessEvent(employee, patient), rng);
        if (type.has_value()) RETURN_IF_ERROR(log.Record(*type));
      }
    }
  }
  return log;
}

util::StatusOr<core::GameInstance> MakeEmrGameFromLogs(
    const EmrConfig& config, int days, double accesses_per_employee_per_day) {
  ASSIGN_OR_RETURN(core::GameInstance instance, MakeEmrGame(config));
  ASSIGN_OR_RETURN(EmrWorld world, GenerateEmrWorld(config));
  ASSIGN_OR_RETURN(audit::AlertLog log,
                   SimulateAccessLog(world, days,
                                     accesses_per_employee_per_day,
                                     config.seed + 99));
  for (int t = 0; t < kEmrNumTypes; ++t) {
    auto learned = log.LearnGaussianFit(t);
    if (!learned.ok()) {
      // Sparse types may have (near-)constant counts; fall back to the
      // empirical distribution.
      ASSIGN_OR_RETURN(learned, log.LearnDistribution(t));
    }
    instance.alert_distributions[static_cast<size_t>(t)] =
        std::move(learned).value();
  }
  RETURN_IF_ERROR(instance.Validate());
  return instance;
}

util::StatusOr<core::GameInstance> MakeEmrGame(const EmrConfig& config) {
  if (config.type_benefits.size() != static_cast<size_t>(kEmrNumTypes)) {
    return util::InvalidArgumentError("type_benefits must have 7 entries");
  }
  ASSIGN_OR_RETURN(EmrWorld world, GenerateEmrWorld(config));

  core::GameInstance instance;
  instance.type_names = {
      "Same Last Name",
      "Department Co-worker",
      "Neighbor (<=0.5mi)",
      "Last Name; Same Address",
      "Last Name; Neighbor",
      "Same Address; Neighbor",
      "Last Name; Same Address; Neighbor",
  };
  instance.audit_costs.assign(kEmrNumTypes, config.audit_cost);
  for (int t = 0; t < kEmrNumTypes; ++t) {
    ASSIGN_OR_RETURN(prob::CountDistribution dist,
                     prob::CountDistribution::DiscretizedGaussianWithCoverage(
                         kEmrAlertMeans[t], kEmrAlertStds[t], 0.995));
    instance.alert_distributions.push_back(std::move(dist));
  }
  for (int e = 0; e < config.num_employees; ++e) {
    core::Adversary adversary;
    adversary.attack_probability = config.attack_probability;
    adversary.can_opt_out = config.can_opt_out;
    for (int p = 0; p < config.num_patients; ++p) {
      const int type =
          world.pair_types[static_cast<size_t>(e)][static_cast<size_t>(p)];
      core::VictimProfile victim;
      victim.type_probs.assign(kEmrNumTypes, 0.0);
      victim.attack_cost = config.attack_cost;
      victim.penalty = config.penalty;
      if (type >= 0) {
        victim.type_probs[static_cast<size_t>(type)] = 1.0;
        victim.benefit = config.type_benefits[static_cast<size_t>(type)];
      } else {
        victim.benefit = 0.0;
      }
      adversary.victims.push_back(std::move(victim));
    }
    instance.adversaries.push_back(std::move(adversary));
  }
  RETURN_IF_ERROR(instance.Validate());
  return instance;
}

}  // namespace auditgame::data
