#ifndef AUDIT_GAME_DATA_CREDIT_H_
#define AUDIT_GAME_DATA_CREDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "audit/event.h"
#include "audit/rules.h"
#include "core/game.h"
#include "util/statusor.h"

namespace auditgame::data {

/// Synthetic stand-in for the paper's Rea B dataset (UCI Statlog German
/// credit applications; unavailable offline — see docs/DESIGN.md "Dataset substitutions"). Applicant
/// attributes are drawn to approximate the Statlog marginals (e.g. ~39% of
/// applicants have no checking account), and the five alert types of Table
/// IX are assigned by the rule engine over (applicant, purpose) events. The
/// eight application purposes are the "victims" of the audit game.
struct CreditConfig {
  int num_applicants = 100;
  uint64_t seed = 1000;

  /// Attribute marginals (approximate Statlog frequencies).
  double p_no_checking = 0.39;
  double p_checking_negative = 0.27;  // remainder: positive balance
  double p_unskilled = 0.22;
  double p_critical_account = 0.29;

  /// Utility parameters (paper defaults, Section V-A).
  std::vector<double> type_benefits = {15, 15, 14, 20, 18};
  double penalty = 20.0;
  double attack_cost = 1.0;
  double audit_cost = 1.0;
  double attack_probability = 1.0;
  bool can_opt_out = true;
};

/// Checking-account status of an applicant.
enum class CheckingStatus { kNone, kNegative, kPositive };

struct CreditApplicant {
  std::string id;
  CheckingStatus checking = CheckingStatus::kNone;
  bool unskilled = false;
  bool critical_account = false;
};

/// The eight application purposes (victims).
inline constexpr int kCreditNumPurposes = 8;
extern const char* const kCreditPurposes[kCreditNumPurposes];

/// Number of alert types in the credit game (Table IX).
inline constexpr int kCreditNumTypes = 5;

/// Table IX per-type alert-count statistics.
extern const double kCreditAlertMeans[kCreditNumTypes];
extern const double kCreditAlertStds[kCreditNumTypes];

/// Builds the Table IX rule set (0-based types):
///  0: no checking account, any purpose
///  1: checking < 0, purpose in {new car, education}
///  2: checking > 0, unskilled, education
///  3: checking > 0, unskilled, appliance
///  4: checking > 0, critical account, business
audit::RuleEngine BuildCreditRules();

/// The application event for applicant `a` applying with purpose index `p`.
audit::AccessEvent MakeCreditEvent(const CreditApplicant& applicant,
                                   int purpose_index);

struct CreditWorld {
  std::vector<CreditApplicant> applicants;
  audit::RuleEngine rules;
  /// pair_types[a][p]: 0-based type or -1 (no alert).
  std::vector<std::vector<int>> pair_types;
};

/// Generates a deterministic applicant pool; retries until every alert type
/// occurs.
util::StatusOr<CreditWorld> GenerateCreditWorld(const CreditConfig& config = {});

/// Assembles the credit-fraud audit game.
util::StatusOr<core::GameInstance> MakeCreditGame(const CreditConfig& config = {});

}  // namespace auditgame::data

#endif  // AUDIT_GAME_DATA_CREDIT_H_
