#ifndef AUDIT_GAME_SERVER_BOUNDED_QUEUE_H_
#define AUDIT_GAME_SERVER_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace auditgame::server {

/// Bounded multi-producer queue with batched consumption — the backpressure
/// primitive between the server's IO thread and each shard worker. The
/// bound is the whole point: when a shard falls behind, TryPush() fails
/// immediately and the IO thread answers `overloaded` instead of buffering
/// requests without limit (see docs/DESIGN.md "Network serving").
///
/// PopBatch() hands the consumer up to `max` queued items in one wakeup —
/// the shard's micro-batch: one lock cycle and one response flush per batch
/// rather than per request.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or closed; never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until items are available or the queue is closed. Moves up to
  /// `max` items into *out (cleared first) in FIFO order. Returns false
  /// only when the queue is closed AND fully drained — the consumer's exit
  /// signal; a closed queue with leftovers still hands them out, so
  /// graceful shutdown never drops accepted work.
  bool PopBatch(size_t max, std::vector<T>* out) {
    out->clear();
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    const size_t take = items_.size() < max ? items_.size() : max;
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return true;
  }

  /// Rejects all future pushes and wakes blocked consumers to drain.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Closes AND drops every queued-but-unstarted item, returning how many
  /// were discarded. The drain-deadline path: answers for this work could
  /// no longer be delivered anyway, so abandoning it lets the consumer
  /// exit after at most its in-flight item instead of the whole backlog.
  size_t DiscardPending() {
    size_t dropped;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      dropped = items_.size();
      items_.clear();
      closed_ = true;
    }
    ready_.notify_all();
    return dropped;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_BOUNDED_QUEUE_H_
