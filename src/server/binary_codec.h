#ifndef AUDIT_GAME_SERVER_BINARY_CODEC_H_
#define AUDIT_GAME_SERVER_BINARY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "prob/count_distribution.h"
#include "server/protocol.h"
#include "service/audit_service.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::server {

/// The compact binary encoding of the hot-path verbs (`ingest`,
/// `solve_cycle`), carried inside the same 4-byte length-prefixed frames as
/// the JSON path (net/frame.h) — the outer framing never changes, only the
/// payload bytes. A payload whose first byte is `kBinaryMagic` (0xB1, never
/// the first byte of a JSON document) is binary; anything else takes the
/// JSON path, so both encodings coexist on one connection and the server
/// mirrors each request's encoding in its response. The connection's
/// encoding is negotiated implicitly: the first binary frame marks it
/// binary-mode, which only selects the encoding of error replies to frames
/// too broken to classify.
///
/// Fixed request header (all integers big-endian):
///
///   u8  magic = 0xB1   u8 version = 1   u8 kind = 1 (request)
///   u8  verb (1 = ingest, 2 = solve_cycle)
///   u64 correlation_id
///   u16 tenant_len, tenant bytes
///
/// then per verb: `ingest` packs `u16 n` distributions, each
/// `u32 min, u16 pmf_len, pmf_len × f64` (IEEE-754 bits); `solve_cycle`
/// has no body. Responses echo the header with kind = 2 plus
/// `u8 status (0 ok, 1 overloaded, 2 error, 3 backend_down)` and `u16
/// shard`, then the
/// verb-specific body (see binary_codec.cc). The `correlation_id` is the
/// pipelining key: it is the binary carrier of the JSON path's `id`, every
/// response echoes it verbatim, and responses on one connection may
/// complete out of submission order across tenants (per-tenant order is
/// still structural — same shard, FIFO queue).
///
/// Error discipline differs from JSON on purpose: malformed JSON in a good
/// frame gets an error reply and the connection survives, but a payload
/// that *claims* to be binary (magic byte present) and fails to decode
/// means the peer's encoder and ours disagree — every later frame is
/// suspect, so the server answers one error frame and drops the connection
/// (sticky, like a framing violation).
inline constexpr unsigned char kBinaryMagic = 0xB1;
inline constexpr unsigned char kBinaryVersion = 1;

inline constexpr unsigned char kBinaryKindRequest = 1;
inline constexpr unsigned char kBinaryKindResponse = 2;

inline constexpr unsigned char kBinaryVerbIngest = 1;
inline constexpr unsigned char kBinaryVerbSolveCycle = 2;

inline constexpr unsigned char kBinaryStatusOk = 0;
inline constexpr unsigned char kBinaryStatusOverloaded = 1;
inline constexpr unsigned char kBinaryStatusError = 2;
/// Router-originated: the backend owning this tenant is unreachable and the
/// request was never applied anywhere — retryable, like `overloaded`, but
/// distinguishable so clients and drills can count failover traffic.
inline constexpr unsigned char kBinaryStatusBackendDown = 3;

/// True when `payload` takes the binary path (first byte is the magic).
inline bool IsBinaryFrame(std::string_view payload) {
  return !payload.empty() &&
         static_cast<unsigned char>(payload[0]) == kBinaryMagic;
}

/// --- client-side request encoders (loadgen, tests) ---

std::string EncodeBinaryIngestRequest(
    int64_t correlation_id, const std::string& tenant,
    const std::vector<prob::CountDistribution>& distributions);
std::string EncodeBinarySolveCycleRequest(int64_t correlation_id,
                                          const std::string& tenant);

/// --- server side ---

/// Decodes and validates one binary request payload into the same Request
/// the JSON parser produces (with `binary` set, so the response mirrors
/// the encoding). Any error is connection-fatal (see above).
util::StatusOr<Request> DecodeBinaryRequest(std::string_view payload);

/// Best-effort correlation id of a binary payload whose full decode failed
/// (-1 when even the fixed header is truncated) — so the final error frame
/// still echoes an id the client can match.
int64_t BinaryCorrelationIdOf(std::string_view payload);

std::string EncodeBinaryIngestOkResponse(int64_t correlation_id, int shard);
std::string EncodeBinarySolveCycleResponse(
    int64_t correlation_id, int shard,
    const service::AuditService::CycleReport& report);
std::string EncodeBinaryOverloadedResponse(int64_t correlation_id, int shard,
                                           unsigned char verb);
std::string EncodeBinaryBackendDownResponse(int64_t correlation_id,
                                            unsigned char verb);
std::string EncodeBinaryErrorResponse(int64_t correlation_id,
                                      std::string_view message);

/// --- router-side helpers ---
///
/// The correlation id sits at a fixed offset (bytes 4..11, big-endian) in
/// both request and response headers, so a proxy can remap ids without
/// decoding — or re-encoding — the verb-specific body.

/// Overwrites the correlation id in place. False when the payload is too
/// short to carry the fixed header or is not a binary frame.
bool RewriteBinaryCorrelationId(std::string* payload, int64_t correlation_id);

/// Status byte of a binary *response* payload without a full decode (-1
/// when the header is truncated or this is not a binary response frame).
int BinaryResponseStatusOf(std::string_view payload);

/// --- client-side response decoder ---

struct BinaryPolicy {
  double budget = 0.0;
  service::AuditService::Source source =
      service::AuditService::Source::kColdSolve;
  double drift = 0.0;
  double objective = 0.0;
  std::vector<double> thresholds;
};

struct BinaryResponse {
  unsigned char verb = 0;  // kBinaryVerb* (0 on errors without a verb)
  int64_t correlation_id = -1;
  unsigned char status = kBinaryStatusError;  // kBinaryStatus*
  int shard = -1;
  /// solve_cycle ok only:
  int64_t cycle = 0;
  double seconds = 0.0;
  std::vector<BinaryPolicy> policies;
  /// error only:
  std::string message;
};

util::StatusOr<BinaryResponse> DecodeBinaryResponse(std::string_view payload);

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_BINARY_CODEC_H_
