#include "server/shard.h"

#include <algorithm>
#include <utility>

#include "server/binary_codec.h"
#include "util/percentile.h"

namespace auditgame::server {

namespace {
constexpr size_t kSolveSecondsWindow = 4096;
}  // namespace

Shard::Shard(int index, core::GameInstance base_instance,
             service::AuditServiceOptions service_options,
             size_t queue_capacity, size_t max_batch, Responder responder,
             std::function<void()> on_finished)
    : index_(index),
      base_instance_(std::move(base_instance)),
      service_options_(std::move(service_options)),
      max_batch_(max_batch == 0 ? 1 : max_batch),
      queue_(queue_capacity),
      responder_(std::move(responder)),
      on_finished_(std::move(on_finished)) {}

Shard::~Shard() {
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

void Shard::Start() {
  thread_ = std::thread([this] { Run(); });
}

bool Shard::TrySubmit(ShardTask task) { return queue_.TryPush(std::move(task)); }

void Shard::Join() {
  if (thread_.joinable()) thread_.join();
}

void Shard::Run() {
  std::vector<ShardTask> batch;
  std::vector<Response> responses;
  while (queue_.PopBatch(max_batch_, &batch)) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++batches_;
    }
    responses.clear();
    responses.reserve(batch.size());
    for (const ShardTask& task : batch) Process(task, &responses);
    responder_(std::move(responses));
    responses = std::vector<Response>();
  }
  finished_.store(true, std::memory_order_release);
  if (on_finished_) on_finished_();
}

service::AuditService* Shard::TenantService(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second.get();
  auto service = std::make_unique<service::AuditService>(base_instance_,
                                                         service_options_);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  it = tenants_.emplace(tenant, std::move(service)).first;
  return it->second.get();
}

void Shard::Process(const ShardTask& task, std::vector<Response>* responses) {
  const Request& request = task.request;
  std::string response;
  switch (request.verb) {
    case Verb::kIngest: {
      service::AuditService* service = TenantService(request.tenant);
      // ParseRequest validated shape; the service validates semantics
      // (type count, pmf validity against the game). The response mirrors
      // the request's wire encoding (binary or JSON).
      util::Status status =
          service->UpdateAlertDistributions(request.distributions);
      if (status.ok()) {
        response = request.binary
                       ? EncodeBinaryIngestOkResponse(request.id, index_)
                       : MakeIngestOkResponse(request.id, request.tenant,
                                              index_);
      } else {
        response = request.binary
                       ? EncodeBinaryErrorResponse(request.id,
                                                   status.ToString())
                       : MakeErrorResponse(request.id, status.ToString());
      }
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++processed_;
      ++ingests_;
      if (!status.ok()) ++request_errors_;
      break;
    }
    case Verb::kSolveCycle: {
      service::AuditService* service = TenantService(request.tenant);
      auto report = service->RunCycle();
      if (report.ok()) {
        response = request.binary
                       ? EncodeBinarySolveCycleResponse(request.id, index_,
                                                        *report)
                       : MakeSolveCycleResponse(request.id, request.tenant,
                                                index_, *report);
      } else {
        response = request.binary
                       ? EncodeBinaryErrorResponse(request.id,
                                                   report.status().ToString())
                       : MakeErrorResponse(request.id,
                                           report.status().ToString());
      }
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++processed_;
      ++solves_;
      if (report.ok()) {
        for (const service::AuditService::CyclePolicy& policy :
             report->policies) {
          switch (policy.source) {
            case service::AuditService::Source::kCache:
              ++policies_from_cache_;
              break;
            case service::AuditService::Source::kWarmSolve:
              ++warm_solves_;
              break;
            case service::AuditService::Source::kColdSolve:
              ++cold_solves_;
              break;
          }
        }
        ++solve_samples_;
        if (solve_seconds_window_.size() < kSolveSecondsWindow) {
          solve_seconds_window_.push_back(report->seconds);
        } else {
          solve_seconds_window_[solve_seconds_next_] = report->seconds;
          solve_seconds_next_ =
              (solve_seconds_next_ + 1) % kSolveSecondsWindow;
        }
      } else {
        ++request_errors_;
      }
      break;
    }
    case Verb::kStats: {
      // The IO thread answers stats inline; one reaching a shard is a bug.
      response = MakeErrorResponse(request.id, "stats is not a shard verb");
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++processed_;
      ++request_errors_;
      break;
    }
  }
  responses->push_back(Response{task.conn_id, std::move(response)});
}

ShardStatsSnapshot Shard::Snapshot() const {
  ShardStatsSnapshot snapshot;
  snapshot.shard = index_;
  snapshot.queue_depth = queue_.size();
  snapshot.queue_capacity = queue_.capacity();
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot.tenants = static_cast<int64_t>(tenants_.size());
    snapshot.processed = processed_;
    snapshot.batches = batches_;
    snapshot.ingests = ingests_;
    snapshot.solves = solves_;
    snapshot.request_errors = request_errors_;
    snapshot.policies_from_cache = policies_from_cache_;
    snapshot.warm_solves = warm_solves_;
    snapshot.cold_solves = cold_solves_;
    snapshot.solve_samples = solve_samples_;
    window = solve_seconds_window_;
    // PolicyCache / compile-cache stats are internally synchronized; the
    // map iteration is what stats_mutex_ protects here.
    for (const auto& [tenant, service] : tenants_) {
      const service::PolicyCache::Stats cache = service->cache_stats();
      snapshot.cache.hits += cache.hits;
      snapshot.cache.misses += cache.misses;
      snapshot.cache.insertions += cache.insertions;
      snapshot.cache.evictions += cache.evictions;
      const solver::SolverEngine::CompileCacheStats compile =
          service->compile_cache_stats();
      snapshot.compile.hits += compile.hits;
      snapshot.compile.misses += compile.misses;
    }
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    snapshot.solve_seconds_p50 = util::NearestRankPercentileSorted(window, 0.50);
    snapshot.solve_seconds_p90 = util::NearestRankPercentileSorted(window, 0.90);
    snapshot.solve_seconds_p99 = util::NearestRankPercentileSorted(window, 0.99);
    snapshot.solve_seconds_max = window.back();
  }
  return snapshot;
}

}  // namespace auditgame::server
