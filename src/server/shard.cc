#include "server/shard.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/game_io.h"
#include "server/binary_codec.h"
#include "util/percentile.h"
#include "util/serializer.h"

namespace auditgame::server {

namespace {
constexpr size_t kSolveSecondsWindow = 4096;
}  // namespace

Shard::Shard(int index, core::GameInstance base_instance,
             service::AuditServiceOptions service_options,
             size_t queue_capacity, size_t max_batch, Responder responder,
             std::function<void()> on_finished,
             std::unique_ptr<ShardPersistence> persistence)
    : index_(index),
      base_instance_(std::move(base_instance)),
      service_options_(std::move(service_options)),
      max_batch_(max_batch == 0 ? 1 : max_batch),
      queue_(queue_capacity),
      responder_(std::move(responder)),
      on_finished_(std::move(on_finished)),
      persistence_(std::move(persistence)) {}

Shard::~Shard() {
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

void Shard::Start() {
  thread_ = std::thread([this] { Run(); });
}

bool Shard::TrySubmit(ShardTask task) { return queue_.TryPush(std::move(task)); }

void Shard::Join() {
  if (thread_.joinable()) thread_.join();
}

void Shard::Run() {
  std::vector<ShardTask> batch;
  std::vector<Response> responses;
  while (queue_.PopBatch(max_batch_, &batch)) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++batches_;
    }
    // Durability order per micro-batch: append every state-mutating
    // payload to the WAL, apply, group-commit, and only then release the
    // responses — a response never races the record that makes it
    // replayable. WAL IO failure degrades durability, not availability:
    // the batch is still served, the error counted.
    if (persistence_ != nullptr) {
      for (const ShardTask& task : batch) {
        if (task.wal_payload.empty()) continue;
        if (auto lsn = persistence_->AppendWal(task.wal_payload); !lsn.ok()) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++wal_errors_;
        }
      }
    }
    responses.clear();
    responses.reserve(batch.size());
    for (const ShardTask& task : batch) Process(task, &responses);
    if (persistence_ != nullptr) {
      if (util::Status committed = persistence_->CommitBatch();
          !committed.ok()) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++wal_errors_;
      }
    }
    responder_(std::move(responses));
    responses = std::vector<Response>();
    if (persistence_ != nullptr && persistence_->ShouldSnapshot()) {
      // Serialization happens here on the shard thread (cheap, memory
      // only); the write+fsync runs on the persistence writer thread, so
      // the request path never blocks on snapshot IO.
      persistence_->SnapshotAsync(SerializeState(),
                                  persistence_->next_lsn() - 1);
    }
  }
  if (persistence_ != nullptr && persistence_->options().snapshot_on_drain) {
    // Clean drain: one synchronous snapshot so the next start restores
    // instead of replaying the whole WAL.
    if (util::Status status = persistence_->FinalSnapshot(
            SerializeState(), persistence_->next_lsn() - 1);
        !status.ok()) {
      std::fprintf(stderr, "shard %d: drain snapshot failed: %s\n", index_,
                   status.ToString().c_str());
    }
  }
  finished_.store(true, std::memory_order_release);
  if (on_finished_) on_finished_();
}

util::Fingerprint Shard::ConfigFingerprint() const {
  util::FingerprintBuilder fp;
  fp.AppendString("shard-config-v1");
  const util::Fingerprint service =
      service::FingerprintServiceConfig(service_options_);
  fp.AppendU64(service.hi);
  fp.AppendU64(service.lo);
  const util::Fingerprint game = core::FingerprintGame(base_instance_);
  fp.AppendU64(game.hi);
  fp.AppendU64(game.lo);
  return fp.Build();
}

void Shard::StreamState(util::Serializer& s) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  s.Section("shard", 1);
  util::Fingerprint config = ConfigFingerprint();
  const util::Fingerprint expected = config;
  s.Object(config);
  if (s.reading() && s.ok() && config != expected) {
    s.Fail(util::FailedPreconditionError(
        "shard " + std::to_string(index_) +
        ": snapshot was recorded under a different service configuration or "
        "base game (snapshot config " + config.ToHex() + ", this server " +
        expected.ToHex() + ") — refusing to restore"));
  }
  s.I64(processed_);
  // Batch count is a scheduling artifact (micro-batch sizes depend on queue
  // timing) and WAL replay applies records one-by-one, so it is persisted
  // but kept out of the state fingerprint.
  s.TimingI64(batches_);
  s.I64(ingests_);
  s.I64(solves_);
  s.I64(request_errors_);
  s.I64(policies_from_cache_);
  s.I64(warm_solves_);
  s.I64(cold_solves_);
  s.I64(solve_samples_);
  s.VecTimingF64(solve_seconds_window_);
  s.SizeT(solve_seconds_next_);
  uint64_t num_tenants = tenants_.size();
  s.U64(num_tenants);
  if (s.reading()) {
    tenants_.clear();
    for (uint64_t i = 0; i < num_tenants && s.ok(); ++i) {
      std::string tenant;
      s.Str(tenant);
      auto service = std::make_unique<service::AuditService>(
          base_instance_, service_options_);
      s.Object(*service);
      if (s.ok()) tenants_.emplace(std::move(tenant), std::move(service));
    }
  } else {
    for (auto& [tenant, service] : tenants_) {
      std::string name = tenant;
      s.Str(name);
      s.Object(*service);
    }
  }
}

std::string Shard::SerializeState() {
  util::Serializer s = util::Serializer::Writer();
  StreamState(s);
  return s.TakeBuffer();
}

util::Fingerprint Shard::StateFingerprint() {
  util::Serializer s = util::Serializer::Fingerprinter();
  StreamState(s);
  util::FingerprintBuilder fp;
  fp.Append(s.buffer());
  return fp.Build();
}

util::Status Shard::ReplayWalPayload(const std::string& payload) {
  Request request;
  if (IsBinaryFrame(payload)) {
    ASSIGN_OR_RETURN(request, DecodeBinaryRequest(payload));
  } else {
    ASSIGN_OR_RETURN(const util::JsonValue doc, util::JsonValue::Parse(payload));
    ASSIGN_OR_RETURN(request, ParseRequest(doc));
  }
  // The original execution's response is gone with the crash; replay only
  // rebuilds state. A request that failed then fails identically now, so
  // even the error counters line up.
  std::vector<Response> discarded;
  Process(ShardTask{0, std::move(request), {}}, &discarded);
  return util::OkStatus();
}

util::Status Shard::Recover() {
  if (persistence_ == nullptr) return util::OkStatus();
  RETURN_IF_ERROR(persistence_->Recover(
      [this](const SnapshotContents& snapshot) {
        util::Serializer s = util::Serializer::Reader(snapshot.body);
        StreamState(s);
        s.ExpectExhausted();
        return s.status();
      },
      [this](const WalRecord& record) {
        return ReplayWalPayload(record.payload);
      }));
  persistence_->SetRecoveryFingerprint(StateFingerprint().ToHex());
  return util::OkStatus();
}

service::AuditService* Shard::TenantService(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second.get();
  auto service = std::make_unique<service::AuditService>(base_instance_,
                                                         service_options_);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  it = tenants_.emplace(tenant, std::move(service)).first;
  return it->second.get();
}

void Shard::Process(const ShardTask& task, std::vector<Response>* responses) {
  const Request& request = task.request;
  std::string response;
  switch (request.verb) {
    case Verb::kIngest: {
      service::AuditService* service = TenantService(request.tenant);
      // ParseRequest validated shape; the service validates semantics
      // (type count, pmf validity against the game). The response mirrors
      // the request's wire encoding (binary or JSON).
      util::Status status =
          service->UpdateAlertDistributions(request.distributions);
      if (status.ok()) {
        response = request.binary
                       ? EncodeBinaryIngestOkResponse(request.id, index_)
                       : MakeIngestOkResponse(request.id, request.tenant,
                                              index_);
      } else {
        response = request.binary
                       ? EncodeBinaryErrorResponse(request.id,
                                                   status.ToString())
                       : MakeErrorResponse(request.id, status.ToString());
      }
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++processed_;
      ++ingests_;
      if (!status.ok()) ++request_errors_;
      break;
    }
    case Verb::kSolveCycle: {
      service::AuditService* service = TenantService(request.tenant);
      auto report = service->RunCycle();
      if (report.ok()) {
        // The adversary-loop observation channel: JSON-only, opt-in, and
        // computed after the cycle so the gated hot path (binary frames,
        // no flag) never pays for a detection model it didn't ask for.
        std::vector<std::vector<double>> detection_probs;
        const std::vector<std::vector<double>>* probs_ptr = nullptr;
        if (request.observe_policy && !request.binary) {
          detection_probs.reserve(report->policies.size());
          bool all_ok = true;
          for (const service::AuditService::CyclePolicy& policy :
               report->policies) {
            auto pal = service->MixedDetectionForPolicy(policy);
            if (!pal.ok()) {
              all_ok = false;
              break;
            }
            detection_probs.push_back(*std::move(pal));
          }
          if (all_ok) probs_ptr = &detection_probs;
        }
        response = request.binary
                       ? EncodeBinarySolveCycleResponse(request.id, index_,
                                                        *report)
                       : MakeSolveCycleResponse(request.id, request.tenant,
                                                index_, *report, probs_ptr);
      } else {
        response = request.binary
                       ? EncodeBinaryErrorResponse(request.id,
                                                   report.status().ToString())
                       : MakeErrorResponse(request.id,
                                           report.status().ToString());
      }
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++processed_;
      ++solves_;
      if (report.ok()) {
        for (const service::AuditService::CyclePolicy& policy :
             report->policies) {
          switch (policy.source) {
            case service::AuditService::Source::kCache:
              ++policies_from_cache_;
              break;
            case service::AuditService::Source::kWarmSolve:
              ++warm_solves_;
              break;
            case service::AuditService::Source::kColdSolve:
              ++cold_solves_;
              break;
          }
        }
        ++solve_samples_;
        if (solve_seconds_window_.size() < kSolveSecondsWindow) {
          solve_seconds_window_.push_back(report->seconds);
        } else {
          solve_seconds_window_[solve_seconds_next_] = report->seconds;
          solve_seconds_next_ =
              (solve_seconds_next_ + 1) % kSolveSecondsWindow;
        }
      } else {
        ++request_errors_;
      }
      break;
    }
    case Verb::kStats: {
      // The IO thread answers stats inline; one reaching a shard is a bug.
      response = MakeErrorResponse(request.id, "stats is not a shard verb");
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++processed_;
      ++request_errors_;
      break;
    }
  }
  responses->push_back(Response{task.conn_id, std::move(response)});
}

ShardStatsSnapshot Shard::Snapshot() const {
  ShardStatsSnapshot snapshot;
  snapshot.shard = index_;
  snapshot.queue_depth = queue_.size();
  snapshot.queue_capacity = queue_.capacity();
  if (persistence_ != nullptr) {
    snapshot.durability = true;
    snapshot.persistence = persistence_->Stats();
  }
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot.tenants = static_cast<int64_t>(tenants_.size());
    snapshot.processed = processed_;
    snapshot.batches = batches_;
    snapshot.ingests = ingests_;
    snapshot.solves = solves_;
    snapshot.request_errors = request_errors_;
    snapshot.wal_errors = wal_errors_;
    snapshot.policies_from_cache = policies_from_cache_;
    snapshot.warm_solves = warm_solves_;
    snapshot.cold_solves = cold_solves_;
    snapshot.solve_samples = solve_samples_;
    window = solve_seconds_window_;
    // PolicyCache / compile-cache stats are internally synchronized; the
    // map iteration is what stats_mutex_ protects here.
    for (const auto& [tenant, service] : tenants_) {
      const service::PolicyCache::Stats cache = service->cache_stats();
      snapshot.cache.hits += cache.hits;
      snapshot.cache.misses += cache.misses;
      snapshot.cache.insertions += cache.insertions;
      snapshot.cache.evictions += cache.evictions;
      const solver::SolverEngine::CompileCacheStats compile =
          service->compile_cache_stats();
      snapshot.compile.hits += compile.hits;
      snapshot.compile.misses += compile.misses;
    }
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    snapshot.solve_seconds_p50 = util::NearestRankPercentileSorted(window, 0.50);
    snapshot.solve_seconds_p90 = util::NearestRankPercentileSorted(window, 0.90);
    snapshot.solve_seconds_p99 = util::NearestRankPercentileSorted(window, 0.99);
    snapshot.solve_seconds_max = window.back();
  }
  return snapshot;
}

}  // namespace auditgame::server
