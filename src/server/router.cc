#include "server/router.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "server/binary_codec.h"

namespace auditgame::server {

namespace {
constexpr int kAcceptorPollMs = 250;
constexpr int kDrainPollMs = 50;

unsigned char BinaryVerbOf(Verb verb) {
  return verb == Verb::kIngest ? kBinaryVerbIngest : kBinaryVerbSolveCycle;
}

/// Splits "host:port"; false on anything unparsable.
bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  long value = 0;
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    if (spec[i] < '0' || spec[i] > '9') return false;
    value = value * 10 + (spec[i] - '0');
    if (value > 65535) return false;
  }
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return true;
}
}  // namespace

Router::Router(RouterOptions options) : options_(std::move(options)) {
  if (options_.num_reactors < 1) options_.num_reactors = 1;
  if (options_.virtual_nodes < 1) options_.virtual_nodes = 1;
  if (options_.replica_retries < 0) options_.replica_retries = 0;
  if (options_.replica_retry_backoff_ms < 1)
    options_.replica_retry_backoff_ms = 1;
  full_ring_ = HashRing(options_.virtual_nodes);
  live_ring_ = HashRing(options_.virtual_nodes);
}

Router::~Router() {
  // Channel threads call back into this object (and post into reactor
  // inboxes), so they must be gone before anything else is torn down.
  for (auto& channel : channels_) {
    if (channel) channel->BeginShutdown();
  }
  for (auto& channel : channels_) {
    if (channel) channel->Join();
  }
  for (auto& reactor : reactors_) reactor->Kill();
  for (auto& reactor : reactors_) reactor->Join();
}

util::Status Router::Start() {
  if (started_) return util::FailedPreconditionError("already started");
  if (options_.backends.empty()) {
    return util::InvalidArgumentError("router needs at least one backend");
  }

  std::vector<std::pair<std::string, uint16_t>> backend_addrs;
  backend_addrs.reserve(options_.backends.size());
  for (size_t i = 0; i < options_.backends.size(); ++i) {
    std::string host;
    uint16_t port = 0;
    if (!ParseHostPort(options_.backends[i], &host, &port)) {
      return util::InvalidArgumentError("bad backend address: " +
                                        options_.backends[i]);
    }
    backend_addrs.emplace_back(std::move(host), port);
    backend_names_.push_back(options_.backends[i]);
    full_ring_.AddNode(static_cast<int>(i), options_.backends[i]);
  }

  ASSIGN_OR_RETURN(listener_, net::ListenTcp(options_.host, options_.port));
  ASSIGN_OR_RETURN(port_, net::LocalPort(listener_));
  ASSIGN_OR_RETURN(wake_, net::WakeChannel::Make());
  acceptor_poller_ = net::MakePoller(options_.poller_backend);
  if (!acceptor_poller_) {
    return util::InvalidArgumentError(
        "requested poller backend unavailable on this platform");
  }
  acceptor_poller_->Watch(listener_.fd(), /*read=*/true, /*write=*/false);
  acceptor_poller_->Watch(wake_.read_fd(), /*read=*/true, /*write=*/false);

  ReactorOptions reactor_options;
  reactor_options.max_frame_payload = options_.max_frame_payload;
  reactor_options.max_write_buffer = options_.max_write_buffer;
  reactor_options.idle_timeout_ms = options_.idle_timeout_ms;
  reactor_options.poller_backend = options_.poller_backend;
  reactors_.reserve(static_cast<size_t>(options_.num_reactors));
  for (int i = 0; i < options_.num_reactors; ++i) {
    reactors_.push_back(std::make_unique<Reactor>(
        i, reactor_options,
        [this](Reactor& reactor, uint64_t conn_id,
               const std::string& payload) {
          return HandleFrame(reactor, conn_id, payload);
        }));
  }
  for (auto& reactor : reactors_) {
    RETURN_IF_ERROR(reactor->Start());
  }

  net::FrameChannelOptions channel_options = options_.channel;
  channel_options.max_frame_payload = options_.max_frame_payload;
  channel_options.poller_backend = options_.poller_backend;
  channels_.reserve(backend_addrs.size());
  for (size_t i = 0; i < backend_addrs.size(); ++i) {
    net::FrameChannel::Events events;
    events.on_frame = [this, i](std::string payload) {
      OnBackendFrame(i, std::move(payload));
    };
    events.on_state = [this, i](bool up) { OnBackendState(i, up); };
    channels_.push_back(std::make_unique<net::FrameChannel>(
        backend_addrs[i].first, backend_addrs[i].second, channel_options,
        std::move(events)));
  }
  for (auto& channel : channels_) {
    RETURN_IF_ERROR(channel->Start());
  }

  // Give the backends a moment to come up; serving starts regardless
  // (still-down backends answer `backend_down` until they connect).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.backend_connect_wait_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const bool all_up =
        std::all_of(channels_.begin(), channels_.end(),
                    [](const auto& channel) { return channel->up(); });
    if (all_up) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  last_ping_ = std::chrono::steady_clock::now();
  started_ = true;
  return util::OkStatus();
}

void Router::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  wake_.Notify();
}

int Router::PrimaryBackendFor(const std::string& tenant) {
  const uint64_t point = HashRing::PointForTenant(tenant);
  std::lock_guard<std::mutex> lock(mutex_);
  return live_ring_.PrimaryFor(point);
}

int Router::SuccessorBackendFor(const std::string& tenant) {
  const uint64_t point = HashRing::PointForTenant(tenant);
  std::lock_guard<std::mutex> lock(mutex_);
  return live_ring_.SuccessorFor(point);
}

int64_t Router::LiveConnectionEstimate() const {
  int64_t closed = 0;
  for (const auto& reactor : reactors_) closed += reactor->closed_connections();
  return accepted_connections_.load(std::memory_order_relaxed) - closed;
}

void Router::AdmitConnections(std::vector<net::Socket> sockets,
                              bool enforce_cap) {
  int64_t live = LiveConnectionEstimate();
  for (net::Socket& socket : sockets) {
    if (enforce_cap && options_.max_connections > 0 &&
        live >= static_cast<int64_t>(options_.max_connections)) {
      accept_rejections_.fetch_add(1, std::memory_order_relaxed);
      socket.Close();
      continue;
    }
    const uint64_t conn_id = ++next_conn_id_;
    accepted_connections_.fetch_add(1, std::memory_order_relaxed);
    ++live;
    reactors_[conn_id % reactors_.size()]->Adopt(std::move(socket), conn_id);
  }
}

void Router::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  if (listener_.valid()) {
    // Same RST-avoidance as AuditServer: accept the already-handshaken
    // backlog so the drain can answer it instead of resetting it.
    if (auto accepted = net::AcceptAll(listener_); accepted.ok()) {
      AdmitConnections(std::move(*accepted), /*enforce_cap=*/false);
    }
    acceptor_poller_->Forget(listener_.fd());
    listener_.Close();
  }
  for (auto& reactor : reactors_) reactor->BeginDrain();
}

void Router::MaybePing() {
  if (options_.ping_interval_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_ping_ <
      std::chrono::milliseconds(options_.ping_interval_ms)) {
    return;
  }
  last_ping_ = now;
  for (auto& channel : channels_) {
    if (channel->up()) {
      // Correlation id 0 is reserved for pings; OnBackendFrame swallows
      // the response. A refusal is fine — the point is keeping traffic
      // outstanding on healthy channels.
      (void)channel->TrySubmit(MakeStatsRequest(0));
    }
  }
}

util::Status Router::Run() {
  if (!started_) return util::FailedPreconditionError("Start() first");
  std::chrono::steady_clock::time_point drain_deadline;
  bool killed = false;

  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) &&
        !draining_.load(std::memory_order_relaxed)) {
      BeginDrain();
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.drain_timeout_ms);
    }
    if (draining_.load(std::memory_order_relaxed)) {
      const bool all_drained =
          std::all_of(reactors_.begin(), reactors_.end(),
                      [](const auto& reactor) { return reactor->drained(); });
      if (all_drained) break;
      if (!killed && std::chrono::steady_clock::now() >= drain_deadline) {
        for (auto& reactor : reactors_) reactor->Kill();
        killed = true;
      }
    }

    auto events =
        acceptor_poller_->Wait(draining_.load(std::memory_order_relaxed)
                               ? kDrainPollMs
                               : kAcceptorPollMs);
    RETURN_IF_ERROR(events.status());
    for (const net::PollEvent& event : *events) {
      if (event.fd == wake_.read_fd()) {
        wake_.Drain();
        continue;
      }
      if (listener_.valid() && event.fd == listener_.fd()) {
        auto accepted = net::AcceptAll(listener_);
        if (!accepted.ok()) continue;
        AdmitConnections(std::move(*accepted), /*enforce_cap=*/true);
      }
    }

    if (!draining_.load(std::memory_order_relaxed)) MaybePing();
  }

  // Channels first (stops the response stream into reactor inboxes), then
  // the reactors.
  for (auto& channel : channels_) channel->BeginShutdown();
  for (auto& channel : channels_) channel->Join();
  for (auto& reactor : reactors_) reactor->Kill();
  util::Status status = util::OkStatus();
  for (auto& reactor : reactors_) {
    reactor->Join();
    if (status.ok()) status = reactor->status();
    reactor->DrainLeftovers();
  }
  return status;
}

bool Router::HandleFrame(Reactor& reactor, uint64_t conn_id,
                         const std::string& payload) {
  if (IsBinaryFrame(payload)) {
    reactor.SetBinaryMode(conn_id);
    auto request = DecodeBinaryRequest(payload);
    if (!request.ok()) {
      reactor.CountProtocolError();
      reactor.Reply(conn_id,
                    EncodeBinaryErrorResponse(BinaryCorrelationIdOf(payload),
                                              request.status().ToString()));
      reactor.Poison(conn_id);
      return false;
    }
    Route(reactor, conn_id, *std::move(request), payload);
    return true;
  }

  auto doc = util::JsonValue::Parse(payload);
  if (!doc.ok()) {
    reactor.CountProtocolError();
    if (reactor.binary_mode(conn_id)) {
      reactor.Reply(conn_id,
                    EncodeBinaryErrorResponse(-1, doc.status().ToString()));
      reactor.Poison(conn_id);
      return false;
    }
    reactor.Reply(conn_id, MakeErrorResponse(-1, doc.status().ToString()));
    return true;
  }
  auto request = ParseRequest(*doc);
  if (!request.ok()) {
    reactor.CountProtocolError();
    reactor.Reply(conn_id, MakeErrorResponse(RequestIdOf(*doc),
                                             request.status().ToString()));
    return true;
  }

  if (request->verb == Verb::kStats) {
    reactor.Reply(conn_id, MakeStatsResponse(request->id, StatsBody()));
    return true;
  }

  Route(reactor, conn_id, *std::move(request), payload);
  return true;
}

void Router::Route(Reactor& reactor, uint64_t conn_id, Request request,
                   const std::string& payload) {
  const int64_t client_id = request.id;
  const bool binary = request.binary;
  const unsigned char binary_verb = BinaryVerbOf(request.verb);

  if (draining_.load(std::memory_order_acquire)) {
    // Same retryable refusal a draining AuditServer produces.
    reactor.CountOverloaded();
    reactor.Reply(conn_id,
                  binary ? EncodeBinaryOverloadedResponse(client_id, -1,
                                                          binary_verb)
                         : MakeOverloadedResponse(client_id, request.tenant,
                                                  -1));
    return;
  }

  const uint64_t point = HashRing::PointForTenant(request.tenant);

  std::unique_lock<std::mutex> lock(mutex_);
  const int primary = live_ring_.PrimaryFor(point);
  if (primary < 0) {
    lock.unlock();
    backend_down_replies_.fetch_add(1, std::memory_order_relaxed);
    reactor.Reply(conn_id,
                  binary ? EncodeBinaryBackendDownResponse(client_id,
                                                           binary_verb)
                         : MakeBackendDownResponse(client_id, request.tenant));
    return;
  }

  PendingOp op;
  op.conn_id = conn_id;
  op.client_id = client_id;
  op.binary = binary;
  op.verb = request.verb;
  op.tenant = request.tenant;
  op.rerouted = primary != full_ring_.PrimaryFor(point);
  op.primary_backend = primary;

  const int64_t op_id = next_op_id_++;
  const int64_t primary_sub = op_id << 1;
  const int64_t replica_sub = primary_sub | 1;

  // The forwarded payloads: binary frames get the id patched in place
  // (fixed offset); JSON is rebuilt from the parsed request — the builders
  // emit shortest-round-trip doubles, so the values are bit-identical.
  std::string primary_payload;
  if (binary) {
    primary_payload = payload;
    RewriteBinaryCorrelationId(&primary_payload, primary_sub);
  } else {
    primary_payload =
        request.verb == Verb::kIngest
            ? MakeIngestRequest(primary_sub, request.tenant,
                                request.distributions)
            : MakeSolveCycleRequest(primary_sub, request.tenant);
  }

  // Replica-first submission: if the mirror cannot even be queued the op
  // is refused outright (nothing applied anywhere), and if the primary
  // then fails the mirror still applies — the replica may run ahead of
  // clients but never behind, which is the failover-order invariant.
  const int replica =
      options_.replicate ? live_ring_.SuccessorFor(point) : -1;
  if (replica >= 0) {
    std::string replica_payload;
    if (binary) {
      replica_payload = payload;
      RewriteBinaryCorrelationId(&replica_payload, replica_sub);
    } else {
      replica_payload =
          request.verb == Verb::kIngest
              ? MakeIngestRequest(replica_sub, request.tenant,
                                  request.distributions)
              : MakeSolveCycleRequest(replica_sub, request.tenant);
    }
    const auto submitted = channels_[replica]->TrySubmit(replica_payload);
    if (submitted == net::FrameChannel::Submit::kAccepted) {
      op.replica_backend = replica;
      op.replica_payload = std::move(replica_payload);
      replicated_.fetch_add(1, std::memory_order_relaxed);
    } else if (submitted == net::FrameChannel::Submit::kFull) {
      // Backpressure before anything was applied: cleanly retryable.
      lock.unlock();
      replication_rejected_.fetch_add(1, std::memory_order_relaxed);
      reactor.CountOverloaded();
      reactor.Reply(conn_id,
                    binary ? EncodeBinaryOverloadedResponse(client_id, -1,
                                                            binary_verb)
                           : MakeOverloadedResponse(client_id, op.tenant, -1));
      return;
    } else {
      // Successor unreachable: serve unmirrored rather than not at all.
      replication_skipped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  op.replica_done = op.replica_backend < 0;

  const auto submitted = channels_[primary]->TrySubmit(std::move(primary_payload));
  if (submitted != net::FrameChannel::Submit::kAccepted) {
    const bool full = submitted == net::FrameChannel::Submit::kFull;
    std::string reply =
        binary ? (full ? EncodeBinaryOverloadedResponse(client_id, -1,
                                                        binary_verb)
                       : EncodeBinaryBackendDownResponse(client_id,
                                                         binary_verb))
               : (full ? MakeOverloadedResponse(client_id, op.tenant, -1)
                       : MakeBackendDownResponse(client_id, op.tenant));
    if (op.replica_backend >= 0) {
      // The mirror is already on its way; keep the op (released) so its
      // response has a home, then answer the client right now.
      op.primary_done = true;
      op.client_released = true;
      ops_.emplace(op_id, std::move(op));
    }
    lock.unlock();
    if (full) {
      reactor.CountOverloaded();
    } else {
      backend_down_replies_.fetch_add(1, std::memory_order_relaxed);
    }
    reactor.Reply(conn_id, reply);
    return;
  }

  forwarded_.fetch_add(1, std::memory_order_relaxed);
  if (op.rerouted) rerouted_ops_.fetch_add(1, std::memory_order_relaxed);
  ops_.emplace(op_id, std::move(op));
  lock.unlock();
  reactor.OnSubmitted(conn_id);  // settled by the posted response
}

void Router::CountRerouteSources(const PendingOp& op,
                                 const std::string& payload,
                                 const util::JsonValue* doc) {
  if (op.binary) {
    auto response = DecodeBinaryResponse(payload);
    if (!response.ok() || response->status != kBinaryStatusOk) return;
    for (const BinaryPolicy& policy : response->policies) {
      switch (policy.source) {
        case service::AuditService::Source::kCache:
          post_failover_cache_hits_.fetch_add(1, std::memory_order_relaxed);
          break;
        case service::AuditService::Source::kWarmSolve:
          post_failover_warm_solves_.fetch_add(1, std::memory_order_relaxed);
          break;
        case service::AuditService::Source::kColdSolve:
          post_failover_cold_solves_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    return;
  }
  if (doc == nullptr) return;
  auto status = doc->GetString("status");
  if (!status.ok() || *status != "ok") return;
  const util::JsonValue* policies = doc->Find("policies");
  if (policies == nullptr || !policies->is_array()) return;
  for (const util::JsonValue& policy : policies->as_array()) {
    auto source = policy.GetString("source");
    if (!source.ok()) continue;
    if (*source == "cache") {
      post_failover_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    } else if (*source == "warm") {
      post_failover_warm_solves_.fetch_add(1, std::memory_order_relaxed);
    } else if (*source == "cold") {
      post_failover_cold_solves_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Router::OnBackendFrame(size_t backend, std::string payload) {
  (void)backend;
  const bool binary = IsBinaryFrame(payload);
  util::JsonValue doc;
  int64_t sub_id = -1;
  if (binary) {
    sub_id = BinaryCorrelationIdOf(payload);
  } else {
    auto parsed = util::JsonValue::Parse(payload);
    if (!parsed.ok() || !parsed->is_object()) {
      backend_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    doc = *std::move(parsed);
    if (auto id = doc.GetNumber("id"); id.ok()) {
      sub_id = static_cast<int64_t>(*id);
    }
  }
  if (sub_id == 0) return;  // ping response
  if (sub_id < 0) {
    backend_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int64_t op_id = sub_id >> 1;
  const bool is_replica = (sub_id & 1) != 0;

  std::vector<Shard::Response> releases;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ops_.find(op_id);
    if (it == ops_.end()) {
      stray_responses_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    PendingOp& op = it->second;

    if (is_replica) {
      if (op.replica_done) {
        stray_responses_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      bool overloaded;
      bool error;
      if (binary) {
        const int status = BinaryResponseStatusOf(payload);
        overloaded = status == kBinaryStatusOverloaded;
        error = status != kBinaryStatusOk && !overloaded;
      } else {
        auto status = doc.GetString("status");
        overloaded = status.ok() && *status == "overloaded";
        error = !status.ok() || (*status != "ok" && !overloaded);
      }
      if (overloaded && !op.client_released &&
          op.replica_attempts < options_.replica_retries &&
          op.replica_backend >= 0) {
        // `overloaded` means not-applied: retry until the mirror lands so
        // the replica never falls behind what the client will observe.
        ++op.replica_attempts;
        const auto retried = channels_[op.replica_backend]->TrySubmitAfter(
            op.replica_payload, options_.replica_retry_backoff_ms);
        if (retried == net::FrameChannel::Submit::kAccepted) {
          replica_retries_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        replication_abandoned_.fetch_add(1, std::memory_order_relaxed);
      } else if (overloaded) {
        replication_abandoned_.fetch_add(1, std::memory_order_relaxed);
      } else if (error) {
        replication_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      op.replica_done = true;
      op.replica_payload.clear();
    } else {
      if (op.primary_done) {
        stray_responses_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (op.rerouted && op.verb == Verb::kSolveCycle) {
        CountRerouteSources(op, payload, binary ? nullptr : &doc);
      }
      if (binary) {
        RewriteBinaryCorrelationId(&payload, op.client_id);
        op.primary_response = std::move(payload);
      } else {
        doc.as_object()["id"] = static_cast<double>(op.client_id);
        op.primary_response = doc.Dump();
      }
      op.primary_done = true;
    }

    if (op.primary_done && op.replica_done) {
      if (!op.client_released) {
        releases.push_back(
            Shard::Response{op.conn_id, std::move(op.primary_response)});
      }
      ops_.erase(it);
    }
  }
  PostReleases(std::move(releases));
}

void Router::OnBackendState(size_t backend, bool up) {
  std::vector<Shard::Response> releases;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (up) {
      live_ring_.AddNode(static_cast<int>(backend), backend_names_[backend]);
      return;
    }
    const bool was_live = live_ring_.HasNode(static_cast<int>(backend));
    live_ring_.RemoveNode(static_cast<int>(backend));
    // Channels are torn down as part of the router's own graceful stop;
    // only a live backend lost mid-service counts as a failover.
    if (was_live && !draining_.load(std::memory_order_relaxed)) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }

    // Every op with a leg on this backend just lost it: the channel
    // dropped its queue, so no response will ever come. Resolve them now —
    // primaries answer `backend_down` (retryable), mirrors are abandoned.
    for (auto it = ops_.begin(); it != ops_.end();) {
      PendingOp& op = it->second;
      if (op.replica_backend == static_cast<int>(backend) &&
          !op.replica_done) {
        op.replica_done = true;
        op.replica_payload.clear();
        replication_abandoned_.fetch_add(1, std::memory_order_relaxed);
      }
      if (op.primary_backend == static_cast<int>(backend) &&
          !op.primary_done) {
        op.primary_done = true;
        op.primary_response =
            op.binary ? EncodeBinaryBackendDownResponse(op.client_id,
                                                        BinaryVerbOf(op.verb))
                      : MakeBackendDownResponse(op.client_id, op.tenant);
        backend_down_replies_.fetch_add(1, std::memory_order_relaxed);
      }
      if (op.primary_done && op.replica_done) {
        if (!op.client_released) {
          releases.push_back(
              Shard::Response{op.conn_id, std::move(op.primary_response)});
        }
        it = ops_.erase(it);
      } else {
        ++it;
      }
    }
  }
  PostReleases(std::move(releases));
}

void Router::PostReleases(std::vector<Shard::Response> releases) {
  if (releases.empty()) return;
  const size_t n = reactors_.size();
  if (n == 1) {
    reactors_[0]->PostResponses(std::move(releases));
    return;
  }
  std::vector<std::vector<Shard::Response>> per_reactor(n);
  for (Shard::Response& response : releases) {
    per_reactor[response.conn_id % n].push_back(std::move(response));
  }
  for (size_t r = 0; r < n; ++r) {
    if (!per_reactor[r].empty()) {
      reactors_[r]->PostResponses(std::move(per_reactor[r]));
    }
  }
}

util::JsonValue::Object Router::StatsBody() {
  int64_t active = 0, frames_in = 0, frames_out = 0, protocol_errors = 0;
  int64_t overloaded = 0, slow_closes = 0, orphaned = 0, idle_closes = 0;
  for (const auto& reactor : reactors_) {
    active += reactor->active_connections();
    frames_in += reactor->frames_in();
    frames_out += reactor->frames_out();
    protocol_errors += reactor->protocol_errors();
    overloaded += reactor->overloaded();
    slow_closes += reactor->slow_consumer_closes();
    orphaned += reactor->orphaned_responses();
    idle_closes += reactor->idle_closes();
  }

  util::JsonValue::Object body;
  util::JsonValue::Object server;
  server["role"] = "router";
  server["active_connections"] = static_cast<double>(active);
  server["accepted_connections"] = static_cast<double>(
      accepted_connections_.load(std::memory_order_relaxed));
  server["accept_rejections"] = static_cast<double>(
      accept_rejections_.load(std::memory_order_relaxed));
  server["frames_in"] = static_cast<double>(frames_in);
  server["frames_out"] = static_cast<double>(frames_out);
  server["protocol_errors"] = static_cast<double>(protocol_errors);
  server["overloaded"] = static_cast<double>(overloaded);
  server["slow_consumer_closes"] = static_cast<double>(slow_closes);
  server["orphaned_responses"] = static_cast<double>(orphaned);
  server["idle_closes"] = static_cast<double>(idle_closes);
  server["reactors"] = static_cast<int>(reactors_.size());
  server["poller"] = std::string(
      reactors_.empty() ? "none" : reactors_.front()->backend_name());
  server["draining"] = draining_.load(std::memory_order_relaxed);
  body["server"] = std::move(server);

  util::JsonValue::Object router = ReportBody();
  size_t live = 0;
  size_t pending_ops = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live = live_ring_.size();
    pending_ops = ops_.size();
  }
  router["live_backends"] = static_cast<double>(live);
  router["pending_ops"] = static_cast<double>(pending_ops);

  util::JsonValue::Array backends;
  backends.reserve(channels_.size());
  for (size_t i = 0; i < channels_.size(); ++i) {
    const auto& channel = channels_[i];
    util::JsonValue::Object obj;
    obj["backend"] = static_cast<int>(i);
    obj["address"] = backend_names_[i];
    obj["up"] = channel->up();
    obj["frames_sent"] = static_cast<double>(channel->frames_sent());
    obj["frames_received"] = static_cast<double>(channel->frames_received());
    obj["connects"] = static_cast<double>(channel->connects());
    obj["disconnects"] = static_cast<double>(channel->disconnects());
    obj["response_timeouts"] =
        static_cast<double>(channel->response_timeouts());
    obj["rejected_full"] = static_cast<double>(channel->rejected_full());
    obj["rejected_down"] = static_cast<double>(channel->rejected_down());
    obj["dropped_on_disconnect"] =
        static_cast<double>(channel->dropped_on_disconnect());
    obj["outstanding"] = static_cast<double>(channel->outstanding());
    backends.push_back(std::move(obj));
  }
  router["backends"] = std::move(backends);
  body["router"] = std::move(router);
  return body;
}

util::JsonValue::Object Router::ReportBody() {
  const auto load = [](const std::atomic<int64_t>& counter) {
    return static_cast<double>(counter.load(std::memory_order_relaxed));
  };
  const int64_t cache_hits =
      post_failover_cache_hits_.load(std::memory_order_relaxed);
  const int64_t warm = post_failover_warm_solves_.load(std::memory_order_relaxed);
  const int64_t cold = post_failover_cold_solves_.load(std::memory_order_relaxed);

  util::JsonValue::Object body;
  body["configured_backends"] = static_cast<int>(options_.backends.size());
  body["virtual_nodes"] = options_.virtual_nodes;
  body["replicate"] = options_.replicate;
  body["forwarded_requests"] = load(forwarded_);
  body["replicated_requests"] = load(replicated_);
  body["replica_retries"] = load(replica_retries_);
  body["replication_skipped"] = load(replication_skipped_);
  body["replication_rejected"] = load(replication_rejected_);
  body["replication_abandoned"] = load(replication_abandoned_);
  body["replication_errors"] = load(replication_errors_);
  body["backend_down_responses"] = load(backend_down_replies_);
  body["rerouted_requests"] = load(rerouted_ops_);
  body["failovers"] = load(failovers_);
  body["stray_responses"] = load(stray_responses_);
  body["backend_protocol_errors"] = load(backend_protocol_errors_);
  body["post_failover_cache_hits"] = static_cast<double>(cache_hits);
  body["post_failover_warm_solves"] = static_cast<double>(warm);
  body["post_failover_cold_solves"] = static_cast<double>(cold);
  body["backend_failover_observed"] =
      failovers_.load(std::memory_order_relaxed) > 0;
  body["warm_hit_after_failover"] = cache_hits + warm > 0;
  const int64_t post_total = cache_hits + warm + cold;
  body["post_failover_warm_hit_ratio"] =
      post_total > 0
          ? static_cast<double>(cache_hits + warm) /
                static_cast<double>(post_total)
          : 0.0;
  return body;
}

}  // namespace auditgame::server
