#include "server/audit_server.h"

#include <errno.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "util/hash.h"

namespace auditgame::server {

namespace {
/// Poll granularity: fast enough that a drain or stop request is noticed
/// promptly even if the wake byte is lost, cheap enough to idle on.
constexpr int kIdlePollMs = 500;
constexpr int kDrainPollMs = 50;
}  // namespace

AuditServer::AuditServer(core::GameInstance base_instance,
                         AuditServerOptions options)
    : options_(std::move(options)), base_instance_(std::move(base_instance)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
}

AuditServer::~AuditServer() {
  // Join the shard workers before any other member dies: their responder
  // lambdas touch response_mutex_/responses_, which are declared after
  // shards_ and would otherwise be destroyed first on paths where Run()
  // never joined (Start() without Run(), or Run() failing early). Nothing
  // can be delivered anymore, so the backlog is discarded, not drained.
  for (auto& shard : shards_) shard->DiscardPending();
  for (auto& shard : shards_) shard->Join();
}

size_t AuditServer::ShardForTenant(const std::string& tenant,
                                   size_t num_shards) {
  util::Fnv1a hasher;
  hasher.AppendString(tenant);
  return static_cast<size_t>(hasher.value() % num_shards);
}

util::Status AuditServer::Start() {
  if (started_) return util::FailedPreconditionError("already started");
  ASSIGN_OR_RETURN(listener_,
                   net::ListenTcp(options_.host, options_.port));
  ASSIGN_OR_RETURN(port_, net::LocalPort(listener_));
  auto pipe = net::MakeWakePipe();
  RETURN_IF_ERROR(pipe.status());
  wake_rx_ = std::move(pipe->first);
  wake_tx_ = std::move(pipe->second);
  poller_.Watch(listener_.fd(), /*read=*/true, /*write=*/false);
  poller_.Watch(wake_rx_.fd(), /*read=*/true, /*write=*/false);

  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, base_instance_, options_.service, options_.queue_capacity,
        options_.max_batch,
        [this](std::vector<Shard::Response> batch) {
          {
            std::lock_guard<std::mutex> lock(response_mutex_);
            for (Shard::Response& response : batch) {
              responses_.push_back(PendingResponse{
                  response.conn_id, std::move(response.payload)});
            }
          }
          WakeLoop();
        },
        [this] { WakeLoop(); }));
  }
  for (auto& shard : shards_) shard->Start();
  started_ = true;
  return util::OkStatus();
}

void AuditServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  // write(2) is async-signal-safe; a full pipe already guarantees a wakeup.
  if (wake_tx_.valid()) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_tx_.fd(), &byte, 1);
  }
}

void AuditServer::WakeLoop() {
  if (wake_tx_.valid()) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_tx_.fd(), &byte, 1);
  }
}

void AuditServer::BeginDrain() {
  draining_ = true;
  if (listener_.valid()) {
    // Closing a listening socket resets every handshake-complete
    // connection still waiting in its accept queue — and those peers may
    // already have written requests. Accept them first so the drain can
    // answer them (with `overloaded`) instead of RST-ing them away.
    if (auto accepted = net::AcceptAll(listener_); accepted.ok()) {
      RegisterConnections(std::move(*accepted));
    }
    poller_.Forget(listener_.fd());
    listener_.Close();
  }
  for (auto& shard : shards_) shard->BeginDrain();
}

void AuditServer::RegisterConnections(std::vector<net::Socket> sockets) {
  for (net::Socket& socket : sockets) {
    const uint64_t conn_id = next_conn_id_++;
    const int fd = socket.fd();
    connections_.emplace(
        conn_id,
        ConnState(net::Connection(std::move(socket),
                                  options_.max_frame_payload,
                                  options_.max_write_buffer)));
    fd_to_conn_[fd] = conn_id;
    poller_.Watch(fd, /*read=*/true, /*write=*/false);
    ++accepted_connections_;
  }
}

bool AuditServer::DrainComplete() {
  for (const auto& shard : shards_) {
    if (!shard->finished()) return false;
  }
  {
    std::lock_guard<std::mutex> lock(response_mutex_);
    if (!responses_.empty()) return false;
  }
  for (const auto& [conn_id, state] : connections_) {
    if (state.conn.wants_write()) return false;
  }
  return true;
}

util::Status AuditServer::Run() {
  if (!started_) return util::FailedPreconditionError("Start() first");
  std::chrono::steady_clock::time_point drain_deadline;

  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.drain_timeout_ms);
    }
    if (draining_ &&
        std::chrono::steady_clock::now() >= drain_deadline) {
      break;
    }

    auto events = poller_.Wait(draining_ ? kDrainPollMs : kIdlePollMs);
    RETURN_IF_ERROR(events.status());
    const bool idle_poll = events->empty();

    for (const net::PollEvent& event : *events) {
      if (event.fd == wake_rx_.fd()) {
        char buf[256];
        while (::read(wake_rx_.fd(), buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (listener_.valid() && event.fd == listener_.fd()) {
        auto accepted = net::AcceptAll(listener_);
        if (!accepted.ok()) continue;  // transient; the listener stays up
        RegisterConnections(std::move(*accepted));
        continue;
      }

      const auto fd_it = fd_to_conn_.find(event.fd);
      if (fd_it == fd_to_conn_.end()) continue;
      const uint64_t conn_id = fd_it->second;

      if (event.readable || event.hangup) {
        auto conn_it = connections_.find(conn_id);
        if (conn_it == connections_.end()) continue;
        std::vector<std::string> frames;
        auto open = conn_it->second.conn.ReadFrames(&frames);
        frames_in_ += static_cast<int64_t>(frames.size());
        for (const std::string& frame : frames) HandleFrame(conn_id, frame);
        // Re-find: handling a frame can close the connection (slow
        // consumer) and invalidate the iterator.
        conn_it = connections_.find(conn_id);
        if (conn_it == connections_.end()) continue;
        if (!open.ok() || !*open) {
          // Peer closed its write side (or broke framing): stop reading,
          // but keep the connection until buffered output and in-flight
          // shard responses are settled — pipelined requests before a
          // half-close still deserve answers.
          conn_it->second.read_closed = true;
          UpdateInterest(conn_id);
          MaybeFinishConnection(conn_id);
          continue;
        }
      }
      if (event.writable) {
        auto conn_it = connections_.find(conn_id);
        if (conn_it == connections_.end()) continue;
        if (!conn_it->second.conn.Flush()) {
          CloseConnection(conn_id);
          continue;
        }
        UpdateInterest(conn_id);
        MaybeFinishConnection(conn_id);
      }
    }

    DeliverResponses();

    // Exit only off an *empty* poll: anything the kernel still buffered on
    // a connection has then been read and answered (requests arriving
    // after the stop get `overloaded` from the closed queues), so nothing
    // is dropped in silence.
    if (draining_ && idle_poll && DrainComplete()) break;
  }

  // Reclaim the shard threads, then drop any connections still open. On a
  // clean drain the queues are already empty and DiscardPending is a
  // no-op; on the deadline path it abandons the backlog so Join() returns
  // after at most one in-flight solve — the deadline genuinely bounds
  // shutdown, since those answers could no longer be delivered anyway.
  for (auto& shard : shards_) shard->DiscardPending();
  for (auto& shard : shards_) shard->Join();
  DeliverResponses();  // last-gasp flush of responses that raced the exit
  connections_.clear();
  fd_to_conn_.clear();
  return util::OkStatus();
}

void AuditServer::DeliverResponses() {
  std::vector<PendingResponse> batch;
  {
    std::lock_guard<std::mutex> lock(response_mutex_);
    batch.swap(responses_);
  }
  for (PendingResponse& response : batch) {
    Reply(response.conn_id, response.payload, /*from_shard=*/true);
  }
}

void AuditServer::HandleFrame(uint64_t conn_id, const std::string& payload) {
  auto doc = util::JsonValue::Parse(payload);
  if (!doc.ok()) {
    // Malformed JSON in a well-formed frame: answer with an error frame and
    // keep the connection — the stream itself is still in sync.
    ++protocol_errors_;
    Reply(conn_id, MakeErrorResponse(-1, doc.status().ToString()));
    return;
  }
  auto request = ParseRequest(*doc);
  if (!request.ok()) {
    ++protocol_errors_;
    Reply(conn_id,
          MakeErrorResponse(RequestIdOf(*doc), request.status().ToString()));
    return;
  }

  if (request->verb == Verb::kStats) {
    Reply(conn_id, MakeStatsResponse(request->id, StatsBody()));
    return;
  }

  const size_t shard = ShardForTenant(request->tenant, shards_.size());
  const int64_t id = request->id;
  const std::string tenant = request->tenant;
  // During a drain the queues are closed, so TrySubmit fails and the
  // client gets the same retryable `overloaded` a full queue produces.
  if (!shards_[shard]->TrySubmit(ShardTask{conn_id, *std::move(request)})) {
    ++overloaded_;
    Reply(conn_id,
          MakeOverloadedResponse(id, tenant, static_cast<int>(shard)));
    return;
  }
  if (auto it = connections_.find(conn_id); it != connections_.end()) {
    ++it->second.in_flight;  // settled by the shard's response
  }
}

void AuditServer::Reply(uint64_t conn_id, const std::string& payload,
                        bool from_shard) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    // The client disconnected before its response was ready; it cannot be
    // answered, only counted.
    ++orphaned_responses_;
    return;
  }
  if (from_shard) --it->second.in_flight;
  if (!it->second.conn.QueueFrame(payload)) {
    ++slow_consumer_closes_;
    CloseConnection(conn_id);
    return;
  }
  ++frames_out_;
  if (!it->second.conn.Flush()) {
    CloseConnection(conn_id);
    return;
  }
  UpdateInterest(conn_id);
  MaybeFinishConnection(conn_id);
}

void AuditServer::UpdateInterest(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  const ConnState& state = it->second;
  if (state.read_closed && !state.conn.wants_write()) {
    // Nothing to poll for — and poll(2) reports POLLHUP/POLLERR even for
    // an empty interest set, so leaving a dead-but-pending connection
    // (in-flight shard responses) registered would busy-spin the loop.
    // Response delivery re-registers write interest when it queues data.
    poller_.Forget(state.conn.fd());
    return;
  }
  poller_.Watch(state.conn.fd(), /*read=*/!state.read_closed,
                /*write=*/state.conn.wants_write());
}

void AuditServer::MaybeFinishConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  const ConnState& state = it->second;
  if (state.read_closed && state.in_flight == 0 &&
      !state.conn.wants_write()) {
    CloseConnection(conn_id);
  }
}

void AuditServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  poller_.Forget(it->second.conn.fd());
  fd_to_conn_.erase(it->second.conn.fd());
  connections_.erase(it);
}

util::JsonValue::Object AuditServer::StatsBody() {
  util::JsonValue::Object body;
  util::JsonValue::Object server;
  server["active_connections"] = static_cast<int>(connections_.size());
  server["accepted_connections"] = static_cast<double>(accepted_connections_);
  server["frames_in"] = static_cast<double>(frames_in_);
  server["frames_out"] = static_cast<double>(frames_out_);
  server["protocol_errors"] = static_cast<double>(protocol_errors_);
  server["overloaded"] = static_cast<double>(overloaded_);
  server["slow_consumer_closes"] =
      static_cast<double>(slow_consumer_closes_);
  server["orphaned_responses"] = static_cast<double>(orphaned_responses_);
  server["shards"] = static_cast<int>(shards_.size());
  server["draining"] = draining_;
  body["server"] = std::move(server);

  util::JsonValue::Array shards;
  shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardStatsSnapshot s = shard->Snapshot();
    util::JsonValue::Object obj;
    obj["shard"] = s.shard;
    obj["queue_depth"] = static_cast<double>(s.queue_depth);
    obj["queue_capacity"] = static_cast<double>(s.queue_capacity);
    obj["tenants"] = static_cast<double>(s.tenants);
    obj["processed"] = static_cast<double>(s.processed);
    obj["batches"] = static_cast<double>(s.batches);
    obj["ingests"] = static_cast<double>(s.ingests);
    obj["solves"] = static_cast<double>(s.solves);
    obj["request_errors"] = static_cast<double>(s.request_errors);
    obj["policies_from_cache"] = static_cast<double>(s.policies_from_cache);
    obj["warm_solves"] = static_cast<double>(s.warm_solves);
    obj["cold_solves"] = static_cast<double>(s.cold_solves);
    util::JsonValue::Object cache;
    cache["hits"] = static_cast<double>(s.cache.hits);
    cache["misses"] = static_cast<double>(s.cache.misses);
    cache["insertions"] = static_cast<double>(s.cache.insertions);
    cache["evictions"] = static_cast<double>(s.cache.evictions);
    obj["policy_cache"] = std::move(cache);
    util::JsonValue::Object compile;
    compile["hits"] = static_cast<double>(s.compile.hits);
    compile["misses"] = static_cast<double>(s.compile.misses);
    obj["compile_cache"] = std::move(compile);
    obj["solve_seconds_p50"] = s.solve_seconds_p50;
    obj["solve_seconds_p90"] = s.solve_seconds_p90;
    obj["solve_seconds_p99"] = s.solve_seconds_p99;
    obj["solve_seconds_max"] = s.solve_seconds_max;
    obj["solve_samples"] = static_cast<double>(s.solve_samples);
    shards.push_back(std::move(obj));
  }
  body["shards"] = std::move(shards);
  return body;
}

}  // namespace auditgame::server
