#include "server/audit_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "server/binary_codec.h"
#include "util/hash.h"

namespace auditgame::server {

namespace {
/// Acceptor granularity: bounds how stale the stats snapshot and the
/// drain/stop checks can get if a wake notification is lost.
constexpr int kAcceptorPollMs = 250;
constexpr int kDrainPollMs = 50;
}  // namespace

AuditServer::AuditServer(core::GameInstance base_instance,
                         AuditServerOptions options)
    : options_(std::move(options)), base_instance_(std::move(base_instance)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  if (options_.num_reactors < 1) options_.num_reactors = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (options_.stats_refresh_ms < 1) options_.stats_refresh_ms = 1;
}

AuditServer::~AuditServer() {
  // Stop the shard workers before the reactors die: shard responders post
  // into reactor inboxes, so shards must be joined while the reactors (and
  // the response queues they own) are still alive. On paths where Run()
  // completed this is all no-ops. Nothing can be delivered anymore, so
  // shard backlogs are discarded, not drained.
  for (auto& shard : shards_) shard->DiscardPending();
  for (auto& shard : shards_) shard->Join();
  for (auto& reactor : reactors_) reactor->Kill();
  for (auto& reactor : reactors_) reactor->Join();
}

size_t AuditServer::ShardForTenant(const std::string& tenant,
                                   size_t num_shards) {
  util::Fnv1a hasher;
  hasher.AppendString(tenant);
  return static_cast<size_t>(hasher.value() % num_shards);
}

util::Status AuditServer::Start() {
  if (started_) return util::FailedPreconditionError("already started");
  ASSIGN_OR_RETURN(listener_, net::ListenTcp(options_.host, options_.port));
  ASSIGN_OR_RETURN(port_, net::LocalPort(listener_));
  ASSIGN_OR_RETURN(wake_, net::WakeChannel::Make());
  acceptor_poller_ = net::MakePoller(options_.poller_backend);
  if (!acceptor_poller_) {
    return util::InvalidArgumentError(
        "requested poller backend unavailable on this platform");
  }
  acceptor_poller_->Watch(listener_.fd(), /*read=*/true, /*write=*/false);
  acceptor_poller_->Watch(wake_.read_fd(), /*read=*/true, /*write=*/false);

  ReactorOptions reactor_options;
  reactor_options.max_frame_payload = options_.max_frame_payload;
  reactor_options.max_write_buffer = options_.max_write_buffer;
  reactor_options.idle_timeout_ms = options_.idle_timeout_ms;
  reactor_options.poller_backend = options_.poller_backend;
  reactors_.reserve(static_cast<size_t>(options_.num_reactors));
  for (int i = 0; i < options_.num_reactors; ++i) {
    reactors_.push_back(std::make_unique<Reactor>(
        i, reactor_options,
        [this](Reactor& reactor, uint64_t conn_id,
               const std::string& payload) {
          return HandleFrame(reactor, conn_id, payload);
        }));
  }

  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, base_instance_, options_.service, options_.queue_capacity,
        options_.max_batch,
        [this](std::vector<Shard::Response> batch) {
          // Route each response to the reactor that owns its connection
          // (conn_id % num_reactors — valid even after a close; the owner
          // counts the orphan). One PostResponses per reactor per batch.
          const size_t n = reactors_.size();
          if (n == 1) {
            reactors_[0]->PostResponses(std::move(batch));
            return;
          }
          std::vector<std::vector<Shard::Response>> per_reactor(n);
          for (Shard::Response& response : batch) {
            per_reactor[response.conn_id % n].push_back(std::move(response));
          }
          for (size_t r = 0; r < n; ++r) {
            if (!per_reactor[r].empty()) {
              reactors_[r]->PostResponses(std::move(per_reactor[r]));
            }
          }
        },
        [this] { wake_.Notify(); },
        options_.durability.enabled()
            ? std::make_unique<ShardPersistence>(i, options_.durability)
            : nullptr));
  }

  // Recover every shard before a single connection is accepted (and before
  // the shard threads start — recovery owns the shard state exclusively).
  // A failure here aborts startup: serving from wrong state is worse than
  // not serving.
  for (auto& shard : shards_) {
    RETURN_IF_ERROR(shard->Recover());
  }

  for (auto& reactor : reactors_) {
    RETURN_IF_ERROR(reactor->Start());
  }
  for (auto& shard : shards_) shard->Start();
  RefreshStatsSnapshot();
  started_ = true;
  return util::OkStatus();
}

void AuditServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  wake_.Notify();  // one async-signal-safe write(2)
}

int64_t AuditServer::LiveConnectionEstimate() const {
  // accepted − closed is exact even while adoptions are still queued in
  // reactor inboxes (both counters are monotonic), which is what the
  // accept cap needs: an accept burst may not bypass it.
  int64_t closed = 0;
  for (const auto& reactor : reactors_) closed += reactor->closed_connections();
  return accepted_connections_.load(std::memory_order_relaxed) - closed;
}

void AuditServer::AdmitConnections(std::vector<net::Socket> sockets,
                                   bool enforce_cap) {
  int64_t live = LiveConnectionEstimate();
  for (net::Socket& socket : sockets) {
    if (enforce_cap && options_.max_connections > 0 &&
        live >= static_cast<int64_t>(options_.max_connections)) {
      // Graceful refusal: close immediately instead of letting the peer
      // hang in a never-served queue. The peer sees EOF on first read.
      accept_rejections_.fetch_add(1, std::memory_order_relaxed);
      socket.Close();
      continue;
    }
    const uint64_t conn_id = ++next_conn_id_;
    accepted_connections_.fetch_add(1, std::memory_order_relaxed);
    ++live;
    reactors_[conn_id % reactors_.size()]->Adopt(std::move(socket), conn_id);
  }
}

void AuditServer::BeginDrain() {
  draining_ = true;
  if (listener_.valid()) {
    // Closing a listening socket resets every handshake-complete
    // connection still waiting in its accept queue — and those peers may
    // already have written requests. Accept them first (cap waived: they
    // are a bounded, already-handshaken backlog) so the drain can answer
    // them (with `overloaded`) instead of RST-ing them away.
    if (auto accepted = net::AcceptAll(listener_); accepted.ok()) {
      AdmitConnections(std::move(*accepted), /*enforce_cap=*/false);
    }
    acceptor_poller_->Forget(listener_.fd());
    listener_.Close();
  }
  // Close the shard queues first: from here on every frame a reactor reads
  // gets `overloaded`, so reactor in-flight counts only shrink.
  for (auto& shard : shards_) shard->BeginDrain();
  for (auto& reactor : reactors_) reactor->BeginDrain();
}

util::Status AuditServer::Run() {
  if (!started_) return util::FailedPreconditionError("Start() first");
  std::chrono::steady_clock::time_point drain_deadline;
  auto last_refresh = std::chrono::steady_clock::now();
  bool killed = false;

  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.drain_timeout_ms);
    }
    if (draining_) {
      const bool all_drained =
          std::all_of(reactors_.begin(), reactors_.end(),
                      [](const auto& reactor) { return reactor->drained(); });
      if (all_drained) break;
      if (!killed && std::chrono::steady_clock::now() >= drain_deadline) {
        // Deadline: abandon shard backlogs so the reactors' outstanding
        // counts can never settle, then make them exit regardless.
        for (auto& shard : shards_) shard->DiscardPending();
        for (auto& reactor : reactors_) reactor->Kill();
        killed = true;
      }
    }

    auto events = acceptor_poller_->Wait(
        draining_ ? kDrainPollMs
                  : std::min(kAcceptorPollMs, options_.stats_refresh_ms));
    RETURN_IF_ERROR(events.status());
    for (const net::PollEvent& event : *events) {
      if (event.fd == wake_.read_fd()) {
        wake_.Drain();
        continue;
      }
      if (listener_.valid() && event.fd == listener_.fd()) {
        auto accepted = net::AcceptAll(listener_);
        if (!accepted.ok()) continue;  // transient; the listener stays up
        AdmitConnections(std::move(*accepted), /*enforce_cap=*/true);
      }
    }

    if (!draining_) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_refresh >=
          std::chrono::milliseconds(options_.stats_refresh_ms)) {
        last_refresh = now;
        RefreshStatsSnapshot();
      }
    }
  }

  // Reclaim the worker threads: shards first (their responders post into
  // reactor inboxes), then the reactors, then count responses that raced
  // the exit and could no longer be delivered.
  for (auto& shard : shards_) shard->DiscardPending();
  for (auto& shard : shards_) shard->Join();
  for (auto& reactor : reactors_) reactor->Kill();
  util::Status status = util::OkStatus();
  for (auto& reactor : reactors_) {
    reactor->Join();
    if (status.ok()) status = reactor->status();
    reactor->DrainLeftovers();
  }
  RefreshStatsSnapshot();  // final numbers for StatsBody() callers
  return status;
}

bool AuditServer::HandleFrame(Reactor& reactor, uint64_t conn_id,
                              const std::string& payload) {
  if (IsBinaryFrame(payload)) {
    reactor.SetBinaryMode(conn_id);
    auto request = DecodeBinaryRequest(payload);
    if (!request.ok()) {
      // A payload that claims to be binary and fails to decode means the
      // peer's encoder and ours disagree; every later frame is suspect.
      // One error frame, then the connection goes (sticky).
      reactor.CountProtocolError();
      reactor.Reply(conn_id,
                    EncodeBinaryErrorResponse(BinaryCorrelationIdOf(payload),
                                              request.status().ToString()));
      reactor.Poison(conn_id);
      return false;
    }
    Dispatch(reactor, conn_id, *std::move(request), payload);
    return true;
  }

  auto doc = util::JsonValue::Parse(payload);
  if (!doc.ok()) {
    reactor.CountProtocolError();
    if (reactor.binary_mode(conn_id)) {
      // A binary-mode peer produced a frame that is neither binary nor
      // JSON: encoder desync, same sticky discipline as a bad binary frame.
      reactor.Reply(conn_id,
                    EncodeBinaryErrorResponse(-1, doc.status().ToString()));
      reactor.Poison(conn_id);
      return false;
    }
    // Malformed JSON in a well-formed frame: answer with an error frame and
    // keep the connection — the stream itself is still in sync.
    reactor.Reply(conn_id, MakeErrorResponse(-1, doc.status().ToString()));
    return true;
  }
  auto request = ParseRequest(*doc);
  if (!request.ok()) {
    reactor.CountProtocolError();
    reactor.Reply(conn_id, MakeErrorResponse(RequestIdOf(*doc),
                                             request.status().ToString()));
    return true;
  }

  if (request->verb == Verb::kStats) {
    reactor.Reply(conn_id,
                  MakeStatsResponse(request->id, StatsSnapshotBody()));
    return true;
  }

  Dispatch(reactor, conn_id, *std::move(request), payload);
  return true;
}

void AuditServer::Dispatch(Reactor& reactor, uint64_t conn_id,
                           Request request, const std::string& payload) {
  const size_t shard = ShardForTenant(request.tenant, shards_.size());
  const int64_t id = request.id;
  const bool binary = request.binary;
  const bool mutates =
      request.verb == Verb::kIngest || request.verb == Verb::kSolveCycle;
  const unsigned char binary_verb = request.verb == Verb::kIngest
                                        ? kBinaryVerbIngest
                                        : kBinaryVerbSolveCycle;
  const std::string tenant = request.tenant;
  ShardTask task{conn_id, std::move(request), {}};
  // WAL the verbatim wire bytes of state-mutating verbs: replay re-parses
  // the identical input, so recovered state matches bit-for-bit.
  if (mutates && options_.durability.enabled()) task.wal_payload = payload;
  // During a drain the queues are closed, so TrySubmit fails and the
  // client gets the same retryable `overloaded` a full queue produces.
  if (!shards_[shard]->TrySubmit(std::move(task))) {
    reactor.CountOverloaded();
    reactor.Reply(conn_id,
                  binary ? EncodeBinaryOverloadedResponse(
                               id, static_cast<int>(shard), binary_verb)
                         : MakeOverloadedResponse(id, tenant,
                                                  static_cast<int>(shard)));
    return;
  }
  reactor.OnSubmitted(conn_id);  // settled by the shard's response
}

util::JsonValue::Object AuditServer::StatsSnapshotBody() {
  std::shared_ptr<const util::JsonValue::Object> snapshot;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot = stats_snapshot_;
  }
  if (!snapshot) return util::JsonValue::Object{};
  return *snapshot;  // copy; the shared body itself is immutable
}

void AuditServer::RefreshStatsSnapshot() {
  auto body =
      std::make_shared<const util::JsonValue::Object>(StatsBody());
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  stats_snapshot_ = std::move(body);
}

util::JsonValue::Object AuditServer::StatsBody() {
  int64_t active = 0, frames_in = 0, frames_out = 0, protocol_errors = 0;
  int64_t overloaded = 0, slow_closes = 0, orphaned = 0, idle_closes = 0;
  for (const auto& reactor : reactors_) {
    active += reactor->active_connections();
    frames_in += reactor->frames_in();
    frames_out += reactor->frames_out();
    protocol_errors += reactor->protocol_errors();
    overloaded += reactor->overloaded();
    slow_closes += reactor->slow_consumer_closes();
    orphaned += reactor->orphaned_responses();
    idle_closes += reactor->idle_closes();
  }

  util::JsonValue::Object body;
  util::JsonValue::Object server;
  server["active_connections"] = static_cast<double>(active);
  server["accepted_connections"] = static_cast<double>(
      accepted_connections_.load(std::memory_order_relaxed));
  server["accept_rejections"] = static_cast<double>(
      accept_rejections_.load(std::memory_order_relaxed));
  server["frames_in"] = static_cast<double>(frames_in);
  server["frames_out"] = static_cast<double>(frames_out);
  server["protocol_errors"] = static_cast<double>(protocol_errors);
  server["overloaded"] = static_cast<double>(overloaded);
  server["slow_consumer_closes"] = static_cast<double>(slow_closes);
  server["orphaned_responses"] = static_cast<double>(orphaned);
  server["idle_closes"] = static_cast<double>(idle_closes);
  server["shards"] = static_cast<int>(shards_.size());
  server["reactors"] = static_cast<int>(reactors_.size());
  server["poller"] = std::string(
      reactors_.empty() ? "none" : reactors_.front()->backend_name());
  server["draining"] = draining_;
  body["server"] = std::move(server);

  util::JsonValue::Array shards;
  shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardStatsSnapshot s = shard->Snapshot();
    util::JsonValue::Object obj;
    obj["shard"] = s.shard;
    obj["queue_depth"] = static_cast<double>(s.queue_depth);
    obj["queue_capacity"] = static_cast<double>(s.queue_capacity);
    obj["tenants"] = static_cast<double>(s.tenants);
    obj["processed"] = static_cast<double>(s.processed);
    obj["batches"] = static_cast<double>(s.batches);
    obj["ingests"] = static_cast<double>(s.ingests);
    obj["solves"] = static_cast<double>(s.solves);
    obj["request_errors"] = static_cast<double>(s.request_errors);
    obj["policies_from_cache"] = static_cast<double>(s.policies_from_cache);
    obj["warm_solves"] = static_cast<double>(s.warm_solves);
    obj["cold_solves"] = static_cast<double>(s.cold_solves);
    util::JsonValue::Object cache;
    cache["hits"] = static_cast<double>(s.cache.hits);
    cache["misses"] = static_cast<double>(s.cache.misses);
    cache["insertions"] = static_cast<double>(s.cache.insertions);
    cache["evictions"] = static_cast<double>(s.cache.evictions);
    obj["policy_cache"] = std::move(cache);
    util::JsonValue::Object compile;
    compile["hits"] = static_cast<double>(s.compile.hits);
    compile["misses"] = static_cast<double>(s.compile.misses);
    obj["compile_cache"] = std::move(compile);
    obj["solve_seconds_p50"] = s.solve_seconds_p50;
    obj["solve_seconds_p90"] = s.solve_seconds_p90;
    obj["solve_seconds_p99"] = s.solve_seconds_p99;
    obj["solve_seconds_max"] = s.solve_seconds_max;
    obj["solve_samples"] = static_cast<double>(s.solve_samples);
    obj["durability"] = s.durability;
    if (s.durability) {
      obj["wal_errors"] = static_cast<double>(s.wal_errors);
      util::JsonValue::Object persistence;
      persistence["last_snapshot_seq"] =
          static_cast<double>(s.persistence.last_snapshot_seq);
      persistence["wal_records"] =
          static_cast<double>(s.persistence.wal_records);
      persistence["wal_bytes"] = static_cast<double>(s.persistence.wal_bytes);
      persistence["wal_segments"] =
          static_cast<double>(s.persistence.wal_segments);
      persistence["snapshots_written"] =
          static_cast<double>(s.persistence.snapshots_written);
      persistence["wal_syncs"] = static_cast<double>(s.persistence.wal_syncs);
      persistence["fsync_seconds_p50"] = s.persistence.fsync_seconds_p50;
      persistence["fsync_seconds_p90"] = s.persistence.fsync_seconds_p90;
      persistence["fsync_seconds_p99"] = s.persistence.fsync_seconds_p99;
      persistence["fsync_seconds_max"] = s.persistence.fsync_seconds_max;
      persistence["recovery_replayed"] =
          static_cast<double>(s.persistence.recovery_replayed);
      persistence["recovery_seconds"] = s.persistence.recovery_seconds;
      persistence["recovery_wal_lsn"] =
          static_cast<double>(s.persistence.recovery_wal_lsn);
      persistence["recovery_fingerprint"] = s.persistence.recovery_fingerprint;
      persistence["wal_sync"] = s.persistence.wal_sync;
      obj["persistence"] = std::move(persistence);
    }
    shards.push_back(std::move(obj));
  }
  body["shards"] = std::move(shards);
  return body;
}

std::vector<std::string> AuditServer::StateFingerprints() {
  std::vector<std::string> fingerprints;
  fingerprints.reserve(shards_.size());
  for (auto& shard : shards_) {
    fingerprints.push_back(shard->StateFingerprint().ToHex());
  }
  return fingerprints;
}

}  // namespace auditgame::server
