#include "server/protocol.h"

#include <utility>

namespace auditgame::server {

namespace {

util::JsonValue::Object Envelope(int64_t id, const char* status) {
  util::JsonValue::Object obj;
  obj["id"] = static_cast<double>(id);
  obj["status"] = status;
  return obj;
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kIngest:
      return "ingest";
    case Verb::kSolveCycle:
      return "solve_cycle";
    case Verb::kStats:
      return "stats";
  }
  return "?";
}

const char* SourceName(service::AuditService::Source source) {
  switch (source) {
    case service::AuditService::Source::kCache:
      return "cache";
    case service::AuditService::Source::kWarmSolve:
      return "warm";
    case service::AuditService::Source::kColdSolve:
      return "cold";
  }
  return "?";
}

int64_t RequestIdOf(const util::JsonValue& doc) {
  if (!doc.is_object()) return -1;
  const util::JsonValue* id = doc.Find("id");
  if (id == nullptr || !id->is_number()) return -1;
  const double value = id->as_number();
  // Range-check before casting: static_cast of an out-of-range double is
  // UB, and the id comes from an untrusted peer. 2^53 is the exact-integer
  // range of a JSON number anyway.
  if (!(value >= -9007199254740992.0 && value <= 9007199254740992.0)) {
    return -1;
  }
  return static_cast<int64_t>(value);
}

util::StatusOr<Request> ParseRequest(const util::JsonValue& doc) {
  if (!doc.is_object()) {
    return util::InvalidArgumentError("request must be a JSON object");
  }
  Request request;
  request.id = RequestIdOf(doc);

  ASSIGN_OR_RETURN(const std::string verb, doc.GetString("verb"));
  if (verb == "ingest") {
    request.verb = Verb::kIngest;
  } else if (verb == "solve_cycle") {
    request.verb = Verb::kSolveCycle;
  } else if (verb == "stats") {
    request.verb = Verb::kStats;
  } else {
    return util::InvalidArgumentError("unknown verb: " + verb);
  }

  if (request.verb != Verb::kStats) {
    ASSIGN_OR_RETURN(request.tenant, doc.GetString("tenant"));
    if (request.tenant.empty()) {
      return util::InvalidArgumentError("tenant must be non-empty");
    }
  }

  if (request.verb == Verb::kSolveCycle) {
    if (const util::JsonValue* observe = doc.Find("observe_policy");
        observe != nullptr) {
      if (!observe->is_bool()) {
        return util::InvalidArgumentError("observe_policy must be a boolean");
      }
      request.observe_policy = observe->as_bool();
    }
  }

  if (request.verb == Verb::kIngest) {
    const util::JsonValue* dists = doc.Find("distributions");
    if (dists == nullptr) {
      return util::InvalidArgumentError("ingest requires distributions");
    }
    ASSIGN_OR_RETURN(request.distributions, ParseDistributions(*dists));
  }
  return request;
}

util::JsonValue EncodeDistributions(
    const std::vector<prob::CountDistribution>& distributions) {
  util::JsonValue::Array out;
  out.reserve(distributions.size());
  for (const prob::CountDistribution& dist : distributions) {
    util::JsonValue::Object entry;
    entry["min"] = dist.min_value();
    util::JsonValue::Array pmf;
    pmf.reserve(static_cast<size_t>(dist.support_size()));
    for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
      pmf.push_back(dist.Pmf(z));
    }
    entry["pmf"] = std::move(pmf);
    out.push_back(std::move(entry));
  }
  return util::JsonValue(std::move(out));
}

util::StatusOr<std::vector<prob::CountDistribution>> ParseDistributions(
    const util::JsonValue& doc) {
  if (!doc.is_array()) {
    return util::InvalidArgumentError("distributions must be an array");
  }
  std::vector<prob::CountDistribution> out;
  out.reserve(doc.as_array().size());
  for (const util::JsonValue& entry : doc.as_array()) {
    if (!entry.is_object()) {
      return util::InvalidArgumentError("distribution must be an object");
    }
    ASSIGN_OR_RETURN(const double min, entry.GetNumber("min"));
    // Untrusted input: casting an out-of-range double to int is UB, and
    // negative alert counts are meaningless.
    if (!(min >= 0.0 && min <= 1e9) ||
        min != static_cast<double>(static_cast<int>(min))) {
      return util::InvalidArgumentError(
          "distribution min must be an integer in [0, 1e9]");
    }
    const util::JsonValue* pmf_doc = entry.Find("pmf");
    if (pmf_doc == nullptr || !pmf_doc->is_array()) {
      return util::InvalidArgumentError("distribution needs a pmf array");
    }
    std::vector<double> pmf;
    pmf.reserve(pmf_doc->as_array().size());
    for (const util::JsonValue& p : pmf_doc->as_array()) {
      if (!p.is_number()) {
        return util::InvalidArgumentError("pmf entries must be numbers");
      }
      pmf.push_back(p.as_number());
    }
    ASSIGN_OR_RETURN(
        prob::CountDistribution dist,
        prob::CountDistribution::FromPmf(static_cast<int>(min),
                                         std::move(pmf)));
    out.push_back(std::move(dist));
  }
  return out;
}

std::string MakeIngestRequest(
    int64_t id, const std::string& tenant,
    const std::vector<prob::CountDistribution>& distributions) {
  util::JsonValue::Object obj;
  obj["verb"] = "ingest";
  obj["tenant"] = tenant;
  obj["id"] = static_cast<double>(id);
  obj["distributions"] = EncodeDistributions(distributions);
  return util::JsonValue(std::move(obj)).Dump();
}

std::string MakeSolveCycleRequest(int64_t id, const std::string& tenant,
                                  bool observe_policy) {
  util::JsonValue::Object obj;
  obj["verb"] = "solve_cycle";
  obj["tenant"] = tenant;
  obj["id"] = static_cast<double>(id);
  if (observe_policy) obj["observe_policy"] = true;
  return util::JsonValue(std::move(obj)).Dump();
}

std::string MakeStatsRequest(int64_t id) {
  util::JsonValue::Object obj;
  obj["verb"] = "stats";
  obj["id"] = static_cast<double>(id);
  return util::JsonValue(std::move(obj)).Dump();
}

std::string MakeIngestOkResponse(int64_t id, const std::string& tenant,
                                 int shard) {
  util::JsonValue::Object obj = Envelope(id, "ok");
  obj["verb"] = "ingest";
  obj["tenant"] = tenant;
  obj["shard"] = shard;
  return util::JsonValue(std::move(obj)).Dump();
}

std::string MakeSolveCycleResponse(
    int64_t id, const std::string& tenant, int shard,
    const service::AuditService::CycleReport& report,
    const std::vector<std::vector<double>>* detection_probs) {
  util::JsonValue::Object obj = Envelope(id, "ok");
  obj["verb"] = "solve_cycle";
  obj["tenant"] = tenant;
  obj["shard"] = shard;
  obj["cycle"] = static_cast<double>(report.cycle);
  obj["seconds"] = report.seconds;
  util::JsonValue::Array policies;
  policies.reserve(report.policies.size());
  for (size_t i = 0; i < report.policies.size(); ++i) {
    const service::AuditService::CyclePolicy& policy = report.policies[i];
    util::JsonValue::Object p;
    p["budget"] = policy.budget;
    p["source"] = SourceName(policy.source);
    p["drift"] = policy.drift;
    p["objective"] = policy.result.objective;
    util::JsonValue::Array thresholds;
    thresholds.reserve(policy.result.thresholds.size());
    for (double b : policy.result.thresholds) thresholds.push_back(b);
    p["thresholds"] = std::move(thresholds);
    if (detection_probs != nullptr && i < detection_probs->size()) {
      util::JsonValue::Array probs;
      probs.reserve((*detection_probs)[i].size());
      for (double pal : (*detection_probs)[i]) probs.push_back(pal);
      p["detection_probs"] = std::move(probs);
    }
    policies.push_back(std::move(p));
  }
  obj["policies"] = std::move(policies);
  return util::JsonValue(std::move(obj)).Dump();
}

util::StatusOr<SolveCycleReply> ParseSolveCycleReply(
    const util::JsonValue& doc) {
  if (!doc.is_object()) {
    return util::InvalidArgumentError("solve_cycle reply must be an object");
  }
  SolveCycleReply reply;
  ASSIGN_OR_RETURN(const double cycle, doc.GetNumber("cycle"));
  reply.cycle = static_cast<int64_t>(cycle);
  ASSIGN_OR_RETURN(const double shard, doc.GetNumber("shard"));
  reply.shard = static_cast<int>(shard);
  const util::JsonValue* policies = doc.Find("policies");
  if (policies == nullptr || !policies->is_array()) {
    return util::InvalidArgumentError("solve_cycle reply needs policies");
  }
  reply.policies.reserve(policies->as_array().size());
  for (const util::JsonValue& entry : policies->as_array()) {
    if (!entry.is_object()) {
      return util::InvalidArgumentError("policy entry must be an object");
    }
    SolveCyclePolicy policy;
    ASSIGN_OR_RETURN(policy.budget, entry.GetNumber("budget"));
    ASSIGN_OR_RETURN(policy.source, entry.GetString("source"));
    ASSIGN_OR_RETURN(policy.drift, entry.GetNumber("drift"));
    ASSIGN_OR_RETURN(policy.objective, entry.GetNumber("objective"));
    const auto parse_doubles =
        [&entry](const char* key, bool required,
                 std::vector<double>* out) -> util::Status {
      const util::JsonValue* values = entry.Find(key);
      if (values == nullptr) {
        if (required) {
          return util::InvalidArgumentError(std::string("policy needs ") +
                                            key);
        }
        return util::OkStatus();
      }
      if (!values->is_array()) {
        return util::InvalidArgumentError(std::string(key) +
                                          " must be an array");
      }
      out->reserve(values->as_array().size());
      for (const util::JsonValue& v : values->as_array()) {
        if (!v.is_number()) {
          return util::InvalidArgumentError(std::string(key) +
                                            " entries must be numbers");
        }
        out->push_back(v.as_number());
      }
      return util::OkStatus();
    };
    RETURN_IF_ERROR(
        parse_doubles("thresholds", /*required=*/true, &policy.thresholds));
    RETURN_IF_ERROR(parse_doubles("detection_probs", /*required=*/false,
                                  &policy.detection_probs));
    reply.policies.push_back(std::move(policy));
  }
  return reply;
}

std::string MakeOverloadedResponse(int64_t id, const std::string& tenant,
                                   int shard) {
  util::JsonValue::Object obj = Envelope(id, "overloaded");
  obj["tenant"] = tenant;
  obj["shard"] = shard;
  return util::JsonValue(std::move(obj)).Dump();
}

std::string MakeBackendDownResponse(int64_t id, const std::string& tenant) {
  util::JsonValue::Object obj = Envelope(id, "backend_down");
  obj["tenant"] = tenant;
  return util::JsonValue(std::move(obj)).Dump();
}

std::string MakeErrorResponse(int64_t id, const std::string& message) {
  util::JsonValue::Object obj = Envelope(id, "error");
  obj["message"] = message;
  return util::JsonValue(std::move(obj)).Dump();
}

std::string MakeStatsResponse(int64_t id, util::JsonValue::Object body) {
  util::JsonValue::Object obj = Envelope(id, "ok");
  obj["verb"] = "stats";
  for (auto& [key, value] : body) obj[key] = std::move(value);
  return util::JsonValue(std::move(obj)).Dump();
}

}  // namespace auditgame::server
