#include "server/hash_ring.h"

#include <algorithm>

#include "util/hash.h"

namespace auditgame::server {

namespace {
/// FNV-1a avalanches its low bits well but short sequential keys (the
/// "tenant-<i>" shape real ids take) cluster badly in the high bits —
/// exactly the bits a ring coordinate lives or dies by: measured on 10k
/// such tenants the top nibble is up to 1.6x off uniform, which swamps
/// any number of virtual nodes. A 64-bit finalizer (murmur3's fmix64, a
/// bijection) spreads the stable FNV value uniformly without changing
/// which inputs collide.
uint64_t MixPoint(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

HashRing::HashRing(int virtual_nodes) : virtual_nodes_(virtual_nodes) {
  if (virtual_nodes_ < 1) virtual_nodes_ = 1;
}

void HashRing::AddNode(int id, const std::string& name) {
  nodes_[id] = name;
  Rebuild();
}

void HashRing::RemoveNode(int id) {
  if (nodes_.erase(id) > 0) Rebuild();
}

uint64_t HashRing::PointForTenant(const std::string& tenant) {
  util::Fnv1a hasher;
  hasher.AppendString(tenant);
  return MixPoint(hasher.value());
}

void HashRing::Rebuild() {
  points_.clear();
  points_.reserve(nodes_.size() * static_cast<size_t>(virtual_nodes_));
  for (const auto& [id, name] : nodes_) {
    for (int replica = 0; replica < virtual_nodes_; ++replica) {
      util::Fnv1a hasher;
      hasher.AppendString(name);
      hasher.AppendU64(static_cast<uint64_t>(replica));
      points_.emplace_back(MixPoint(hasher.value()), id);
    }
  }
  // Sorting the (point, id) pair makes a point collision between two
  // nodes' replicas resolve the same way on every host.
  std::sort(points_.begin(), points_.end());
}

int HashRing::PrimaryFor(uint64_t point) const {
  if (points_.empty()) return -1;
  auto it = std::upper_bound(points_.begin(), points_.end(),
                             std::make_pair(point, INT32_MAX));
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

int HashRing::SuccessorFor(uint64_t point) const {
  if (nodes_.size() < 2) return -1;
  auto it = std::upper_bound(points_.begin(), points_.end(),
                             std::make_pair(point, INT32_MAX));
  if (it == points_.end()) it = points_.begin();
  const int primary = it->second;
  // Walk clockwise past the primary's consecutive points to the first arc
  // owned by someone else; bounded by the ring size.
  for (size_t step = 1; step < points_.size(); ++step) {
    ++it;
    if (it == points_.end()) it = points_.begin();
    if (it->second != primary) return it->second;
  }
  return -1;
}

}  // namespace auditgame::server
