#ifndef AUDIT_GAME_SERVER_SHARD_H_
#define AUDIT_GAME_SERVER_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/game.h"
#include "server/bounded_queue.h"
#include "server/durability.h"
#include "server/protocol.h"
#include "service/audit_service.h"
#include "service/policy_cache.h"
#include "solver/engine.h"
#include "util/hash.h"

namespace auditgame::util {
class Serializer;
}  // namespace auditgame::util

namespace auditgame::server {

/// One queued unit of shard work: a validated request plus the connection
/// it came from (responses are routed back by connection id, which stays
/// valid even if the fd number is reused).
struct ShardTask {
  uint64_t conn_id = 0;
  Request request;
  /// Durability: the verbatim wire payload of a state-mutating request
  /// (ingest/solve_cycle), WAL-appended before the task is applied. Empty
  /// when durability is off or the verb carries no state. Verbatim bytes —
  /// not a re-encoding — so replay re-parses the identical input and
  /// reproduces state bit-for-bit.
  std::string wal_payload;
};

/// A point-in-time copy of one shard's counters, taken from the IO thread
/// for the `stats` verb while the shard keeps working.
struct ShardStatsSnapshot {
  int shard = 0;
  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  int64_t tenants = 0;
  int64_t processed = 0;
  int64_t batches = 0;
  int64_t ingests = 0;
  int64_t solves = 0;
  int64_t request_errors = 0;
  /// Serving split summed over this shard's tenants (see
  /// AuditService::Source).
  int64_t policies_from_cache = 0;
  int64_t warm_solves = 0;
  int64_t cold_solves = 0;
  /// Cache counters summed over this shard's tenant services.
  service::PolicyCache::Stats cache;
  solver::SolverEngine::CompileCacheStats compile;
  /// Percentiles over the most recent solve-cycle wall times (bounded
  /// window; `solve_samples` counts all solves ever).
  double solve_seconds_p50 = 0.0;
  double solve_seconds_p90 = 0.0;
  double solve_seconds_p99 = 0.0;
  double solve_seconds_max = 0.0;
  int64_t solve_samples = 0;
  /// Durability (zero/empty when the shard runs without a data_dir).
  bool durability = false;
  int64_t wal_errors = 0;
  PersistenceStats persistence;
};

/// One shard of the AuditServer: a single worker thread owning the
/// AuditService of every tenant hashed to it, fed through a bounded MPSC
/// queue. The single-writer invariant the service documents is enforced
/// structurally — only this shard's thread ever touches its services, so
/// one tenant's cycles are applied in submission order while different
/// shards (hence different tenants) run concurrently.
///
/// The worker drains the queue in micro-batches (up to `max_batch` requests
/// per wakeup): one condvar round and one IO-thread wake per batch instead
/// of per request. Backpressure is the queue bound: TrySubmit() fails when
/// the shard is `queue_capacity` requests behind and the caller answers
/// `overloaded` — accepted work is never dropped, and memory never grows
/// with offered load.
class Shard {
 public:
  struct Response {
    uint64_t conn_id = 0;
    std::string payload;
  };

  /// Called from the shard thread with one micro-batch's responses — a
  /// single call per drained batch, so the server pays one response-queue
  /// lock and one poll-loop wake per batch, not per request. The server
  /// makes it thread-safe.
  using Responder = std::function<void(std::vector<Response> responses)>;

  /// `base_instance` seeds every tenant's game: a tenant's AuditService is
  /// created lazily on its first request with a copy of it, then diverges
  /// through `ingest`. `on_finished` is invoked (on the shard thread) when
  /// the worker exits after a drain, so the server's poll loop can
  /// re-evaluate shutdown progress.
  Shard(int index, core::GameInstance base_instance,
        service::AuditServiceOptions service_options, size_t queue_capacity,
        size_t max_batch, Responder responder,
        std::function<void()> on_finished,
        std::unique_ptr<ShardPersistence> persistence = nullptr);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Restores state from the shard's data directory (newest valid
  /// snapshot, then the WAL suffix through the normal Process() path) and
  /// records the post-recovery state fingerprint. Must be called before
  /// Start(); no-op without persistence. A config-mismatch snapshot or a
  /// corrupt non-final segment refuses recovery rather than serving wrong
  /// state.
  util::Status Recover();

  void Start();

  /// Non-blocking enqueue from the IO thread; false = queue full or
  /// draining (caller sends `overloaded`).
  bool TrySubmit(ShardTask task);

  /// Closes the queue: the worker finishes what was accepted, then exits.
  void BeginDrain() { queue_.Close(); }

  /// Closes the queue and abandons its unstarted backlog (see
  /// BoundedQueue::DiscardPending) so Join() waits only for the in-flight
  /// request — the drain-deadline escape hatch.
  size_t DiscardPending() { return queue_.DiscardPending(); }

  /// True once the worker has drained and exited.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// Joins the worker (BeginDrain() must have been called).
  void Join();

  int index() const { return index_; }

  ShardStatsSnapshot Snapshot() const;

  /// Streams the shard's full durable state: a configuration-fingerprint
  /// guard (service options + base instance — state recorded under one
  /// configuration must not silently replay under another), the counters,
  /// and every tenant's AuditService. Thread-contract: shard thread, or
  /// any thread while the worker is not running (locks stats_mutex_
  /// against Snapshot()).
  void StreamState(util::Serializer& s);

  /// Serialized StreamState bytes (the snapshot body).
  std::string SerializeState();

  /// Timing-free content fingerprint of the shard state — equal across two
  /// independent recoveries of the same snapshot+WAL, the bit-for-bit
  /// verification hook. Same thread contract as StreamState().
  util::Fingerprint StateFingerprint();

  ShardPersistence* persistence() const { return persistence_.get(); }

 private:
  void Run();
  /// Re-parses one WAL payload exactly as the wire path would and applies
  /// it through Process() with the responses discarded.
  util::Status ReplayWalPayload(const std::string& payload);
  util::Fingerprint ConfigFingerprint() const;
  /// Executes one task, appending its response to the batch's output.
  void Process(const ShardTask& task, std::vector<Response>* responses);
  /// Looks up or lazily creates the tenant's service. Called only from the
  /// shard thread; creation locks stats_mutex_ so Snapshot() can iterate
  /// the map safely.
  service::AuditService* TenantService(const std::string& tenant);

  const int index_;
  const core::GameInstance base_instance_;
  const service::AuditServiceOptions service_options_;
  const size_t max_batch_;
  BoundedQueue<ShardTask> queue_;
  Responder responder_;
  std::function<void()> on_finished_;
  /// Null when the server runs without durability.
  std::unique_ptr<ShardPersistence> persistence_;
  std::thread thread_;
  std::atomic<bool> finished_{false};

  /// Guards the counters, the latency window, and tenant-map mutations so
  /// Snapshot() (IO thread) never races the worker.
  mutable std::mutex stats_mutex_;
  std::map<std::string, std::unique_ptr<service::AuditService>> tenants_;
  int64_t processed_ = 0;
  int64_t batches_ = 0;
  int64_t ingests_ = 0;
  int64_t solves_ = 0;
  int64_t request_errors_ = 0;
  /// WAL append/commit failures (disk errors). The shard keeps serving —
  /// durability degrades, availability does not — but the count surfaces
  /// loudly in stats.
  int64_t wal_errors_ = 0;
  int64_t policies_from_cache_ = 0;
  int64_t warm_solves_ = 0;
  int64_t cold_solves_ = 0;
  int64_t solve_samples_ = 0;
  /// Ring of recent solve-cycle wall times (bounded so stats stay O(1)
  /// memory on long runs).
  std::vector<double> solve_seconds_window_;
  size_t solve_seconds_next_ = 0;
};

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_SHARD_H_
