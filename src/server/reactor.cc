#include "server/reactor.h"

#include <algorithm>
#include <utility>

namespace auditgame::server {

namespace {
/// Poll granularity: fast enough that drain/kill requests and idle sweeps
/// are noticed promptly even if a wake notification is lost, cheap enough
/// to idle on.
constexpr int kIdlePollMs = 500;
constexpr int kDrainPollMs = 50;
/// Idle reaping scans the connection map, so at large connection counts it
/// runs on its own (coarser) cadence rather than every poll round.
constexpr int kMinIdleSweepMs = 100;
}  // namespace

Reactor::Reactor(int index, ReactorOptions options, FrameHandler handler)
    : index_(index),
      options_(std::move(options)),
      handler_(std::move(handler)) {}

Reactor::~Reactor() {
  Kill();
  Join();
}

util::Status Reactor::Start() {
  poller_ = net::MakePoller(options_.poller_backend);
  if (!poller_) {
    return util::InvalidArgumentError(
        "requested poller backend unavailable on this platform");
  }
  backend_name_ = poller_->backend_name();
  ASSIGN_OR_RETURN(wake_, net::WakeChannel::Make());
  poller_->Watch(wake_.read_fd(), /*read=*/true, /*write=*/false);
  last_idle_sweep_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { Run(); });
  return util::OkStatus();
}

void Reactor::Adopt(net::Socket socket, uint64_t conn_id) {
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    adopted_inbox_.push_back(AdoptedSocket{std::move(socket), conn_id});
  }
  wake_.Notify();
}

void Reactor::PostResponses(std::vector<Shard::Response> batch) {
  if (batch.empty()) return;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    response_inbox_.insert(response_inbox_.end(),
                           std::make_move_iterator(batch.begin()),
                           std::make_move_iterator(batch.end()));
  }
  wake_.Notify();
}

void Reactor::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  wake_.Notify();
}

void Reactor::Kill() {
  killed_.store(true, std::memory_order_release);
  wake_.Notify();
}

void Reactor::Join() {
  if (thread_.joinable()) thread_.join();
}

util::Status Reactor::status() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return status_;
}

size_t Reactor::DrainLeftovers() {
  std::vector<AdoptedSocket> adopted;
  std::vector<Shard::Response> responses;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    adopted.swap(adopted_inbox_);
    responses.swap(response_inbox_);
  }
  Add(orphaned_responses_, static_cast<int64_t>(responses.size()));
  return responses.size();
}

bool Reactor::AnyPendingWrite() const {
  for (const auto& [conn_id, state] : connections_) {
    if (state.conn.wants_write()) return true;
  }
  return false;
}

void Reactor::Run() {
  for (;;) {
    if (killed_.load(std::memory_order_acquire)) break;
    const bool draining = draining_.load(std::memory_order_acquire);

    auto events = poller_->Wait(draining ? kDrainPollMs : kIdlePollMs);
    if (!events.ok()) {
      std::lock_guard<std::mutex> lock(status_mutex_);
      status_ = events.status();
      break;
    }
    const bool idle_poll = events->empty();

    bool woke = false;
    for (const net::PollEvent& event : *events) {
      if (event.fd == wake_.read_fd()) {
        wake_.Drain();
        woke = true;
        continue;
      }
      HandleConnectionEvent(event);
    }

    const bool inbox_work = DrainInbox();

    if (options_.idle_timeout_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      const int sweep_ms =
          std::max(options_.idle_timeout_ms / 4, kMinIdleSweepMs);
      if (now - last_idle_sweep_ >= std::chrono::milliseconds(sweep_ms)) {
        last_idle_sweep_ = now;
        ReapIdle(now);
      }
    }

    // Exit only off an *empty* poll with nothing woken and nothing queued:
    // every frame the kernel buffered has then been read and answered
    // (closed shard queues turn post-stop requests into `overloaded`),
    // every shard response came back (in_flight_total_ == 0 — including
    // orphans for connections that died waiting) and every answer was
    // flushed. Nothing accepted is dropped in silence.
    if (draining && idle_poll && !woke && !inbox_work &&
        in_flight_total_ == 0 && !AnyPendingWrite()) {
      bool inbox_empty;
      {
        std::lock_guard<std::mutex> lock(inbox_mutex_);
        inbox_empty = adopted_inbox_.empty() && response_inbox_.empty();
      }
      if (inbox_empty) break;
    }
  }

  // Drop whatever is still open; on a clean drain every buffer is already
  // flushed, on the kill path the deadline decided for us.
  for (auto& [conn_id, state] : connections_) {
    poller_->Forget(state.conn.fd());
  }
  Add(closed_connections_, static_cast<int64_t>(connections_.size()));
  connections_.clear();
  fd_to_conn_.clear();
  active_connections_.store(0, std::memory_order_relaxed);
  drained_.store(true, std::memory_order_release);
}

bool Reactor::DrainInbox() {
  std::vector<AdoptedSocket> adopted;
  std::vector<Shard::Response> responses;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    adopted.swap(adopted_inbox_);
    responses.swap(response_inbox_);
  }
  for (AdoptedSocket& entry : adopted) {
    const int fd = entry.socket.fd();
    auto [it, inserted] = connections_.emplace(
        entry.conn_id,
        ConnState(net::Connection(std::move(entry.socket),
                                  options_.max_frame_payload,
                                  options_.max_write_buffer)));
    if (!inserted) continue;  // duplicate id: acceptor bug, drop the socket
    it->second.last_activity = std::chrono::steady_clock::now();
    fd_to_conn_[fd] = entry.conn_id;
    poller_->Watch(fd, /*read=*/true, /*write=*/false);
    Add(active_connections_);
  }
  for (Shard::Response& response : responses) {
    Reply(response.conn_id, response.payload, /*from_shard=*/true);
  }
  return !adopted.empty() || !responses.empty();
}

void Reactor::HandleConnectionEvent(const net::PollEvent& event) {
  const auto fd_it = fd_to_conn_.find(event.fd);
  if (fd_it == fd_to_conn_.end()) return;
  const uint64_t conn_id = fd_it->second;

  if (event.readable || event.hangup) {
    auto conn_it = connections_.find(conn_id);
    if (conn_it == connections_.end()) return;
    conn_it->second.last_activity = std::chrono::steady_clock::now();
    std::vector<std::string> frames;
    auto open = conn_it->second.conn.ReadFrames(&frames);
    Add(frames_in_, static_cast<int64_t>(frames.size()));
    for (const std::string& frame : frames) {
      if (!handler_(*this, conn_id, frame)) break;  // poisoned: drop the rest
    }
    // Re-find: handling a frame can close the connection (slow consumer,
    // poison) and invalidate the iterator.
    conn_it = connections_.find(conn_id);
    if (conn_it == connections_.end()) return;
    if (!open.ok() || !*open) {
      // Peer closed its write side (or broke framing): stop reading, but
      // keep the connection until buffered output and in-flight shard
      // responses are settled — pipelined requests before a half-close
      // still deserve answers.
      conn_it->second.read_closed = true;
      UpdateInterest(conn_id);
      MaybeFinishConnection(conn_id);
      return;
    }
  }
  if (event.writable) {
    auto conn_it = connections_.find(conn_id);
    if (conn_it == connections_.end()) return;
    conn_it->second.last_activity = std::chrono::steady_clock::now();
    if (!conn_it->second.conn.Flush()) {
      CloseConnection(conn_id);
      return;
    }
    UpdateInterest(conn_id);
    MaybeFinishConnection(conn_id);
  }
}

void Reactor::Reply(uint64_t conn_id, const std::string& payload,
                    bool from_shard) {
  if (from_shard) --in_flight_total_;
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    // The client disconnected before its response was ready; it cannot be
    // answered, only counted.
    Add(orphaned_responses_);
    return;
  }
  if (from_shard) --it->second.in_flight;
  if (!it->second.conn.QueueFrame(payload)) {
    Add(slow_consumer_closes_);
    CloseConnection(conn_id);
    return;
  }
  Add(frames_out_);
  it->second.last_activity = std::chrono::steady_clock::now();
  if (!it->second.conn.Flush()) {
    CloseConnection(conn_id);
    return;
  }
  UpdateInterest(conn_id);
  MaybeFinishConnection(conn_id);
}

void Reactor::OnSubmitted(uint64_t conn_id) {
  ++in_flight_total_;
  if (auto it = connections_.find(conn_id); it != connections_.end()) {
    ++it->second.in_flight;
  }
}

void Reactor::SetBinaryMode(uint64_t conn_id) {
  if (auto it = connections_.find(conn_id); it != connections_.end()) {
    it->second.binary_mode = true;
  }
}

bool Reactor::binary_mode(uint64_t conn_id) const {
  const auto it = connections_.find(conn_id);
  return it != connections_.end() && it->second.binary_mode;
}

void Reactor::Poison(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  it->second.read_closed = true;
  UpdateInterest(conn_id);
  MaybeFinishConnection(conn_id);
}

void Reactor::UpdateInterest(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  const ConnState& state = it->second;
  if (state.read_closed && !state.conn.wants_write()) {
    // Nothing to poll for — and both backends report hangup/error even for
    // an empty interest set, so leaving a dead-but-pending connection
    // (in-flight shard responses) registered would busy-spin the loop.
    // Response delivery re-registers write interest when it queues data.
    poller_->Forget(state.conn.fd());
    return;
  }
  poller_->Watch(state.conn.fd(), /*read=*/!state.read_closed,
                 /*write=*/state.conn.wants_write());
}

void Reactor::MaybeFinishConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  const ConnState& state = it->second;
  if (state.read_closed && state.in_flight == 0 &&
      !state.conn.wants_write()) {
    CloseConnection(conn_id);
  }
}

void Reactor::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  poller_->Forget(it->second.conn.fd());
  fd_to_conn_.erase(it->second.conn.fd());
  connections_.erase(it);
  Add(active_connections_, -1);
  Add(closed_connections_);
}

void Reactor::ReapIdle(std::chrono::steady_clock::time_point now) {
  const auto timeout = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<uint64_t> stale;
  for (const auto& [conn_id, state] : connections_) {
    // Never reap a connection the server still owes something — an
    // in-flight solve or an unflushed response is activity, just not
    // socket-visible activity.
    if (state.in_flight > 0 || state.conn.wants_write()) continue;
    if (now - state.last_activity >= timeout) stale.push_back(conn_id);
  }
  for (const uint64_t conn_id : stale) {
    Add(idle_closes_);
    CloseConnection(conn_id);
  }
}

}  // namespace auditgame::server
