#ifndef AUDIT_GAME_SERVER_DURABILITY_H_
#define AUDIT_GAME_SERVER_DURABILITY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::server {

/// WAL fsync policy — when appended records are forced to stable storage
/// relative to the response leaving the server.
///
///   kNone   never fsyncs: records reach the OS page cache before the
///           response, so a process kill loses nothing but a machine crash
///           may lose the tail.
///   kBatch  (default) one fdatasync per shard micro-batch — the group
///           commit: every response in a batch waits for one sync, so the
///           hot path pays ~1/batch_size of a sync per request.
///   kAlways one write + fdatasync per record, before it is applied.
enum class WalSync { kNone, kBatch, kAlways };

const char* WalSyncName(WalSync sync);
util::StatusOr<WalSync> WalSyncFromName(std::string_view name);

struct DurabilityOptions {
  /// Root directory; each shard uses `<data_dir>/shard-<i>/`. Empty
  /// disables durability entirely (no files, no WAL copies of payloads).
  std::string data_dir;
  WalSync wal_sync = WalSync::kBatch;
  /// Snapshot cadence: after this many WAL records since the last snapshot
  /// (0 = never by count) ...
  uint64_t snapshot_every_records = 4096;
  /// ... or this many seconds, whichever comes first (0 = never by time).
  /// Either trigger still requires at least one new record.
  double snapshot_interval_seconds = 30.0;
  /// WAL segment rotation threshold.
  uint64_t wal_segment_bytes = 64ull << 20;
  /// Snapshots retained per shard; older ones are pruned after a newer
  /// snapshot lands (≥ 2 keeps a fallback if the newest is torn).
  int snapshots_to_keep = 2;
  /// Take a final synchronous snapshot when the shard drains cleanly.
  /// Tests set false to force the next start through WAL replay.
  bool snapshot_on_drain = true;

  bool enabled() const { return !data_dir.empty(); }
};

/// ---- File formats (shared with tools/audit_state) ----------------------
///
/// Snapshot `snapshot-<seq>.snap` (written to .tmp, fsync'd, renamed):
///
///   8  magic "AGSNAP1\n"
///   u32 format version (kSnapshotFormatVersion)
///   u32 shard index
///   u64 snapshot sequence number
///   u64 wal_lsn: last WAL record already reflected in the body (replay
///       resumes at wal_lsn + 1)
///   u64 body length
///   u32 CRC-32 of the body
///   u32 CRC-32 of all preceding header bytes
///   body (a Serializer stream of the shard state)
///
/// WAL segment `wal-<start_lsn>.wal`:
///
///   8  magic "AGWAL1\n\0"
///   u32 format version (kWalFormatVersion)
///   u32 shard index
///   u64 start_lsn: LSN of the first record in this segment
///   u32 CRC-32 of all preceding header bytes
///
/// then records, each:
///
///   u32 payload length
///   u32 CRC-32 over (big-endian LSN bytes + payload)
///   u64 LSN (contiguous: start_lsn, start_lsn+1, ...)
///   payload (the verbatim wire bytes of the ingest/solve_cycle request)
///
/// Recovery invariant: any byte-prefix of a segment is recoverable — the
/// scan stops at the first record whose header is short, whose length is
/// implausible, whose CRC mismatches, or whose LSN breaks contiguity, and
/// the writer truncates the file back to the last valid record.

inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr uint32_t kWalFormatVersion = 1;
inline constexpr std::string_view kSnapshotMagic = "AGSNAP1\n";
inline constexpr std::string_view kWalMagic{"AGWAL1\n\0", 8};
/// Sanity cap on a single WAL record; anything larger is treated as a torn
/// length field (real payloads are bounded by the frame-size limit, which
/// is far smaller).
inline constexpr uint32_t kMaxWalRecordPayload = 256u << 20;

struct SnapshotContents {
  uint32_t shard = 0;
  uint64_t seq = 0;
  uint64_t wal_lsn = 0;
  std::string body;
};

/// Reads and fully verifies one snapshot file (both CRCs).
util::StatusOr<SnapshotContents> ReadSnapshotFile(const std::string& path);

/// Writes a snapshot atomically: `<path>.tmp`, fsync, rename, fsync dir.
util::Status WriteSnapshotFile(const std::string& path, uint32_t shard,
                               uint64_t seq, uint64_t wal_lsn,
                               std::string_view body);

struct WalRecord {
  uint64_t lsn = 0;
  std::string payload;
};

struct WalSegmentScan {
  uint32_t shard = 0;
  uint64_t start_lsn = 0;
  uint64_t records = 0;
  uint64_t last_lsn = 0;  // start_lsn - 1 when the segment is empty
  /// Byte offset just past the last valid record — the truncation point.
  uint64_t valid_bytes = 0;
  /// Non-empty when the scan stopped before end-of-file (the torn tail's
  /// diagnosis); empty means the whole file was valid.
  std::string torn_reason;
};

/// Scans one WAL segment, invoking `on_record` (may be null) for each valid
/// record in order. Returns the scan summary; only header-level corruption
/// (bad magic/version/CRC) is an error — a torn record tail is a normal
/// outcome reported via `torn_reason`.
util::StatusOr<WalSegmentScan> ScanWalSegment(
    const std::string& path,
    const std::function<void(const WalRecord&)>& on_record);

/// Encodes one WAL record (the scan's inverse); exposed for tests.
std::string EncodeWalRecord(uint64_t lsn, std::string_view payload);
/// Encodes a segment header; exposed for tests.
std::string EncodeWalSegmentHeader(uint32_t shard, uint64_t start_lsn);

/// Lists `prefix`-named files in `dir` sorted ascending by their numeric
/// suffix (e.g. "wal-" → every wal-<n>.wal). Missing dir = empty list.
std::vector<std::string> ListNumberedFiles(const std::string& dir,
                                           std::string_view prefix,
                                           std::string_view suffix);

/// Point-in-time persistence counters, merged into the shard's stats.
struct PersistenceStats {
  uint64_t last_snapshot_seq = 0;
  /// Live WAL records: survivors of recovery plus appends since.
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_segments = 0;
  uint64_t snapshots_written = 0;
  uint64_t wal_syncs = 0;
  /// Group-commit fsync latency percentiles (seconds) over a bounded
  /// window of the most recent WAL syncs — the cost each committed batch
  /// pays under --wal_sync=batch (and each record under always). Zero
  /// until the first sync; `wal_syncs` counts all syncs ever.
  double fsync_seconds_p50 = 0.0;
  double fsync_seconds_p90 = 0.0;
  double fsync_seconds_p99 = 0.0;
  double fsync_seconds_max = 0.0;
  uint64_t recovery_replayed = 0;
  double recovery_seconds = 0.0;
  /// LSN of the last record reflected in the recovered state (snapshot or
  /// replay, whichever is newer).
  uint64_t recovery_wal_lsn = 0;
  /// Hex state fingerprint right after recovery — the cross-process
  /// bit-for-bit verification hook (set by the shard, not this layer).
  std::string recovery_fingerprint;
  std::string wal_sync;
};

/// Per-shard durability engine: WAL append/commit on the shard thread, a
/// background writer thread for snapshots (the hot path never blocks on a
/// snapshot's write+fsync), and the startup recovery scan.
///
/// Threading: Recover() runs before the shard thread starts. AppendWal()/
/// CommitBatch()/MaybeSnapshot()/FinalSnapshot() are shard-thread-only.
/// Stats() is safe from any thread.
class ShardPersistence {
 public:
  ShardPersistence(int shard_index, DurabilityOptions options);
  ~ShardPersistence();

  ShardPersistence(const ShardPersistence&) = delete;
  ShardPersistence& operator=(const ShardPersistence&) = delete;

  /// Recovers state from disk: picks the newest snapshot that verifies
  /// (falling back to older ones), hands its body to `restore`, then
  /// replays every WAL record past the snapshot through `apply`, truncates
  /// any torn tail, and positions the writer at the next LSN. `restore` is
  /// skipped when no usable snapshot exists (recovery is then a full WAL
  /// replay into the shard's initial state).
  util::Status Recover(
      const std::function<util::Status(const SnapshotContents&)>& restore,
      const std::function<util::Status(const WalRecord&)>& apply);

  /// Buffers one record (kAlways: writes and syncs it immediately).
  /// Returns the record's LSN.
  util::StatusOr<uint64_t> AppendWal(std::string_view payload);

  /// Flushes buffered records and applies the sync policy. Call once per
  /// micro-batch, after appends, before responses are released.
  util::Status CommitBatch();

  /// True when the snapshot cadence (records or seconds) has elapsed and a
  /// snapshot is not already in flight.
  bool ShouldSnapshot();

  /// Hands a serialized state body to the background writer; never blocks
  /// on IO. `wal_lsn` is the last LSN reflected in the body.
  void SnapshotAsync(std::string body, uint64_t wal_lsn);

  /// Synchronous snapshot (the clean-drain path); waits for any async
  /// snapshot in flight first.
  util::Status FinalSnapshot(std::string body, uint64_t wal_lsn);

  /// Records the shard's post-recovery state fingerprint for Stats().
  void SetRecoveryFingerprint(std::string hex);

  uint64_t next_lsn() const { return next_lsn_; }
  const DurabilityOptions& options() const { return options_; }
  const std::string& dir() const { return dir_; }

  PersistenceStats Stats() const;

  /// `<data_dir>/shard-<index>/`, the layout contract with audit_state.
  static std::string ShardDir(const std::string& data_dir, int shard_index);

 private:
  util::Status OpenFreshSegment();
  util::Status WriteAndMaybeSync(std::string_view bytes, bool sync);
  void SnapshotWriterLoop();
  /// Writes one snapshot + prunes old snapshots and fully-covered WAL
  /// segments. Runs on the writer thread (or inline for FinalSnapshot).
  util::Status WriteSnapshotAndPrune(uint64_t seq, uint64_t wal_lsn,
                                     const std::string& body);

  const int shard_index_;
  const DurabilityOptions options_;
  const std::string dir_;

  // Shard-thread state (no lock needed).
  int wal_fd_ = -1;
  std::string wal_path_;
  uint64_t next_lsn_ = 1;
  uint64_t segment_bytes_ = 0;
  std::string pending_;
  uint64_t pending_records_ = 0;
  uint64_t pending_bytes_ = 0;
  uint64_t records_since_snapshot_ = 0;
  std::chrono::steady_clock::time_point last_snapshot_time_;
  uint64_t next_snapshot_seq_ = 1;

  // Shared counters (stats_mutex_). The fsync window is a ring of the most
  // recent sync durations; Stats() sorts a copy to report percentiles.
  mutable std::mutex stats_mutex_;
  PersistenceStats stats_;
  static constexpr size_t kFsyncWindow = 1024;
  std::vector<double> fsync_window_;
  size_t fsync_next_ = 0;

  // Snapshot writer thread. `job_` is a latest-wins mailbox: a newer
  // snapshot replaces a queued-but-unstarted older one.
  struct SnapshotJob {
    uint64_t seq = 0;
    uint64_t wal_lsn = 0;
    std::string body;
  };
  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::optional<SnapshotJob> job_;
  bool job_running_ = false;
  bool writer_exit_ = false;
  std::thread writer_;
};

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_DURABILITY_H_
