#ifndef AUDIT_GAME_SERVER_PROTOCOL_H_
#define AUDIT_GAME_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "prob/count_distribution.h"
#include "service/audit_service.h"
#include "util/json.h"
#include "util/status.h"
#include "util/statusor.h"

namespace auditgame::server {

/// The audit-server wire protocol: one JSON object per frame (see
/// net/frame.h for the framing). Requests carry a verb, a tenant id and a
/// client-chosen request id that every response echoes, so clients may
/// pipeline. Schema (docs/DESIGN.md "Network serving" is the reference):
///
///   {"verb":"ingest","tenant":"acme","id":7,
///    "distributions":[{"min":0,"pmf":[0.5,0.3,0.2]}, ...]}
///   {"verb":"solve_cycle","tenant":"acme","id":8}
///   {"verb":"stats","id":9}
///
/// Responses always carry `id` and `status` ("ok" | "overloaded" |
/// "error" | "backend_down"). `overloaded` is the backpressure contract:
/// the shard's bounded queue was full, nothing was applied, and the client
/// may retry. `backend_down` is its cluster-mode sibling, originated by
/// the router when the backend owning a tenant is unreachable — equally
/// retryable (nothing was applied), but distinguishable so failover
/// traffic can be counted.
/// `error` carries a `message`; malformed JSON gets an error response with
/// id -1 on the same connection — only framing violations cost the
/// connection itself.
///
/// The `id` is a *correlation id*: a connection may pipeline any number of
/// in-flight requests, and responses echo the id so the client can pair
/// them. Responses may complete out of submission order across tenants
/// (different shards); one tenant's responses stay in submission order
/// (same shard, FIFO queue). The hot verbs also have a compact binary
/// encoding carried in the same frames — see server/binary_codec.h;
/// `Request::binary` records which encoding a request arrived in, and the
/// response mirrors it.
enum class Verb { kIngest, kSolveCycle, kStats };

const char* VerbName(Verb verb);

/// A parsed, validated request.
struct Request {
  Verb verb = Verb::kStats;
  std::string tenant;
  int64_t id = -1;
  /// Wire encoding the request arrived in (and its response leaves in):
  /// true = binary (server/binary_codec.h), false = JSON.
  bool binary = false;
  /// kSolveCycle, JSON only: ask the shard to include each policy's mixed
  /// per-type detection probabilities in the response. The adversary-loop
  /// observation channel — computing the probabilities builds a detection
  /// model per policy, so it is opt-in and deliberately absent from the
  /// binary hot path (BENCH_server.json gates that throughput).
  bool observe_policy = false;
  /// kIngest only: the cycle's refreshed per-type distributions.
  std::vector<prob::CountDistribution> distributions;
};

/// Parses and validates one request document. `stats` needs no tenant;
/// `ingest`/`solve_cycle` require a non-empty one.
util::StatusOr<Request> ParseRequest(const util::JsonValue& doc);

/// Best-effort `id` of a request document whose full parse failed (-1 when
/// absent or not a number) — so even rejected requests echo an id.
int64_t RequestIdOf(const util::JsonValue& doc);

/// --- client-side builders (loadgen, tests) ---

std::string MakeIngestRequest(
    int64_t id, const std::string& tenant,
    const std::vector<prob::CountDistribution>& distributions);
std::string MakeSolveCycleRequest(int64_t id, const std::string& tenant,
                                  bool observe_policy = false);
std::string MakeStatsRequest(int64_t id);

/// --- client-side response views (adversary loop, tools) ---

/// One policy of a parsed solve_cycle response.
struct SolveCyclePolicy {
  double budget = 0.0;
  std::string source;  // "cache" | "warm" | "cold"
  double drift = 0.0;
  double objective = 0.0;
  std::vector<double> thresholds;
  /// Mixed per-type detection probabilities; present only when the request
  /// carried observe_policy.
  std::vector<double> detection_probs;
};

struct SolveCycleReply {
  int64_t cycle = 0;
  int shard = 0;
  std::vector<SolveCyclePolicy> policies;
};

/// Parses the body of a status=="ok" solve_cycle response (the caller
/// checks `status` first; overloaded/error envelopes have no cycle body).
util::StatusOr<SolveCycleReply> ParseSolveCycleReply(
    const util::JsonValue& doc);

/// --- server-side builders ---

std::string MakeIngestOkResponse(int64_t id, const std::string& tenant,
                                 int shard);
/// `detection_probs`, when non-null, carries one mixed-Pal vector per
/// policy in the report (the observe_policy response payload).
std::string MakeSolveCycleResponse(
    int64_t id, const std::string& tenant, int shard,
    const service::AuditService::CycleReport& report,
    const std::vector<std::vector<double>>* detection_probs = nullptr);
std::string MakeOverloadedResponse(int64_t id, const std::string& tenant,
                                   int shard);
/// Router-originated: the tenant's backend is unreachable; nothing was
/// applied and the client may retry.
std::string MakeBackendDownResponse(int64_t id, const std::string& tenant);
std::string MakeErrorResponse(int64_t id, const std::string& message);

/// Wraps a prebuilt stats body into the response envelope.
std::string MakeStatsResponse(int64_t id, util::JsonValue::Object body);

/// "cache" / "warm" / "cold" — the wire names of a policy's source, shared
/// by the serving tools' CSV output.
const char* SourceName(service::AuditService::Source source);

/// JSON (de)serialization of alert-count distributions, the `ingest`
/// payload: [{"min":int,"pmf":[...]}, ...].
util::JsonValue EncodeDistributions(
    const std::vector<prob::CountDistribution>& distributions);
util::StatusOr<std::vector<prob::CountDistribution>> ParseDistributions(
    const util::JsonValue& doc);

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_PROTOCOL_H_
