#include "server/binary_codec.h"

#include <cstring>
#include <utility>

namespace auditgame::server {

namespace {

/// --- writers: big-endian into an append-only string ---

void PutU8(std::string* out, unsigned char v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 doubles expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// --- bounds-checked reader over an untrusted payload ---

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(unsigned char* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<unsigned char>(data_[pos_++]);
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = static_cast<uint16_t>(
        (static_cast<uint16_t>(Byte(pos_)) << 8) | Byte(pos_ + 1));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v = (*v << 8) | Byte(pos_ + i);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v = (*v << 8) | Byte(pos_ + i);
    pos_ += 8;
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  unsigned char Byte(size_t i) const {
    return static_cast<unsigned char>(data_[i]);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

util::Status Malformed(const std::string& what) {
  return util::InvalidArgumentError("malformed binary frame: " + what);
}

void PutRequestHeader(std::string* out, unsigned char verb,
                      int64_t correlation_id, const std::string& tenant) {
  PutU8(out, kBinaryMagic);
  PutU8(out, kBinaryVersion);
  PutU8(out, kBinaryKindRequest);
  PutU8(out, verb);
  PutU64(out, static_cast<uint64_t>(correlation_id));
  PutU16(out, static_cast<uint16_t>(tenant.size()));
  out->append(tenant);
}

void PutResponseHeader(std::string* out, unsigned char verb,
                       int64_t correlation_id, unsigned char status,
                       int shard) {
  PutU8(out, kBinaryMagic);
  PutU8(out, kBinaryVersion);
  PutU8(out, kBinaryKindResponse);
  PutU8(out, verb);
  PutU64(out, static_cast<uint64_t>(correlation_id));
  PutU8(out, status);
  PutU16(out, shard < 0 ? 0xffff : static_cast<uint16_t>(shard));
}

/// Caps mirroring the JSON path's implicit limits: a frame within the
/// decoder's payload cap cannot legitimately announce more elements than
/// the bytes it carries, so these only bound what a *lying* count field
/// can make the decoder allocate before the byte-bounds check would trip.
constexpr uint16_t kMaxDistributions = 4096;
constexpr uint16_t kMaxPmfLen = 16384;

}  // namespace

std::string EncodeBinaryIngestRequest(
    int64_t correlation_id, const std::string& tenant,
    const std::vector<prob::CountDistribution>& distributions) {
  std::string out;
  size_t doubles = 0;
  for (const prob::CountDistribution& dist : distributions) {
    doubles += static_cast<size_t>(dist.support_size());
  }
  out.reserve(16 + tenant.size() + 2 + distributions.size() * 6 +
              doubles * 8);
  PutRequestHeader(&out, kBinaryVerbIngest, correlation_id, tenant);
  PutU16(&out, static_cast<uint16_t>(distributions.size()));
  for (const prob::CountDistribution& dist : distributions) {
    PutU32(&out, static_cast<uint32_t>(dist.min_value()));
    PutU16(&out, static_cast<uint16_t>(dist.support_size()));
    for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
      PutF64(&out, dist.Pmf(z));
    }
  }
  return out;
}

std::string EncodeBinarySolveCycleRequest(int64_t correlation_id,
                                          const std::string& tenant) {
  std::string out;
  out.reserve(16 + tenant.size());
  PutRequestHeader(&out, kBinaryVerbSolveCycle, correlation_id, tenant);
  return out;
}

int64_t BinaryCorrelationIdOf(std::string_view payload) {
  Reader reader(payload);
  unsigned char magic, version, kind, verb;
  uint64_t id;
  if (!reader.ReadU8(&magic) || !reader.ReadU8(&version) ||
      !reader.ReadU8(&kind) || !reader.ReadU8(&verb) || !reader.ReadU64(&id)) {
    return -1;
  }
  return static_cast<int64_t>(id);
}

util::StatusOr<Request> DecodeBinaryRequest(std::string_view payload) {
  Reader reader(payload);
  unsigned char magic, version, kind, verb;
  if (!reader.ReadU8(&magic) || !reader.ReadU8(&version) ||
      !reader.ReadU8(&kind) || !reader.ReadU8(&verb)) {
    return Malformed("truncated header");
  }
  if (magic != kBinaryMagic) return Malformed("bad magic");
  if (version != kBinaryVersion) {
    return Malformed("unsupported version " + std::to_string(version));
  }
  if (kind != kBinaryKindRequest) return Malformed("not a request frame");

  Request request;
  request.binary = true;
  uint64_t id;
  if (!reader.ReadU64(&id)) return Malformed("truncated correlation id");
  request.id = static_cast<int64_t>(id);

  uint16_t tenant_len;
  if (!reader.ReadU16(&tenant_len) ||
      !reader.ReadBytes(tenant_len, &request.tenant)) {
    return Malformed("truncated tenant");
  }
  if (request.tenant.empty()) return Malformed("tenant must be non-empty");

  switch (verb) {
    case kBinaryVerbSolveCycle:
      request.verb = Verb::kSolveCycle;
      break;
    case kBinaryVerbIngest: {
      request.verb = Verb::kIngest;
      uint16_t count;
      if (!reader.ReadU16(&count)) return Malformed("truncated ingest body");
      if (count > kMaxDistributions) {
        return Malformed("distribution count " + std::to_string(count));
      }
      request.distributions.reserve(count);
      for (uint16_t i = 0; i < count; ++i) {
        uint32_t min;
        uint16_t pmf_len;
        if (!reader.ReadU32(&min) || !reader.ReadU16(&pmf_len)) {
          return Malformed("truncated distribution header");
        }
        if (min > 1000000000u) {
          return Malformed("distribution min " + std::to_string(min));
        }
        if (pmf_len > kMaxPmfLen) {
          return Malformed("pmf length " + std::to_string(pmf_len));
        }
        std::vector<double> pmf(pmf_len);
        for (uint16_t j = 0; j < pmf_len; ++j) {
          if (!reader.ReadF64(&pmf[j])) return Malformed("truncated pmf");
        }
        // Semantic validation (non-negative, normalized, non-empty) is
        // FromPmf's job, exactly as on the JSON path.
        auto dist = prob::CountDistribution::FromPmf(static_cast<int>(min),
                                                     std::move(pmf));
        if (!dist.ok()) return dist.status();
        request.distributions.push_back(*std::move(dist));
      }
      break;
    }
    default:
      // `stats` has no binary form: it is the debug/ops verb and carries a
      // large nested document — the JSON path is its encoding.
      return Malformed("unknown verb " + std::to_string(verb));
  }
  if (!reader.exhausted()) return Malformed("trailing bytes");
  return request;
}

std::string EncodeBinaryIngestOkResponse(int64_t correlation_id, int shard) {
  std::string out;
  out.reserve(15);
  PutResponseHeader(&out, kBinaryVerbIngest, correlation_id, kBinaryStatusOk,
                    shard);
  return out;
}

std::string EncodeBinarySolveCycleResponse(
    int64_t correlation_id, int shard,
    const service::AuditService::CycleReport& report) {
  std::string out;
  out.reserve(64 + report.policies.size() * 64);
  PutResponseHeader(&out, kBinaryVerbSolveCycle, correlation_id,
                    kBinaryStatusOk, shard);
  PutU64(&out, static_cast<uint64_t>(report.cycle));
  PutF64(&out, report.seconds);
  PutU16(&out, static_cast<uint16_t>(report.policies.size()));
  for (const service::AuditService::CyclePolicy& policy : report.policies) {
    PutF64(&out, policy.budget);
    PutU8(&out, static_cast<unsigned char>(policy.source));
    PutF64(&out, policy.drift);
    PutF64(&out, policy.result.objective);
    PutU16(&out, static_cast<uint16_t>(policy.result.thresholds.size()));
    for (double b : policy.result.thresholds) PutF64(&out, b);
  }
  return out;
}

std::string EncodeBinaryOverloadedResponse(int64_t correlation_id, int shard,
                                           unsigned char verb) {
  std::string out;
  out.reserve(15);
  PutResponseHeader(&out, verb, correlation_id, kBinaryStatusOverloaded,
                    shard);
  return out;
}

std::string EncodeBinaryBackendDownResponse(int64_t correlation_id,
                                            unsigned char verb) {
  std::string out;
  out.reserve(15);
  PutResponseHeader(&out, verb, correlation_id, kBinaryStatusBackendDown, -1);
  return out;
}

bool RewriteBinaryCorrelationId(std::string* payload, int64_t correlation_id) {
  // magic(1) version(1) kind(1) verb(1) id(8): the id spans bytes 4..11 of
  // every binary frame, request or response.
  if (payload->size() < 12 || !IsBinaryFrame(*payload)) return false;
  uint64_t v = static_cast<uint64_t>(correlation_id);
  for (int i = 0; i < 8; ++i) {
    (*payload)[4 + i] = static_cast<char>((v >> (56 - 8 * i)) & 0xff);
  }
  return true;
}

int BinaryResponseStatusOf(std::string_view payload) {
  // Response header: magic(1) version(1) kind(1) verb(1) id(8) status(1).
  if (payload.size() < 13 || !IsBinaryFrame(payload)) return -1;
  if (static_cast<unsigned char>(payload[2]) != kBinaryKindResponse) return -1;
  return static_cast<unsigned char>(payload[12]);
}

std::string EncodeBinaryErrorResponse(int64_t correlation_id,
                                      std::string_view message) {
  std::string out;
  out.reserve(19 + message.size());
  PutResponseHeader(&out, 0, correlation_id, kBinaryStatusError, -1);
  PutU32(&out, static_cast<uint32_t>(message.size()));
  out.append(message);
  return out;
}

util::StatusOr<BinaryResponse> DecodeBinaryResponse(std::string_view payload) {
  Reader reader(payload);
  unsigned char magic, version, kind;
  BinaryResponse response;
  if (!reader.ReadU8(&magic) || !reader.ReadU8(&version) ||
      !reader.ReadU8(&kind) || !reader.ReadU8(&response.verb)) {
    return Malformed("truncated header");
  }
  if (magic != kBinaryMagic) return Malformed("bad magic");
  if (version != kBinaryVersion) {
    return Malformed("unsupported version " + std::to_string(version));
  }
  if (kind != kBinaryKindResponse) return Malformed("not a response frame");

  uint64_t id;
  uint16_t shard;
  if (!reader.ReadU64(&id) || !reader.ReadU8(&response.status) ||
      !reader.ReadU16(&shard)) {
    return Malformed("truncated response header");
  }
  response.correlation_id = static_cast<int64_t>(id);
  response.shard = shard == 0xffff ? -1 : static_cast<int>(shard);

  switch (response.status) {
    case kBinaryStatusOk:
      if (response.verb == kBinaryVerbSolveCycle) {
        uint64_t cycle;
        uint16_t count;
        if (!reader.ReadU64(&cycle) || !reader.ReadF64(&response.seconds) ||
            !reader.ReadU16(&count)) {
          return Malformed("truncated solve body");
        }
        response.cycle = static_cast<int64_t>(cycle);
        response.policies.reserve(count);
        for (uint16_t i = 0; i < count; ++i) {
          BinaryPolicy policy;
          unsigned char source;
          uint16_t thresholds;
          if (!reader.ReadF64(&policy.budget) || !reader.ReadU8(&source) ||
              !reader.ReadF64(&policy.drift) ||
              !reader.ReadF64(&policy.objective) ||
              !reader.ReadU16(&thresholds)) {
            return Malformed("truncated policy");
          }
          if (source > 2) return Malformed("bad policy source");
          policy.source = static_cast<service::AuditService::Source>(source);
          policy.thresholds.resize(thresholds);
          for (uint16_t j = 0; j < thresholds; ++j) {
            if (!reader.ReadF64(&policy.thresholds[j])) {
              return Malformed("truncated thresholds");
            }
          }
          response.policies.push_back(std::move(policy));
        }
      }
      break;
    case kBinaryStatusOverloaded:
    case kBinaryStatusBackendDown:
      break;
    case kBinaryStatusError: {
      uint32_t len;
      if (!reader.ReadU32(&len) || !reader.ReadBytes(len, &response.message)) {
        return Malformed("truncated error message");
      }
      break;
    }
    default:
      return Malformed("unknown status " + std::to_string(response.status));
  }
  if (!reader.exhausted()) return Malformed("trailing bytes");
  return response;
}

}  // namespace auditgame::server
