#ifndef AUDIT_GAME_SERVER_HASH_RING_H_
#define AUDIT_GAME_SERVER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace auditgame::server {

/// Consistent-hash placement of tenants on backend nodes: each node
/// contributes `virtual_nodes` points on a 64-bit ring (FNV-1a over the
/// node name and replica index) and a tenant lands on the first point
/// clockwise of its own hash — the same FNV-1a tenant hash the in-process
/// shard routing uses (AuditServer::ShardForTenant), just without the
/// modulus. Removing a node deletes only that node's points, so only the
/// tenants that hashed to them move (to each arc's clockwise neighbor);
/// everything else stays put. That minimal-movement property is what makes
/// the router's warm-failover story work: a backend kill re-routes its
/// tenants and nobody else's cache locality is disturbed.
///
/// The successor of a tenant — the owner of the next arc belonging to a
/// *different* node — doubles as its replication target: the node that
/// will inherit the tenant if the primary dies is exactly the one kept
/// warm. Deterministic across runs and platforms (pure FNV-1a, sorted
/// points, node id as the collision tiebreak). Not thread-safe; the
/// router guards it with its own mutex.
class HashRing {
 public:
  explicit HashRing(int virtual_nodes = 128);

  /// Adds (or re-adds) a node. `name` seeds the ring points, so a node's
  /// arcs are a function of its name alone — remove + add round-trips to
  /// the identical layout.
  void AddNode(int id, const std::string& name);
  void RemoveNode(int id);
  bool HasNode(int id) const { return nodes_.count(id) != 0; }
  size_t size() const { return nodes_.size(); }
  int virtual_nodes() const { return virtual_nodes_; }

  /// The tenant's position on the ring: FNV-1a(tenant), length-prefixed —
  /// identical to the hash behind ShardForTenant.
  static uint64_t PointForTenant(const std::string& tenant);

  /// Owner of the first ring point clockwise of `point` (wrapping), -1 on
  /// an empty ring.
  int PrimaryFor(uint64_t point) const;

  /// Owner of the next arc after the primary's that belongs to a
  /// different node — the failover inheritor / replication target. -1
  /// when fewer than two nodes are live.
  int SuccessorFor(uint64_t point) const;

 private:
  void Rebuild();

  int virtual_nodes_;
  std::map<int, std::string> nodes_;
  /// Sorted (point, node id) pairs — rebuilt on membership change, binary
  /// searched on every placement.
  std::vector<std::pair<uint64_t, int>> points_;
};

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_HASH_RING_H_
