#include "server/durability.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/percentile.h"
#include "util/serializer.h"

namespace auditgame::server {
namespace {

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v >> 24));
  out->push_back(static_cast<char>(v >> 16));
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v >> 32));
  PutU32(out, static_cast<uint32_t>(v));
}

uint32_t GetU32(std::string_view data, size_t pos) {
  return (uint32_t{static_cast<unsigned char>(data[pos])} << 24) |
         (uint32_t{static_cast<unsigned char>(data[pos + 1])} << 16) |
         (uint32_t{static_cast<unsigned char>(data[pos + 2])} << 8) |
         uint32_t{static_cast<unsigned char>(data[pos + 3])};
}

uint64_t GetU64(std::string_view data, size_t pos) {
  return (uint64_t{GetU32(data, pos)} << 32) | GetU32(data, pos + 4);
}

util::Status ErrnoError(const std::string& what) {
  return util::InternalError(what + ": " + std::strerror(errno));
}

util::Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) {
    return util::OkStatus();
  }
  return ErrnoError("mkdir " + path);
}

util::Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("open dir " + dir);
  util::Status status = util::OkStatus();
  if (::fsync(fd) != 0) status = ErrnoError("fsync dir " + dir);
  ::close(fd);
  return status;
}

util::StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return util::InternalError("read failed: " + path);
  return contents;
}

std::string NumberedName(std::string_view prefix, uint64_t n,
                         std::string_view suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(n));
  return std::string(prefix) + buf + std::string(suffix);
}

/// Fixed per-record overhead: u32 len + u32 crc + u64 lsn.
constexpr size_t kWalRecordHeader = 16;
/// Segment header: magic + u32 version + u32 shard + u64 start_lsn + u32 crc.
constexpr size_t kWalSegmentHeader = 8 + 4 + 4 + 8 + 4;
/// Snapshot header: magic + u32 ver + u32 shard + u64 seq + u64 lsn +
/// u64 body_len + u32 body_crc + u32 header_crc.
constexpr size_t kSnapshotHeader = 8 + 4 + 4 + 8 + 8 + 8 + 4 + 4;

std::string LsnBytes(uint64_t lsn) {
  std::string bytes;
  bytes.reserve(8);
  PutU64(&bytes, lsn);
  return bytes;
}

}  // namespace

const char* WalSyncName(WalSync sync) {
  switch (sync) {
    case WalSync::kNone:
      return "none";
    case WalSync::kBatch:
      return "batch";
    case WalSync::kAlways:
      return "always";
  }
  return "unknown";
}

util::StatusOr<WalSync> WalSyncFromName(std::string_view name) {
  if (name == "none") return WalSync::kNone;
  if (name == "batch") return WalSync::kBatch;
  if (name == "always") return WalSync::kAlways;
  return util::InvalidArgumentError("unknown wal_sync '" + std::string(name) +
                                    "' (none|batch|always)");
}

util::Status WriteSnapshotFile(const std::string& path, uint32_t shard,
                               uint64_t seq, uint64_t wal_lsn,
                               std::string_view body) {
  std::string header;
  header.reserve(kSnapshotHeader);
  header.append(kSnapshotMagic);
  PutU32(&header, kSnapshotFormatVersion);
  PutU32(&header, shard);
  PutU64(&header, seq);
  PutU64(&header, wal_lsn);
  PutU64(&header, body.size());
  PutU32(&header, util::Crc32(body));
  PutU32(&header, util::Crc32(header));

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0666);
  if (fd < 0) return ErrnoError("open " + tmp);
  auto write_all = [fd](std::string_view bytes) -> util::Status {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoError("write snapshot");
      }
      off += static_cast<size_t>(n);
    }
    return util::OkStatus();
  };
  util::Status status = write_all(header);
  if (status.ok()) status = write_all(body);
  if (status.ok() && ::fsync(fd) != 0) status = ErrnoError("fsync " + tmp);
  ::close(fd);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const util::Status err = ErrnoError("rename " + tmp);
    ::unlink(tmp.c_str());
    return err;
  }
  // The rename itself must be durable, or a crash can forget the newest
  // snapshot while its WAL segments were already pruned.
  const size_t slash = path.rfind('/');
  return SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

util::StatusOr<SnapshotContents> ReadSnapshotFile(const std::string& path) {
  ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (data.size() < kSnapshotHeader) {
    return util::InvalidArgumentError(path + ": short snapshot header");
  }
  if (std::string_view(data).substr(0, 8) != kSnapshotMagic) {
    return util::InvalidArgumentError(path + ": bad snapshot magic");
  }
  const uint32_t header_crc = GetU32(data, kSnapshotHeader - 4);
  if (util::Crc32(std::string_view(data).substr(0, kSnapshotHeader - 4)) !=
      header_crc) {
    return util::InvalidArgumentError(path + ": snapshot header CRC mismatch");
  }
  const uint32_t version = GetU32(data, 8);
  if (version != kSnapshotFormatVersion) {
    return util::InvalidArgumentError(
        path + ": unsupported snapshot format v" + std::to_string(version));
  }
  SnapshotContents contents;
  contents.shard = GetU32(data, 12);
  contents.seq = GetU64(data, 16);
  contents.wal_lsn = GetU64(data, 24);
  const uint64_t body_len = GetU64(data, 32);
  const uint32_t body_crc = GetU32(data, 40);
  if (data.size() != kSnapshotHeader + body_len) {
    return util::InvalidArgumentError(
        path + ": snapshot body length mismatch (header says " +
        std::to_string(body_len) + ", file has " +
        std::to_string(data.size() - kSnapshotHeader) + ")");
  }
  contents.body = data.substr(kSnapshotHeader);
  if (util::Crc32(contents.body) != body_crc) {
    return util::InvalidArgumentError(path + ": snapshot body CRC mismatch");
  }
  return contents;
}

std::string EncodeWalSegmentHeader(uint32_t shard, uint64_t start_lsn) {
  std::string header;
  header.reserve(kWalSegmentHeader);
  header.append(kWalMagic);
  PutU32(&header, kWalFormatVersion);
  PutU32(&header, shard);
  PutU64(&header, start_lsn);
  PutU32(&header, util::Crc32(header));
  return header;
}

std::string EncodeWalRecord(uint64_t lsn, std::string_view payload) {
  std::string record;
  record.reserve(kWalRecordHeader + payload.size());
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, util::Crc32Update(util::Crc32(LsnBytes(lsn)), payload));
  PutU64(&record, lsn);
  record.append(payload);
  return record;
}

util::StatusOr<WalSegmentScan> ScanWalSegment(
    const std::string& path,
    const std::function<void(const WalRecord&)>& on_record) {
  ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (data.size() < kWalSegmentHeader) {
    return util::InvalidArgumentError(path + ": short WAL segment header");
  }
  const std::string_view view(data);
  if (view.substr(0, 8) != kWalMagic) {
    return util::InvalidArgumentError(path + ": bad WAL magic");
  }
  if (util::Crc32(view.substr(0, kWalSegmentHeader - 4)) !=
      GetU32(data, kWalSegmentHeader - 4)) {
    return util::InvalidArgumentError(path + ": WAL header CRC mismatch");
  }
  const uint32_t version = GetU32(data, 8);
  if (version != kWalFormatVersion) {
    return util::InvalidArgumentError(path + ": unsupported WAL format v" +
                                      std::to_string(version));
  }
  WalSegmentScan scan;
  scan.shard = GetU32(data, 12);
  scan.start_lsn = GetU64(data, 16);
  scan.last_lsn = scan.start_lsn - 1;
  scan.valid_bytes = kWalSegmentHeader;

  size_t pos = kWalSegmentHeader;
  uint64_t expected_lsn = scan.start_lsn;
  while (pos < data.size()) {
    if (data.size() - pos < kWalRecordHeader) {
      scan.torn_reason = "short record header at offset " + std::to_string(pos);
      break;
    }
    const uint32_t len = GetU32(data, pos);
    if (len > kMaxWalRecordPayload) {
      scan.torn_reason = "implausible record length " + std::to_string(len) +
                         " at offset " + std::to_string(pos);
      break;
    }
    if (data.size() - pos - kWalRecordHeader < len) {
      scan.torn_reason =
          "truncated record payload at offset " + std::to_string(pos);
      break;
    }
    const uint32_t crc = GetU32(data, pos + 4);
    const uint64_t lsn = GetU64(data, pos + 8);
    const std::string_view payload = view.substr(pos + kWalRecordHeader, len);
    if (util::Crc32Update(util::Crc32(LsnBytes(lsn)), payload) != crc) {
      scan.torn_reason = "record CRC mismatch at offset " + std::to_string(pos);
      break;
    }
    if (lsn != expected_lsn) {
      scan.torn_reason = "LSN discontinuity at offset " + std::to_string(pos) +
                         " (found " + std::to_string(lsn) + ", expected " +
                         std::to_string(expected_lsn) + ")";
      break;
    }
    if (on_record) {
      WalRecord record;
      record.lsn = lsn;
      record.payload = std::string(payload);
      on_record(record);
    }
    pos += kWalRecordHeader + len;
    scan.valid_bytes = pos;
    scan.last_lsn = lsn;
    ++scan.records;
    ++expected_lsn;
  }
  return scan;
}

std::vector<std::string> ListNumberedFiles(const std::string& dir,
                                           std::string_view prefix,
                                           std::string_view suffix) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string_view name(entry->d_name);
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.substr(0, prefix.size()) != prefix) continue;
    if (name.substr(name.size() - suffix.size()) != suffix) continue;
    names.emplace_back(name);
  }
  ::closedir(d);
  // Zero-padded fixed-width numbers, so lexicographic == numeric order.
  std::sort(names.begin(), names.end());
  return names;
}

std::string ShardPersistence::ShardDir(const std::string& data_dir,
                                       int shard_index) {
  return data_dir + "/shard-" + std::to_string(shard_index);
}

ShardPersistence::ShardPersistence(int shard_index, DurabilityOptions options)
    : shard_index_(shard_index),
      options_(std::move(options)),
      dir_(ShardDir(options_.data_dir, shard_index)),
      last_snapshot_time_(std::chrono::steady_clock::now()) {
  stats_.wal_sync = WalSyncName(options_.wal_sync);
  writer_ = std::thread([this] { SnapshotWriterLoop(); });
}

ShardPersistence::~ShardPersistence() {
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    writer_exit_ = true;
  }
  job_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

util::Status ShardPersistence::Recover(
    const std::function<util::Status(const SnapshotContents&)>& restore,
    const std::function<util::Status(const WalRecord&)>& apply) {
  const auto start = std::chrono::steady_clock::now();
  RETURN_IF_ERROR(EnsureDir(options_.data_dir));
  RETURN_IF_ERROR(EnsureDir(dir_));

  // Newest snapshot that verifies wins; older ones are the fallback
  // against a torn newest (WriteSnapshotFile makes that unlikely, but
  // disks fail in more ways than rename semantics cover). A snapshot that
  // verifies but whose restore is *refused* (config mismatch) fails
  // recovery outright — silently falling back would replay under the
  // wrong configuration.
  uint64_t snapshot_lsn = 0;
  uint64_t snapshot_seq = 0;
  std::vector<std::string> snapshots =
      ListNumberedFiles(dir_, "snapshot-", ".snap");
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    auto contents = ReadSnapshotFile(dir_ + "/" + *it);
    if (!contents.ok()) continue;
    if (contents->shard != static_cast<uint32_t>(shard_index_)) {
      return util::InternalError(dir_ + "/" + *it + ": snapshot is for shard " +
                                 std::to_string(contents->shard));
    }
    RETURN_IF_ERROR(restore(*contents));
    snapshot_lsn = contents->wal_lsn;
    snapshot_seq = contents->seq;
    break;
  }

  // Replay the WAL suffix. Records at or below the snapshot LSN are
  // already reflected in the restored state and are skipped; a torn tail
  // is legal only in the newest segment (anywhere else is corruption, not
  // a crash artifact).
  uint64_t replayed = 0;
  uint64_t live_records = 0;
  uint64_t live_bytes = 0;
  uint64_t last_lsn = snapshot_lsn;
  const std::vector<std::string> segments =
      ListNumberedFiles(dir_, "wal-", ".wal");
  util::Status replay_status = util::OkStatus();
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string path = dir_ + "/" + segments[i];
    ASSIGN_OR_RETURN(
        const WalSegmentScan scan,
        ScanWalSegment(path, [&](const WalRecord& record) {
          if (!replay_status.ok() || record.lsn <= snapshot_lsn) return;
          if (record.lsn != last_lsn + 1) {
            replay_status = util::InternalError(
                "WAL gap: " + path + " reaches LSN " +
                std::to_string(record.lsn) + " but recovered state ends at " +
                std::to_string(last_lsn));
            return;
          }
          replay_status = apply(record);
          if (replay_status.ok()) {
            last_lsn = record.lsn;
            ++replayed;
          }
        }));
    RETURN_IF_ERROR(replay_status);
    if (scan.shard != static_cast<uint32_t>(shard_index_)) {
      return util::InternalError(path + ": WAL segment belongs to shard " +
                                 std::to_string(scan.shard));
    }
    if (!scan.torn_reason.empty()) {
      if (i + 1 != segments.size()) {
        return util::InternalError(path + ": corrupt non-final WAL segment (" +
                                   scan.torn_reason + ")");
      }
      // The crash artifact: truncate the tail back to the last valid
      // record so the file never confuses a later scan.
      if (::truncate(path.c_str(), static_cast<off_t>(scan.valid_bytes)) !=
          0) {
        return ErrnoError("truncate " + path);
      }
    }
    live_records += scan.records;
    live_bytes += scan.valid_bytes;
  }

  next_lsn_ = std::max(snapshot_lsn, last_lsn) + 1;
  next_snapshot_seq_ = snapshot_seq + 1;
  last_snapshot_time_ = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.last_snapshot_seq = snapshot_seq;
  stats_.wal_records = live_records;
  stats_.wal_bytes = live_bytes;
  stats_.wal_segments = segments.size();
  stats_.recovery_replayed = replayed;
  stats_.recovery_wal_lsn = last_lsn;
  stats_.recovery_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return util::OkStatus();
}

util::Status ShardPersistence::OpenFreshSegment() {
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
  wal_path_ = dir_ + "/" + NumberedName("wal-", next_lsn_, ".wal");
  // O_TRUNC: the only way this path already exists is a previous segment
  // that never gained a valid record (its name is its start LSN, and LSNs
  // only move forward), so overwriting rewrites an identical header.
  wal_fd_ = ::open(wal_path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0666);
  if (wal_fd_ < 0) return ErrnoError("open " + wal_path_);
  const std::string header =
      EncodeWalSegmentHeader(static_cast<uint32_t>(shard_index_), next_lsn_);
  RETURN_IF_ERROR(
      WriteAndMaybeSync(header, options_.wal_sync != WalSync::kNone));
  // Make the segment's existence durable before any record relies on it.
  if (options_.wal_sync != WalSync::kNone) RETURN_IF_ERROR(SyncDir(dir_));
  segment_bytes_ = header.size();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.wal_segments;
    stats_.wal_bytes += header.size();
  }
  return util::OkStatus();
}

util::Status ShardPersistence::WriteAndMaybeSync(std::string_view bytes,
                                                 bool sync) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(wal_fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write " + wal_path_);
    }
    off += static_cast<size_t>(n);
  }
  if (sync) {
    const auto start = std::chrono::steady_clock::now();
    if (::fdatasync(wal_fd_) != 0) return ErrnoError("fdatasync " + wal_path_);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.wal_syncs;
    if (fsync_window_.size() < kFsyncWindow) {
      fsync_window_.push_back(seconds);
    } else {
      fsync_window_[fsync_next_] = seconds;
      fsync_next_ = (fsync_next_ + 1) % kFsyncWindow;
    }
  }
  return util::OkStatus();
}

util::StatusOr<uint64_t> ShardPersistence::AppendWal(std::string_view payload) {
  if (wal_fd_ < 0) RETURN_IF_ERROR(OpenFreshSegment());
  const uint64_t lsn = next_lsn_++;
  const std::string record = EncodeWalRecord(lsn, payload);
  uint64_t record_bytes = record.size();
  if (options_.wal_sync == WalSync::kAlways) {
    RETURN_IF_ERROR(WriteAndMaybeSync(record, /*sync=*/true));
  } else {
    pending_.append(record);
  }
  ++pending_records_;
  pending_bytes_ += record_bytes;
  segment_bytes_ += record_bytes;
  return lsn;
}

util::Status ShardPersistence::CommitBatch() {
  if (pending_records_ == 0) return util::OkStatus();
  if (!pending_.empty()) {
    RETURN_IF_ERROR(WriteAndMaybeSync(
        pending_, /*sync=*/options_.wal_sync == WalSync::kBatch));
    pending_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.wal_records += pending_records_;
    stats_.wal_bytes += pending_bytes_;
  }
  records_since_snapshot_ += pending_records_;
  pending_records_ = 0;
  pending_bytes_ = 0;
  if (segment_bytes_ >= options_.wal_segment_bytes) {
    RETURN_IF_ERROR(OpenFreshSegment());
  }
  return util::OkStatus();
}

bool ShardPersistence::ShouldSnapshot() {
  if (records_since_snapshot_ == 0) return false;
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    if (job_.has_value() || job_running_) return false;
  }
  if (options_.snapshot_every_records > 0 &&
      records_since_snapshot_ >= options_.snapshot_every_records) {
    return true;
  }
  if (options_.snapshot_interval_seconds > 0) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_snapshot_time_)
            .count();
    if (elapsed >= options_.snapshot_interval_seconds) return true;
  }
  return false;
}

void ShardPersistence::SnapshotAsync(std::string body, uint64_t wal_lsn) {
  SnapshotJob job;
  job.seq = next_snapshot_seq_++;
  job.wal_lsn = wal_lsn;
  job.body = std::move(body);
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    job_ = std::move(job);  // latest wins if one is still queued
  }
  job_cv_.notify_one();
  records_since_snapshot_ = 0;
  last_snapshot_time_ = std::chrono::steady_clock::now();
}

util::Status ShardPersistence::FinalSnapshot(std::string body,
                                             uint64_t wal_lsn) {
  // Drain the writer first so sequence numbers land on disk in order.
  std::unique_lock<std::mutex> lock(job_mutex_);
  job_cv_.wait(lock, [this] { return !job_.has_value() && !job_running_; });
  const uint64_t seq = next_snapshot_seq_++;
  lock.unlock();
  records_since_snapshot_ = 0;
  return WriteSnapshotAndPrune(seq, wal_lsn, body);
}

void ShardPersistence::SnapshotWriterLoop() {
  for (;;) {
    SnapshotJob job;
    {
      std::unique_lock<std::mutex> lock(job_mutex_);
      job_cv_.wait(lock, [this] { return writer_exit_ || job_.has_value(); });
      if (!job_.has_value()) return;  // exit requested, mailbox empty
      job = std::move(*job_);
      job_.reset();
      job_running_ = true;
    }
    // Failures here are recorded implicitly (stats keep the previous seq)
    // but are non-fatal to serving: the WAL alone still recovers;
    // snapshots only bound replay time.
    (void)WriteSnapshotAndPrune(job.seq, job.wal_lsn, job.body);
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      job_running_ = false;
    }
    job_cv_.notify_all();
  }
}

util::Status ShardPersistence::WriteSnapshotAndPrune(uint64_t seq,
                                                     uint64_t wal_lsn,
                                                     const std::string& body) {
  const std::string path = dir_ + "/" + NumberedName("snapshot-", seq, ".snap");
  RETURN_IF_ERROR(WriteSnapshotFile(path, static_cast<uint32_t>(shard_index_),
                                    seq, wal_lsn, body));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.last_snapshot_seq = seq;
    ++stats_.snapshots_written;
  }

  // Prune snapshots beyond the retention count.
  std::vector<std::string> snapshots =
      ListNumberedFiles(dir_, "snapshot-", ".snap");
  const int keep =
      options_.snapshots_to_keep < 1 ? 1 : options_.snapshots_to_keep;
  while (static_cast<int>(snapshots.size()) > keep) {
    ::unlink((dir_ + "/" + snapshots.front()).c_str());
    snapshots.erase(snapshots.begin());
  }

  // Prune WAL segments every *retained* snapshot has absorbed: segment i
  // is deletable when segment i+1 starts at or below prune_lsn + 1 (then
  // segment i holds no record past prune_lsn). The newest segment always
  // survives — it is the active writer target.
  uint64_t prune_lsn = wal_lsn;
  for (const std::string& name : snapshots) {
    if (auto contents = ReadSnapshotFile(dir_ + "/" + name); contents.ok()) {
      prune_lsn = std::min(prune_lsn, contents->wal_lsn);
    } else {
      prune_lsn = 0;  // unreadable retained snapshot: prune nothing
    }
  }
  const std::vector<std::string> segments =
      ListNumberedFiles(dir_, "wal-", ".wal");
  uint64_t pruned_bytes = 0;
  uint64_t pruned_count = 0;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    const std::string& next = segments[i + 1];
    const uint64_t next_start = std::strtoull(
        next.substr(4, next.size() - 4 - 4).c_str(), nullptr, 10);
    if (next_start > prune_lsn + 1) break;
    const std::string victim = dir_ + "/" + segments[i];
    struct stat st;
    if (::stat(victim.c_str(), &st) == 0) {
      pruned_bytes += static_cast<uint64_t>(st.st_size);
    }
    ::unlink(victim.c_str());
    ++pruned_count;
  }
  if (pruned_count > 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.wal_segments -= std::min(stats_.wal_segments, pruned_count);
    stats_.wal_bytes -= std::min(stats_.wal_bytes, pruned_bytes);
  }
  return util::OkStatus();
}

void ShardPersistence::SetRecoveryFingerprint(std::string hex) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.recovery_fingerprint = std::move(hex);
}

PersistenceStats ShardPersistence::Stats() const {
  PersistenceStats stats;
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats = stats_;
    window = fsync_window_;
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    stats.fsync_seconds_p50 = util::NearestRankPercentileSorted(window, 0.50);
    stats.fsync_seconds_p90 = util::NearestRankPercentileSorted(window, 0.90);
    stats.fsync_seconds_p99 = util::NearestRankPercentileSorted(window, 0.99);
    stats.fsync_seconds_max = window.back();
  }
  return stats;
}

}  // namespace auditgame::server
