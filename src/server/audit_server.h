#ifndef AUDIT_GAME_SERVER_AUDIT_SERVER_H_
#define AUDIT_GAME_SERVER_AUDIT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/game.h"
#include "net/connection.h"
#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "server/shard.h"
#include "service/audit_service.h"
#include "util/json.h"
#include "util/status.h"

namespace auditgame::server {

struct AuditServerOptions {
  /// Numeric IPv4 bind address.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  int num_shards = 4;
  /// Per-shard request-queue bound — the backpressure knob. A full queue
  /// answers `overloaded` immediately instead of buffering.
  size_t queue_capacity = 128;
  /// Max requests one shard wakeup drains (the micro-batch size).
  size_t max_batch = 16;
  size_t max_frame_payload = net::kDefaultMaxFramePayload;
  /// Per-connection write-buffer bound; a peer further behind than this is
  /// disconnected (slow-consumer close) rather than buffered forever.
  size_t max_write_buffer = 4u << 20;
  /// How long a graceful stop waits for shards to drain and responses to
  /// flush before giving up.
  int drain_timeout_ms = 10000;
  /// Per-tenant serving configuration. Set service.num_threads = 1 for
  /// servers with many tenants (tools/audit_server does): every tenant
  /// owns an engine thread pool, and server concurrency should come from
  /// shards, not from per-tenant pools.
  service::AuditServiceOptions service;
};

/// The wire-serving layer over the paper's audit loop: N shards, each a
/// single-writer AuditService host on its own thread, fronted by one
/// poll-based IO thread speaking the length-prefixed JSON protocol of
/// server/protocol.h. Tenants are routed by FNV-1a hash of their id, so
/// one tenant's cycles stay ordered (same shard, FIFO queue) while tenants
/// on different shards solve concurrently. See docs/DESIGN.md "Network
/// serving".
///
/// Lifecycle: Start() binds and spawns the shard threads; Run() owns the
/// calling thread until RequestStop() (async-signal-safe, callable from a
/// SIGINT handler) — it then stops accepting, lets every shard drain its
/// accepted queue, flushes the resulting responses, and returns. Every
/// accepted request is answered with a policy, `overloaded`, or an error
/// frame — nothing is dropped in silence.
class AuditServer {
 public:
  /// Every tenant's game starts as a copy of `base_instance` and diverges
  /// through `ingest`.
  AuditServer(core::GameInstance base_instance, AuditServerOptions options);
  ~AuditServer();

  AuditServer(const AuditServer&) = delete;
  AuditServer& operator=(const AuditServer&) = delete;

  util::Status Start();
  util::Status Run();

  /// Signals Run() to begin the graceful drain. Async-signal-safe: one
  /// atomic store plus a write(2) to the wake pipe.
  void RequestStop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Deterministic tenant routing: FNV-1a(tenant) mod num_shards. Exposed
  /// for the routing tests and capacity planning.
  static size_t ShardForTenant(const std::string& tenant, size_t num_shards);

  /// The `stats` verb's body (server counters + per-shard snapshots).
  /// Call only from the thread that runs Run() — or after Run() returned,
  /// for a final drain summary.
  util::JsonValue::Object StatsBody();

 private:
  struct PendingResponse {
    uint64_t conn_id = 0;
    std::string payload;
  };

  /// A connection plus the server-side state the contract needs: how many
  /// shard-queued requests still owe it a response, and whether its read
  /// side closed. A half-closed peer with responses in flight stays open
  /// until every answer is flushed — pipelined requests before a
  /// half-close still deserve answers.
  struct ConnState {
    explicit ConnState(net::Connection connection)
        : conn(std::move(connection)) {}
    net::Connection conn;
    int64_t in_flight = 0;
    bool read_closed = false;
  };

  void WakeLoop();
  void RegisterConnections(std::vector<net::Socket> sockets);
  void DeliverResponses();
  void HandleFrame(uint64_t conn_id, const std::string& payload);
  /// `from_shard` marks responses that settle an in-flight shard task.
  void Reply(uint64_t conn_id, const std::string& payload,
             bool from_shard = false);
  void CloseConnection(uint64_t conn_id);
  /// Closes a read-closed connection once nothing is owed to it.
  void MaybeFinishConnection(uint64_t conn_id);
  void UpdateInterest(uint64_t conn_id);
  void BeginDrain();
  bool DrainComplete();

  AuditServerOptions options_;
  core::GameInstance base_instance_;

  net::Socket listener_;
  net::Socket wake_rx_, wake_tx_;
  net::Poller poller_;
  uint16_t port_ = 0;
  bool started_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;

  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, ConnState> connections_;
  std::map<int, uint64_t> fd_to_conn_;

  std::mutex response_mutex_;
  std::vector<PendingResponse> responses_;

  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;

  // IO-thread-only counters, reported by the stats verb.
  int64_t accepted_connections_ = 0;
  int64_t frames_in_ = 0;
  int64_t frames_out_ = 0;
  int64_t protocol_errors_ = 0;
  int64_t overloaded_ = 0;
  int64_t slow_consumer_closes_ = 0;
  int64_t orphaned_responses_ = 0;
};

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_AUDIT_SERVER_H_
