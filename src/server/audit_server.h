#ifndef AUDIT_GAME_SERVER_AUDIT_SERVER_H_
#define AUDIT_GAME_SERVER_AUDIT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/game.h"
#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "server/durability.h"
#include "server/reactor.h"
#include "server/shard.h"
#include "service/audit_service.h"
#include "util/json.h"
#include "util/status.h"

namespace auditgame::server {

struct AuditServerOptions {
  /// Numeric IPv4 bind address.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  int num_shards = 4;
  /// IO threads. Each accepted connection is pinned to one reactor for its
  /// whole life (conn_id % num_reactors), so reactors share nothing but
  /// the accept stream and the shard queues.
  int num_reactors = 1;
  /// Per-shard request-queue bound — the backpressure knob. A full queue
  /// answers `overloaded` immediately instead of buffering.
  size_t queue_capacity = 128;
  /// Max requests one shard wakeup drains (the micro-batch size).
  size_t max_batch = 16;
  size_t max_frame_payload = net::kDefaultMaxFramePayload;
  /// Per-connection write-buffer bound; a peer further behind than this is
  /// disconnected (slow-consumer close) rather than buffered forever.
  size_t max_write_buffer = 4u << 20;
  /// Connections with no traffic for this long — and nothing owed to them
  /// — are reaped (dead clients do not hold fds forever). 0 disables.
  int idle_timeout_ms = 300000;
  /// Accept cap: beyond this many live connections new accepts are closed
  /// immediately (a graceful refusal, not a hang). 0 = unlimited.
  size_t max_connections = 0;
  /// How often the acceptor rebuilds the stats snapshot the `stats` verb
  /// answers from (reactors never lock a shard for it).
  int stats_refresh_ms = 250;
  /// Event-loop backend for every reactor (kDefault = epoll where
  /// available, poll(2) otherwise).
  net::PollerBackend poller_backend = net::PollerBackend::kDefault;
  /// How long a graceful stop waits for shards to drain and responses to
  /// flush before giving up.
  int drain_timeout_ms = 10000;
  /// Per-tenant serving configuration. Set service.num_threads < 0 for
  /// servers with many tenants (tools/audit_server does): every tenant
  /// owns a solver engine, and an engine thread pool per tenant does not
  /// scale — inline mode solves on the shard thread itself.
  service::AuditServiceOptions service;
  /// Durable state: per-shard snapshots + ingest/solve WAL under
  /// `durability.data_dir` (empty = off). Start() recovers every shard
  /// from disk before the server accepts a single connection.
  DurabilityOptions durability;
};

/// The wire-serving layer over the paper's audit loop: N shards, each a
/// single-writer AuditService host on its own thread, fronted by a pool of
/// reactor IO threads (epoll-based where available) speaking the
/// length-prefixed protocol of server/protocol.h in its JSON or binary
/// encoding (server/binary_codec.h). The acceptor thread — the one that
/// calls Run() — owns the listener and hands each connection to one
/// reactor for life; tenants are routed by FNV-1a hash of their id, so one
/// tenant's cycles stay ordered (same shard, FIFO queue) while tenants on
/// different shards solve concurrently. Connections pipeline freely:
/// responses are paired by correlation id and may return out of submission
/// order across tenants. See docs/DESIGN.md "Network serving".
///
/// Lifecycle: Start() binds and spawns the shard + reactor threads; Run()
/// owns the calling thread until RequestStop() (async-signal-safe,
/// callable from a SIGINT handler) — it then stops accepting, lets every
/// shard drain its accepted queue, waits for every reactor to flush the
/// resulting responses, and returns. Every accepted request is answered
/// with a policy, `overloaded`, or an error frame — nothing is dropped in
/// silence.
class AuditServer {
 public:
  /// Every tenant's game starts as a copy of `base_instance` and diverges
  /// through `ingest`.
  AuditServer(core::GameInstance base_instance, AuditServerOptions options);
  ~AuditServer();

  AuditServer(const AuditServer&) = delete;
  AuditServer& operator=(const AuditServer&) = delete;

  util::Status Start();
  util::Status Run();

  /// Signals Run() to begin the graceful drain. Async-signal-safe: one
  /// atomic store plus a write(2) to the wake channel.
  void RequestStop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Deterministic tenant routing: FNV-1a(tenant) mod num_shards. Exposed
  /// for the routing tests and capacity planning.
  static size_t ShardForTenant(const std::string& tenant, size_t num_shards);

  /// Builds a fresh stats body (server counters + per-shard snapshots) —
  /// the final-summary path for tools and tests. The `stats` verb itself
  /// is answered from the cached snapshot (see StatsSnapshotBody), so a
  /// stats request never locks a shard from a reactor thread.
  util::JsonValue::Object StatsBody();

  /// Per-shard timing-free state fingerprints (hex). Test/inspection hook:
  /// call only while the shards are quiescent (before Run() or after it
  /// returned) — it serializes live tenant state.
  std::vector<std::string> StateFingerprints();

 private:
  /// The frame handler every reactor runs; returns false to poison the
  /// connection (sticky binary-decode failure).
  bool HandleFrame(Reactor& reactor, uint64_t conn_id,
                   const std::string& payload);
  /// Routes one validated request to its shard, answering `overloaded`
  /// when the queue refuses it. `payload` is the verbatim frame body —
  /// WAL'd for state-mutating verbs when durability is on.
  void Dispatch(Reactor& reactor, uint64_t conn_id, Request request,
                const std::string& payload);
  /// Copy of the periodically refreshed stats snapshot (what the `stats`
  /// verb answers with).
  util::JsonValue::Object StatsSnapshotBody();
  void RefreshStatsSnapshot();
  void AdmitConnections(std::vector<net::Socket> sockets, bool enforce_cap);
  void BeginDrain();
  int64_t LiveConnectionEstimate() const;

  AuditServerOptions options_;
  core::GameInstance base_instance_;

  net::Socket listener_;
  net::WakeChannel wake_;
  std::unique_ptr<net::Poller> acceptor_poller_;
  uint16_t port_ = 0;
  bool started_ = false;

  /// Reactors are declared before shards_ so shard threads (whose
  /// responders post into reactor inboxes) are destroyed first.
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::vector<std::unique_ptr<Shard>> shards_;

  uint64_t next_conn_id_ = 0;

  std::mutex snapshot_mutex_;
  std::shared_ptr<const util::JsonValue::Object> stats_snapshot_;

  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;

  // Acceptor-thread counters, reported by the stats verb.
  std::atomic<int64_t> accepted_connections_{0};
  std::atomic<int64_t> accept_rejections_{0};
};

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_AUDIT_SERVER_H_
