#ifndef AUDIT_GAME_SERVER_ROUTER_H_
#define AUDIT_GAME_SERVER_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/channel.h"
#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "server/hash_ring.h"
#include "server/protocol.h"
#include "server/reactor.h"
#include "server/shard.h"
#include "util/json.h"
#include "util/status.h"

namespace auditgame::server {

struct RouterOptions {
  /// Numeric IPv4 bind address of the client-facing listener.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  /// Backend audit_server addresses, "host:port" each. Index order is the
  /// node identity on the hash ring, so a restarted router with the same
  /// list reproduces the same placement.
  std::vector<std::string> backends;
  /// Client-facing IO threads (same reactor pool as AuditServer).
  int num_reactors = 1;
  /// Ring points per backend; more points = smoother spread, slower
  /// membership changes.
  int virtual_nodes = 128;
  /// Mirror state-mutating verbs to the tenant's ring successor so its
  /// PolicyCache stays warm for failover.
  bool replicate = true;
  /// A replica that answers `overloaded` is retried (nothing was applied
  /// there) this many times before the mirror is abandoned — the client's
  /// response is held until the replica applied, which is what keeps the
  /// replica's state at or ahead of what clients have observed.
  int replica_retries = 200;
  int replica_retry_backoff_ms = 2;
  /// Health probes (`stats` with reserved correlation id 0) per backend;
  /// they keep traffic outstanding so the channel's response timeout can
  /// detect a wedged — not just dead — backend. 0 disables.
  int ping_interval_ms = 500;
  /// Start() waits up to this long for every backend channel to connect
  /// before serving (requests to still-down backends answer
  /// `backend_down`).
  int backend_connect_wait_ms = 10000;
  /// Per-backend channel tuning (window, queue bound, response timeout,
  /// reconnect backoff). max_frame_payload and poller_backend are
  /// propagated from the fields below.
  net::FrameChannelOptions channel;
  size_t max_frame_payload = net::kDefaultMaxFramePayload;
  size_t max_write_buffer = 4u << 20;
  int idle_timeout_ms = 300000;
  size_t max_connections = 0;
  net::PollerBackend poller_backend = net::PollerBackend::kDefault;
  int drain_timeout_ms = 10000;
};

/// The cluster front door: speaks the same JSON/binary frame protocol as
/// AuditServer on the client side and fans requests out to N backend
/// audit_server processes over pipelined FrameChannels. Placement is
/// consistent hashing (HashRing) over the same FNV-1a tenant hash the
/// in-process shard routing uses; correlation ids are remapped per op
/// (client id ↔ router sub-id) so any number of client connections can
/// pipeline through shared backend connections.
///
/// Failover: each backend channel's up/down transitions add/remove its
/// node on the live ring. A down backend's in-flight ops are answered
/// `backend_down` (retryable; nothing was applied) and its tenants
/// re-route to their ring successor — the same node that `replicate` has
/// been mirroring their ingest/solve traffic to, so the successor serves
/// them from a warm PolicyCache instead of cold-solving.
///
/// Replication-order invariant: a mutating op is submitted replica-first,
/// and the client's response is released only once the replica has
/// *applied* it (`overloaded` mirrors are retried — `overloaded` means
/// not-applied). Since clients submit a tenant's next op only after the
/// previous response, the replica's applied state is always ≥ the state
/// any client has observed: after failover, tenant cycle numbers can jump
/// forward (a double-applied retry) but never regress, so per-tenant
/// order checks survive the switch. See docs/DESIGN.md "Cluster mode".
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  util::Status Start();
  util::Status Run();

  /// Signals Run() to begin the graceful drain. Async-signal-safe.
  void RequestStop();

  /// The bound client-facing port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Current live-ring owner of a tenant (-1 when no backend is up) and
  /// its replication target — test and capacity-planning hooks.
  int PrimaryBackendFor(const std::string& tenant);
  int SuccessorBackendFor(const std::string& tenant);

  /// Fresh stats body: router counters, ring membership, per-backend
  /// channel counters, aggregated reactor counters.
  util::JsonValue::Object StatsBody();

  /// The flat, gateable cluster report (BENCH_cluster.json body):
  /// forwarded/replicated/rerouted counts, failover booleans and the
  /// post-failover policy-source split.
  util::JsonValue::Object ReportBody();

 private:
  struct PendingOp {
    uint64_t conn_id = 0;
    int64_t client_id = -1;
    bool binary = false;
    Verb verb = Verb::kStats;
    std::string tenant;
    bool rerouted = false;
    int primary_backend = -1;
    /// -1 when the op is not mirrored (replication off, no successor, or
    /// the replica channel refused).
    int replica_backend = -1;
    bool primary_done = false;
    bool replica_done = false;
    /// True when the client was already answered directly (primary refused
    /// at submit time) and the op only lingers to consume the mirror's
    /// response.
    bool client_released = false;
    /// The id-rewritten response payload, ready to post once both legs
    /// settled.
    std::string primary_response;
    /// Kept for overloaded-mirror retries.
    std::string replica_payload;
    int replica_attempts = 0;
  };

  bool HandleFrame(Reactor& reactor, uint64_t conn_id,
                   const std::string& payload);
  void Route(Reactor& reactor, uint64_t conn_id, Request request,
             const std::string& payload);
  /// Response from backend `backend` (channel thread).
  void OnBackendFrame(size_t backend, std::string payload);
  /// Up/down transition of backend `backend` (channel thread).
  void OnBackendState(size_t backend, bool up);
  /// Routes released responses to their owning reactors.
  void PostReleases(std::vector<Shard::Response> releases);
  /// Tallies the policy sources of a rerouted solve's ok response — the
  /// warm-failover evidence.
  void CountRerouteSources(const PendingOp& op, const std::string& payload,
                           const util::JsonValue* doc);
  void AdmitConnections(std::vector<net::Socket> sockets, bool enforce_cap);
  void BeginDrain();
  void MaybePing();
  int64_t LiveConnectionEstimate() const;

  RouterOptions options_;

  net::Socket listener_;
  net::WakeChannel wake_;
  std::unique_ptr<net::Poller> acceptor_poller_;
  uint16_t port_ = 0;
  bool started_ = false;

  /// Reactors are declared before channels_ so channel threads (whose
  /// callbacks post responses into reactor inboxes) are destroyed first.
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::vector<std::unique_ptr<net::FrameChannel>> channels_;
  std::vector<std::string> backend_names_;

  uint64_t next_conn_id_ = 0;
  std::chrono::steady_clock::time_point last_ping_;

  /// Guards the live ring and the pending-op table; ordered before any
  /// channel's internal lock (Route submits while holding it) and never
  /// held across reactor/channel callbacks' own locks in the other
  /// direction (channel callbacks take it with no channel lock held).
  std::mutex mutex_;
  HashRing full_ring_;
  HashRing live_ring_;
  std::unordered_map<int64_t, PendingOp> ops_;
  int64_t next_op_id_ = 1;  // sub-ids start at 2; 0 is the ping id

  std::atomic<bool> stop_requested_{false};
  /// Written by the acceptor thread, read by reactor threads (drain
  /// refusal) — hence atomic, unlike AuditServer's acceptor-only flag.
  std::atomic<bool> draining_{false};

  // Router counters (atomic; reported by stats and ReportBody).
  std::atomic<int64_t> accepted_connections_{0};
  std::atomic<int64_t> accept_rejections_{0};
  std::atomic<int64_t> forwarded_{0};
  std::atomic<int64_t> replicated_{0};
  std::atomic<int64_t> replica_retries_{0};
  std::atomic<int64_t> replication_skipped_{0};
  std::atomic<int64_t> replication_rejected_{0};
  std::atomic<int64_t> replication_abandoned_{0};
  std::atomic<int64_t> replication_errors_{0};
  std::atomic<int64_t> backend_down_replies_{0};
  std::atomic<int64_t> rerouted_ops_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> stray_responses_{0};
  std::atomic<int64_t> backend_protocol_errors_{0};
  std::atomic<int64_t> post_failover_cache_hits_{0};
  std::atomic<int64_t> post_failover_warm_solves_{0};
  std::atomic<int64_t> post_failover_cold_solves_{0};
};

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_ROUTER_H_
