#ifndef AUDIT_GAME_SERVER_REACTOR_H_
#define AUDIT_GAME_SERVER_REACTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/connection.h"
#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "server/shard.h"
#include "util/status.h"

namespace auditgame::server {

struct ReactorOptions {
  size_t max_frame_payload = net::kDefaultMaxFramePayload;
  /// Per-connection write-buffer bound; a peer further behind than this is
  /// disconnected (slow-consumer close) rather than buffered forever.
  size_t max_write_buffer = 4u << 20;
  /// Connections with no traffic for this long — and nothing owed to them
  /// (no in-flight shard work, no unflushed output) — are reaped. 0
  /// disables the timer.
  int idle_timeout_ms = 0;
  net::PollerBackend poller_backend = net::PollerBackend::kDefault;
};

/// One IO thread of the server's reactor pool: an event loop (epoll where
/// available, poll(2) otherwise — see net/poller.h) owning a disjoint set
/// of connections. The acceptor assigns each accepted socket to exactly one
/// reactor via Adopt() and that affinity never changes, so all per-
/// connection state (decoder, write buffer, in-flight count, binary-mode
/// flag) is touched by one thread only — no locks on the hot path. The
/// cross-thread surface is a mutex-protected inbox (adopted sockets +
/// shard response batches) plus a wake channel; everything else is
/// reactor-thread-only.
///
/// A connection's id encodes its owner — `conn_id % num_reactors` is the
/// reactor index — so shard responders route response batches back without
/// any shared map, and the routing stays valid even after the connection
/// closed (the orphaned response is still delivered to the right thread,
/// which counts it and settles the in-flight accounting).
///
/// Drain protocol: BeginDrain() stops nothing by itself — the loop keeps
/// reading (closed shard queues turn new requests into `overloaded`),
/// delivering and flushing, and exits only once a poll came back empty
/// with the inbox drained, zero shard responses outstanding and every
/// write buffer flushed: the proof that all accepted work was answered.
/// Kill() is the deadline escape hatch — exit now, abandoning buffers.
class Reactor {
 public:
  /// Called on the reactor thread for every decoded frame. Returning false
  /// poisons the connection: the remaining frames of the same read batch
  /// are dropped (the sticky binary-decode error path — the stream can no
  /// longer be trusted).
  using FrameHandler = std::function<bool(
      Reactor& reactor, uint64_t conn_id, const std::string& payload)>;

  Reactor(int index, ReactorOptions options, FrameHandler handler);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Creates the poller + wake channel and spawns the loop thread.
  util::Status Start();

  /// --- cross-thread surface ---

  /// Hands a freshly accepted socket (with its server-assigned id) to this
  /// reactor. Called by the acceptor; the loop registers it on next wake.
  void Adopt(net::Socket socket, uint64_t conn_id);

  /// Delivers one shard micro-batch's responses. Called from shard
  /// threads; each response settles one in-flight request.
  void PostResponses(std::vector<Shard::Response> batch);

  void BeginDrain();

  /// Deadline path: exit the loop now, abandoning unflushed output.
  void Kill();

  /// True once the loop exited (cleanly or via Kill()).
  bool drained() const { return drained_.load(std::memory_order_acquire); }

  void Join();

  /// Fatal loop error, OkStatus otherwise. Read after Join().
  util::Status status() const;

  /// After the loop exited and every shard joined: counts still-undelivered
  /// inbox responses as orphaned and discards them (with any unprocessed
  /// adopted sockets). Returns the orphan count.
  size_t DrainLeftovers();

  /// "epoll" or "poll" (valid after Start()).
  const char* backend_name() const { return backend_name_; }

  int index() const { return index_; }

  /// --- counters (atomic; readable from any thread for stats) ---

  int64_t active_connections() const { return Load(active_connections_); }
  int64_t closed_connections() const { return Load(closed_connections_); }
  int64_t frames_in() const { return Load(frames_in_); }
  int64_t frames_out() const { return Load(frames_out_); }
  int64_t protocol_errors() const { return Load(protocol_errors_); }
  int64_t overloaded() const { return Load(overloaded_); }
  int64_t slow_consumer_closes() const {
    return Load(slow_consumer_closes_);
  }
  int64_t orphaned_responses() const { return Load(orphaned_responses_); }
  int64_t idle_closes() const { return Load(idle_closes_); }

  /// --- frame-handler surface (reactor thread only) ---

  /// Queues one response frame and flushes what the socket accepts.
  /// `from_shard` marks responses that settle an in-flight shard task.
  void Reply(uint64_t conn_id, const std::string& payload,
             bool from_shard = false);

  /// Records one request handed to a shard queue; its response (or the
  /// orphan delivery after a close) settles the count.
  void OnSubmitted(uint64_t conn_id);

  /// Marks the connection binary-mode (first binary frame seen).
  void SetBinaryMode(uint64_t conn_id);
  bool binary_mode(uint64_t conn_id) const;

  /// Sticky protocol failure: stop reading, deliver what is owed, then
  /// close. Pairs with the handler returning false.
  void Poison(uint64_t conn_id);

  void CountProtocolError() { Add(protocol_errors_); }
  void CountOverloaded() { Add(overloaded_); }

 private:
  struct ConnState {
    explicit ConnState(net::Connection connection)
        : conn(std::move(connection)) {}
    net::Connection conn;
    /// Shard-queued requests still owing this connection a response. A
    /// half-closed peer with responses in flight stays open until every
    /// answer is flushed.
    int64_t in_flight = 0;
    bool read_closed = false;
    bool binary_mode = false;
    std::chrono::steady_clock::time_point last_activity;
  };

  struct AdoptedSocket {
    net::Socket socket;
    uint64_t conn_id = 0;
  };

  static int64_t Load(const std::atomic<int64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  }
  static void Add(std::atomic<int64_t>& counter, int64_t delta = 1) {
    counter.fetch_add(delta, std::memory_order_relaxed);
  }

  void Run();
  /// Registers inbox sockets and delivers inbox responses. Returns true if
  /// anything was processed.
  bool DrainInbox();
  void HandleConnectionEvent(const net::PollEvent& event);
  void UpdateInterest(uint64_t conn_id);
  /// Closes a read-closed connection once nothing is owed to it.
  void MaybeFinishConnection(uint64_t conn_id);
  void CloseConnection(uint64_t conn_id);
  void ReapIdle(std::chrono::steady_clock::time_point now);
  bool AnyPendingWrite() const;

  const int index_;
  const ReactorOptions options_;
  const FrameHandler handler_;
  const char* backend_name_ = "unstarted";

  std::unique_ptr<net::Poller> poller_;
  net::WakeChannel wake_;
  std::thread thread_;

  std::mutex inbox_mutex_;
  std::vector<AdoptedSocket> adopted_inbox_;
  std::vector<Shard::Response> response_inbox_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> killed_{false};
  std::atomic<bool> drained_{false};

  mutable std::mutex status_mutex_;
  util::Status status_;

  // Reactor-thread-only state.
  std::map<uint64_t, ConnState> connections_;
  std::map<int, uint64_t> fd_to_conn_;
  /// Total shard responses outstanding across all connections, including
  /// closed ones (orphan deliveries settle it) — the drain-exit proof that
  /// no accepted request is still being processed.
  int64_t in_flight_total_ = 0;
  std::chrono::steady_clock::time_point last_idle_sweep_;

  std::atomic<int64_t> active_connections_{0};
  std::atomic<int64_t> closed_connections_{0};
  std::atomic<int64_t> frames_in_{0};
  std::atomic<int64_t> frames_out_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> overloaded_{0};
  std::atomic<int64_t> slow_consumer_closes_{0};
  std::atomic<int64_t> orphaned_responses_{0};
  std::atomic<int64_t> idle_closes_{0};
};

}  // namespace auditgame::server

#endif  // AUDIT_GAME_SERVER_REACTOR_H_
