#ifndef AUDIT_GAME_MATH_KERNELS_H_
#define AUDIT_GAME_MATH_KERNELS_H_

#include <cstddef>
#include <utility>

namespace auditgame::math {

/// One home for the solver core's hot inner loops: dot/axpy/scaled-add,
/// blocked-order sums, the detection prefix convolution, weighted-tail
/// accumulation, and the sparse dots behind reduced-cost sweeps. Every
/// kernel has a scalar reference implementation and (behind the
/// -DAUDIT_ENABLE_SIMD CMake gate) an SSE2/AVX2 implementation selected by
/// runtime dispatch.
///
/// Determinism contract: scalar and SIMD backends produce BIT-IDENTICAL
/// results. Reductions follow one canonical order — the *blocked* order
/// with kBlockLanes = 4 independent accumulators:
///
///   lane[l] += x[4k + l]          (tail elements continue round-robin)
///   total    = (lane[0] + lane[1]) + (lane[2] + lane[3])
///
/// which is exactly what a 4-lane vector register computes, so SIMD is the
/// blocked order rather than approximating it. The scalar backend
/// implements the same order with four scalar accumulators. No FMA is ever
/// used (fused rounding would split the backends). Element-wise kernels
/// (axpy, scale) have one rounding per element in any backend and are
/// trivially identical. See docs/DESIGN.md "Numeric kernels and arenas".
///
/// The blocked order is the canonical semantics of the library: results
/// differ from a naive left-to-right sum by the usual reassociation ULPs,
/// and every caller (and every committed BENCH baseline) is defined
/// against the blocked order.

inline constexpr size_t kBlockLanes = 4;

enum class Backend { kScalar, kSimd };

/// The backend currently serving kernel calls. Defaults to kSimd when the
/// build gate is on and the CPU qualifies, else kScalar.
Backend ActiveBackend();

/// Forces a backend (tests, benches, the scalar-vs-SIMD determinism gate).
/// Returns false — leaving kScalar active — when kSimd is requested but
/// compiled out or unsupported by this CPU. Not thread-safe: call before
/// spawning solver threads.
bool SetBackend(Backend backend);

/// True when a SIMD implementation is compiled in and this CPU supports it.
bool SimdAvailable();

/// Name of the active implementation: "scalar", "sse2" or "avx2".
const char* BackendName();

/// ---- Reductions (canonical blocked order) ------------------------------

/// sum_i x[i].
double Sum(const double* x, size_t n);

/// sum_i x[i] * y[i]. The weighted-tail accumulation of detection
/// (prefix-probability x conditional-detection tables) and the dense dots
/// of Ftran/Btran are this kernel.
double Dot(const double* x, const double* y, size_t n);

/// sum_i |x[i] - y[i]| — the total-variation inner loop.
double AbsDiffSum(const double* x, const double* y, size_t n);

/// ---- Element-wise (bit-identical in any backend) -----------------------

/// y[i] += a * x[i].
void Axpy(double a, const double* x, double* y, size_t n);

/// y[i] += x[i].
void Add(const double* x, double* y, size_t n);

/// x[i] *= a. PMF truncation/renormalization is Sum + Scale.
void Scale(double a, double* x, size_t n);

/// ---- Composite solver kernels ------------------------------------------

/// One sparse-support step of the detection prefix convolution:
///   next[min(s + shift, n - 1)] += q * p[s]   for s in [0, n)
/// i.e. a shifted axpy over the non-saturating range plus a blocked-order
/// weighted sum of the saturating tail into the last cell. Requires
/// shift <= n and next != p.
void ConvolveShiftSaturate(const double* p, size_t n, size_t shift, double q,
                           double* next);

/// Sparse dot against a dense vector: sum_k terms[k].second *
/// y[terms[k].first] — the reduced-cost sweep's per-column dot. Scalar in
/// every backend (gather-bound), kept here so the sweep has one home.
double SparseDot(const std::pair<int, double>* terms, size_t n,
                 const double* y);

/// ---- Canonical-order helper for data-dependent loops --------------------

/// For loops whose per-element terms are branchy scalar code (the
/// Monte-Carlo detection term) but whose reduction must follow the
/// canonical blocked order: feed terms in index order via Add(), read
/// Total(). Bit-identical to Sum() over the same terms.
struct BlockedAccumulator {
  double lane[kBlockLanes] = {0.0, 0.0, 0.0, 0.0};
  size_t count = 0;

  void Add(double v) { lane[count++ & (kBlockLanes - 1)] += v; }
  double Total() const { return (lane[0] + lane[1]) + (lane[2] + lane[3]); }
};

}  // namespace auditgame::math

#endif  // AUDIT_GAME_MATH_KERNELS_H_
