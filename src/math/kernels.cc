#include "math/kernels.h"

#include <cmath>

#include "math/kernels_internal.h"

#if defined(AUDIT_ENABLE_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#define AUDIT_HAVE_SSE2 1
#endif

namespace auditgame::math {
namespace {

using detail::Ops;

// ---- Scalar reference backend -------------------------------------------
//
// The scalar loops spell out the canonical blocked order with four explicit
// accumulators. They are bit-identical to the SIMD backends because no
// compiler reassociates floating-point additions without -ffast-math, and
// base x86-64 has no FMA instruction to contract the mul+add pairs.

double SumScalar(const double* x, size_t n) {
  double lane[kBlockLanes] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    lane[0] += x[i];
    lane[1] += x[i + 1];
    lane[2] += x[i + 2];
    lane[3] += x[i + 3];
  }
  for (; i < n; ++i) lane[i & 3] += x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double DotScalar(const double* x, const double* y, size_t n) {
  double lane[kBlockLanes] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    lane[0] += x[i] * y[i];
    lane[1] += x[i + 1] * y[i + 1];
    lane[2] += x[i + 2] * y[i + 2];
    lane[3] += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) lane[i & 3] += x[i] * y[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double AbsDiffSumScalar(const double* x, const double* y, size_t n) {
  double lane[kBlockLanes] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    lane[0] += std::fabs(x[i] - y[i]);
    lane[1] += std::fabs(x[i + 1] - y[i + 1]);
    lane[2] += std::fabs(x[i + 2] - y[i + 2]);
    lane[3] += std::fabs(x[i + 3] - y[i + 3]);
  }
  for (; i < n; ++i) lane[i & 3] += std::fabs(x[i] - y[i]);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

void AxpyScalar(double a, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void AddScalar(const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i];
}

void ScaleScalar(double a, double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= a;
}

double ScaledSumScalar(double a, const double* x, size_t n) {
  double lane[kBlockLanes] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    lane[0] += a * x[i];
    lane[1] += a * x[i + 1];
    lane[2] += a * x[i + 2];
    lane[3] += a * x[i + 3];
  }
  for (; i < n; ++i) lane[i & 3] += a * x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

constexpr Ops kScalarOps = {SumScalar,   DotScalar,   AbsDiffSumScalar,
                            AxpyScalar,  AddScalar,   ScaleScalar,
                            ScaledSumScalar};

// ---- SSE2 backend -------------------------------------------------------
//
// Two 2-lane registers hold lanes {0,1} and {2,3}; the reduce stores all
// four lanes and adds them in the canonical (l0+l1)+(l2+l3) order, so the
// result matches the scalar backend bit for bit.

#ifdef AUDIT_HAVE_SSE2

double SumSse2(const double* x, size_t n) {
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    a01 = _mm_add_pd(a01, _mm_loadu_pd(x + i));
    a23 = _mm_add_pd(a23, _mm_loadu_pd(x + i + 2));
  }
  double lane[kBlockLanes];
  _mm_storeu_pd(lane, a01);
  _mm_storeu_pd(lane + 2, a23);
  for (; i < n; ++i) lane[i & 3] += x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double DotSse2(const double* x, const double* y, size_t n) {
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    a01 = _mm_add_pd(a01, _mm_mul_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i)));
    a23 = _mm_add_pd(
        a23, _mm_mul_pd(_mm_loadu_pd(x + i + 2), _mm_loadu_pd(y + i + 2)));
  }
  double lane[kBlockLanes];
  _mm_storeu_pd(lane, a01);
  _mm_storeu_pd(lane + 2, a23);
  for (; i < n; ++i) lane[i & 3] += x[i] * y[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double AbsDiffSumSse2(const double* x, const double* y, size_t n) {
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    a01 = _mm_add_pd(
        a01, _mm_andnot_pd(sign_mask, _mm_sub_pd(_mm_loadu_pd(x + i),
                                                 _mm_loadu_pd(y + i))));
    a23 = _mm_add_pd(
        a23, _mm_andnot_pd(sign_mask, _mm_sub_pd(_mm_loadu_pd(x + i + 2),
                                                 _mm_loadu_pd(y + i + 2))));
  }
  double lane[kBlockLanes];
  _mm_storeu_pd(lane, a01);
  _mm_storeu_pd(lane + 2, a23);
  for (; i < n; ++i) lane[i & 3] += std::fabs(x[i] - y[i]);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

void AxpySse2(double a, const double* x, double* y, size_t n) {
  const __m128d av = _mm_set1_pd(a);
  size_t i = 0;
  const size_t n2 = n & ~size_t{1};
  for (; i < n2; i += 2) {
    _mm_storeu_pd(
        y + i, _mm_add_pd(_mm_loadu_pd(y + i),
                          _mm_mul_pd(av, _mm_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void AddSse2(const double* x, double* y, size_t n) {
  size_t i = 0;
  const size_t n2 = n & ~size_t{1};
  for (; i < n2; i += 2) {
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void ScaleSse2(double a, double* x, size_t n) {
  const __m128d av = _mm_set1_pd(a);
  size_t i = 0;
  const size_t n2 = n & ~size_t{1};
  for (; i < n2; i += 2) {
    _mm_storeu_pd(x + i, _mm_mul_pd(av, _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= a;
}

double ScaledSumSse2(double a, const double* x, size_t n) {
  const __m128d av = _mm_set1_pd(a);
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    a01 = _mm_add_pd(a01, _mm_mul_pd(av, _mm_loadu_pd(x + i)));
    a23 = _mm_add_pd(a23, _mm_mul_pd(av, _mm_loadu_pd(x + i + 2)));
  }
  double lane[kBlockLanes];
  _mm_storeu_pd(lane, a01);
  _mm_storeu_pd(lane + 2, a23);
  for (; i < n; ++i) lane[i & 3] += a * x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

constexpr Ops kSse2Ops = {SumSse2,  DotSse2,   AbsDiffSumSse2, AxpySse2,
                          AddSse2,  ScaleSse2, ScaledSumSse2};

#endif  // AUDIT_HAVE_SSE2

// ---- Dispatch -----------------------------------------------------------

const Ops* g_ops = &kScalarOps;
Backend g_backend = Backend::kScalar;
const char* g_backend_name = "scalar";

bool SimdSupported() {
#ifdef AUDIT_HAVE_SSE2
  return true;
#else
  return false;
#endif
}

const bool g_initialized = [] {
  SetBackend(Backend::kSimd);  // Falls back to scalar when unavailable.
  return true;
}();

}  // namespace

Backend ActiveBackend() { return g_backend; }

bool SimdAvailable() { return SimdSupported(); }

const char* BackendName() { return g_backend_name; }

bool SetBackend(Backend backend) {
  if (backend == Backend::kScalar) {
    g_ops = &kScalarOps;
    g_backend = Backend::kScalar;
    g_backend_name = "scalar";
    return true;
  }
#ifdef AUDIT_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) {
    g_ops = &detail::kAvx2Ops;
    g_backend = Backend::kSimd;
    g_backend_name = "avx2";
    return true;
  }
#endif
#ifdef AUDIT_HAVE_SSE2
  g_ops = &kSse2Ops;
  g_backend = Backend::kSimd;
  g_backend_name = "sse2";
  return true;
#else
  g_ops = &kScalarOps;
  g_backend = Backend::kScalar;
  g_backend_name = "scalar";
  return false;
#endif
}

double Sum(const double* x, size_t n) { return g_ops->sum(x, n); }

double Dot(const double* x, const double* y, size_t n) {
  return g_ops->dot(x, y, n);
}

double AbsDiffSum(const double* x, const double* y, size_t n) {
  return g_ops->abs_diff_sum(x, y, n);
}

void Axpy(double a, const double* x, double* y, size_t n) {
  g_ops->axpy(a, x, y, n);
}

void Add(const double* x, double* y, size_t n) { g_ops->add(x, y, n); }

void Scale(double a, double* x, size_t n) { g_ops->scale(a, x, n); }

void ConvolveShiftSaturate(const double* p, size_t n, size_t shift, double q,
                           double* next) {
  if (n == 0) return;
  // Non-saturating range: destinations s + shift land inside [shift, n).
  const size_t dense = n - shift;
  g_ops->axpy(q, p, next + shift, dense);
  // Saturating tail: every remaining source cell folds into next[n - 1],
  // reduced in canonical blocked order.
  if (shift > 0) next[n - 1] += g_ops->scaled_sum(q, p + dense, shift);
}

double SparseDot(const std::pair<int, double>* terms, size_t n,
                 const double* y) {
  // Gather-bound and short: plain sequential order in every backend.
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) total += terms[k].second * y[terms[k].first];
  return total;
}

}  // namespace auditgame::math
