// AVX2 backend for math/kernels. This TU is compiled with
// -mavx2 -ffp-contract=off (see src/CMakeLists.txt) and only linked when the
// compiler supports it; the table below is dereferenced only after a runtime
// __builtin_cpu_supports("avx2") check in kernels.cc.
//
// One 4-lane __m256d register IS the canonical blocked accumulator: lane l
// holds the partial sum of elements with index ≡ l (mod 4). The reduce
// stores the four lanes and adds them as (l0 + l1) + (l2 + l3) — the same
// order as the scalar and SSE2 backends, so results are bit-identical.
// No FMA intrinsics are used (a fused multiply-add rounds once where the
// other backends round twice, which would split the backends).

#include <immintrin.h>

#include <cmath>

#include "math/kernels.h"
#include "math/kernels_internal.h"

namespace auditgame::math::detail {
namespace {

double SumAvx2(const double* x, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double lane[kBlockLanes];
  _mm256_storeu_pd(lane, acc);
  for (; i < n; ++i) lane[i & 3] += x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double DotAvx2(const double* x, const double* y, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  double lane[kBlockLanes];
  _mm256_storeu_pd(lane, acc);
  for (; i < n; ++i) lane[i & 3] += x[i] * y[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double AbsDiffSumAvx2(const double* x, const double* y, size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_andnot_pd(sign_mask, _mm256_sub_pd(_mm256_loadu_pd(x + i),
                                                       _mm256_loadu_pd(y + i))));
  }
  double lane[kBlockLanes];
  _mm256_storeu_pd(lane, acc);
  for (; i < n; ++i) lane[i & 3] += std::fabs(x[i] - y[i]);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

void AxpyAvx2(double a, const double* x, double* y, size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void AddAvx2(const double* x, double* y, size_t n) {
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void ScaleAvx2(double a, double* x, size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= a;
}

double ScaledSumAvx2(double a, const double* x, size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~(kBlockLanes - 1);
  for (; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  }
  double lane[kBlockLanes];
  _mm256_storeu_pd(lane, acc);
  for (; i < n; ++i) lane[i & 3] += a * x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

}  // namespace

const Ops kAvx2Ops = {SumAvx2,  DotAvx2,   AbsDiffSumAvx2, AxpyAvx2,
                      AddAvx2,  ScaleAvx2, ScaledSumAvx2};

}  // namespace auditgame::math::detail
