#ifndef AUDIT_GAME_MATH_KERNELS_INTERNAL_H_
#define AUDIT_GAME_MATH_KERNELS_INTERNAL_H_

#include <cstddef>

namespace auditgame::math::detail {

/// Per-backend implementation table. Every entry must honor the canonical
/// blocked-order contract in kernels.h — adding an entry here means adding
/// it to the scalar, SSE2, and AVX2 backends with bit-identical semantics.
struct Ops {
  double (*sum)(const double* x, size_t n);
  double (*dot)(const double* x, const double* y, size_t n);
  double (*abs_diff_sum)(const double* x, const double* y, size_t n);
  void (*axpy)(double a, const double* x, double* y, size_t n);
  void (*add)(const double* x, double* y, size_t n);
  void (*scale)(double a, double* x, size_t n);
  /// Blocked-order sum of a * x[i] (each term rounded once, then blocked
  /// summation) — the saturating tail of ConvolveShiftSaturate.
  double (*scaled_sum)(double a, const double* x, size_t n);
};

#ifdef AUDIT_HAVE_AVX2
/// Defined in kernels_avx2.cc (compiled with -mavx2 -ffp-contract=off).
/// Only dereferenced after __builtin_cpu_supports("avx2") says yes.
extern const Ops kAvx2Ops;
#endif

}  // namespace auditgame::math::detail

#endif  // AUDIT_GAME_MATH_KERNELS_INTERNAL_H_
