// scenario_suite: the generated-workload perf gate. For each scenario
// family (bench-scale variants of the src/scenario catalog) it solves the
// fixed-threshold game with CGGS twice — serial pricing and 4-thread
// parallel pricing — verifies the two runs are bit-for-bit identical (the
// CggsOptions::pricing_threads determinism contract), and writes
// BENCH_scenario.json with the pricing-phase and total-solve timings and
// the parallel speedup. CI runs it in the bench smoke step and archives
// the report; a disagreement exits with the dedicated smoke code.
//
//   scenario_suite --json=BENCH_scenario.json --reps=3 --threads=4
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adversary/attacker.h"
#include "adversary/loop.h"
#include "bench/exit_codes.h"
#include "core/cggs.h"
#include "core/detection.h"
#include "core/game.h"
#include "scenario/generator.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

// Bench-scale variants of the catalog families: enough types and utility
// rows that a pricing round has real work to fan out (the catalog presets
// are sized for tests and replay, not for timing).
std::vector<scenario::NamedScenario> SuiteScenarios() {
  std::vector<scenario::NamedScenario> suite;
  for (const scenario::NamedScenario& preset : scenario::Catalog()) {
    if (preset.name == "zipf-deep") continue;  // shape duplicate of zipf
    // Sized so one greedy step (T candidates x rows x T flops, ~0.5M) is
    // far above the pool's per-chunk handoff cost — otherwise a 4-thread
    // run measures scheduling, not pricing.
    scenario::NamedScenario scaled = preset;
    scaled.spec.num_types = std::max(preset.spec.num_types, 18);
    scaled.spec.num_adversaries = 12;
    scaled.spec.victims_per_adversary = 30;
    suite.push_back(std::move(scaled));
  }
  return suite;
}

std::vector<double> FlooredMeanThresholds(const core::GameInstance& instance) {
  std::vector<double> thresholds;
  for (int t = 0; t < instance.num_types(); ++t) {
    thresholds.push_back(std::floor(instance.alert_distributions[t].Mean()));
  }
  return thresholds;
}

bool BitIdentical(const core::CggsResult& a, const core::CggsResult& b) {
  return a.objective == b.objective && a.columns == b.columns &&
         a.lp_solves == b.lp_solves &&
         a.columns_generated == b.columns_generated &&
         a.policy.orderings == b.policy.orderings &&
         a.policy.probabilities == b.policy.probabilities;
}

/// The closed-loop Stackelberg drill: a best-responding attacker against
/// the drift-gated serving loop at catalog scale, with an exact re-solve
/// as the per-cycle oracle. Everything numeric in the result is a
/// deterministic function of the catalog spec (inline engine, seeded
/// attacker), so regret/exploitability gaps and the within-2x bit are
/// machine-independent and CI gates them via bench_compare --require.
util::StatusOr<util::JsonValue::Object> RunAdversaryDrill(int cycles) {
  ASSIGN_OR_RETURN(const scenario::ScenarioSpec spec,
                   scenario::SpecByName("zipf"));
  ASSIGN_OR_RETURN(core::GameInstance instance, scenario::Generate(spec));

  adversary::DefenderConfig config;
  config.budget = 10.0;
  config.solver_options.ishm.step_size = 0.25;
  config.warm_start_max_drift = 0.25;

  ASSIGN_OR_RETURN(adversary::AttackerEconomics economics,
                   adversary::DeriveEconomics(instance));
  adversary::AttackerSpec attacker_spec;
  attacker_spec.kind = adversary::AttackerKind::kBestResponse;
  attacker_spec.attack_rate = 0.6;
  ASSIGN_OR_RETURN(std::unique_ptr<adversary::Attacker> attacker,
                   adversary::MakeAttacker(attacker_spec,
                                           instance.alert_distributions,
                                           std::move(economics)));
  adversary::InProcessDefender defender(instance, config);
  ASSIGN_OR_RETURN(adversary::AdversaryLoop loop,
                   adversary::AdversaryLoop::Create(std::move(instance),
                                                    config, &defender,
                                                    attacker.get()));
  adversary::LoopSpec loop_spec;
  loop_spec.cycles = cycles;
  util::Timer timer;
  ASSIGN_OR_RETURN(const adversary::LoopReport report, loop.Run(loop_spec));

  util::JsonValue::Object obj;
  obj["scenario"] = "zipf";
  obj["attacker"] = "best-response";
  obj["cycles"] = cycles;
  obj["cycles_completed"] = static_cast<int>(report.cycles.size());
  obj["cache_hits"] = static_cast<double>(report.cache_hits);
  obj["warm_solves"] = static_cast<double>(report.warm_solves);
  obj["cold_solves"] = static_cast<double>(report.cold_solves);
  const double served =
      static_cast<double>(report.cache_hits + report.warm_solves +
                          report.cold_solves);
  obj["cache_hit_ratio"] =
      served > 0.0 ? static_cast<double>(report.cache_hits) / served : 0.0;
  obj["regret_gap_mean"] = report.regret_gap_mean;
  obj["regret_gap_max"] = report.regret_gap_max;
  obj["exploitability_gap_mean"] = report.exploitability_gap_mean;
  obj["exploitability_gap_max"] = report.exploitability_gap_max;
  obj["tracking_lag_max_cycles"] = report.tracking_lag_max_cycles;
  obj["tracking_within_2x"] = report.tracking_within_2x;
  obj["oracle_loss_mean"] = report.oracle_loss_mean;
  obj["loop_seconds"] = timer.ElapsedSeconds();
  return obj;
}

struct PricingRun {
  core::CggsResult result;
  /// Min over reps — the stable estimate for short runs.
  double pricing_seconds = 0.0;
  double total_seconds = 0.0;
};

util::StatusOr<PricingRun> TimePricing(const core::CompiledGame& compiled,
                                       core::DetectionModel& detection,
                                       const std::vector<double>& thresholds,
                                       int pricing_threads, int reps) {
  core::CggsOptions options;
  options.pricing_threads = pricing_threads;
  // One pool across the reps: total_seconds should not bill a thread
  // spawn per solve (pricing_seconds never does — the pool is built
  // outside the timed pricing rounds either way).
  std::unique_ptr<util::ThreadPool> pricing_pool;
  if (pricing_threads > 1) {
    pricing_pool = std::make_unique<util::ThreadPool>(pricing_threads);
    options.pricing_pool = pricing_pool.get();
  }
  PricingRun run;
  run.pricing_seconds = std::numeric_limits<double>::infinity();
  run.total_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    ASSIGN_OR_RETURN(core::CggsResult result,
                     core::SolveCggs(compiled, detection, thresholds, options));
    run.total_seconds = std::min(run.total_seconds, timer.ElapsedSeconds());
    run.pricing_seconds = std::min(run.pricing_seconds, result.pricing_seconds);
    run.result = std::move(result);
  }
  return run;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("json", "BENCH_scenario.json", "report path");
  flags.Define("reps", "3", "solves per configuration (min time is kept)");
  flags.Define("threads", "4", "pricing threads for the parallel run");
  flags.Define("mc_samples", "30000",
               "Monte-Carlo detection samples for the heavy-pricing cases");
  flags.Define("adversary_cycles", "12",
               "closed-loop cycles of the Stackelberg adversary drill");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.HelpString(argv[0]).c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString(argv[0]).c_str());
    return 0;
  }
  const int reps = std::max(1, flags.GetInt("reps"));
  const int threads = std::max(2, flags.GetInt("threads"));
  const int mc_samples = std::max(1000, flags.GetInt("mc_samples"));

  util::JsonValue::Array cases;
  bool all_identical = true;
  for (const scenario::NamedScenario& entry : SuiteScenarios()) {
    auto instance = scenario::Generate(entry.spec);
    if (!instance.ok()) {
      std::fprintf(stderr, "generate %s: %s\n", entry.name.c_str(),
                   instance.status().ToString().c_str());
      return 1;
    }
    const auto compiled = core::Compile(*instance);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile %s: %s\n", entry.name.c_str(),
                   compiled.status().ToString().c_str());
      return 1;
    }
    const double budget = 1.5 * entry.spec.num_types;
    const std::vector<double> thresholds = FlooredMeanThresholds(*instance);

    // Two detection regimes per family. kExact prices a candidate in
    // O(grid) — pricing is light and the parallel run mostly measures
    // scheduling. kMonteCarlo (the paper's estimator) prices in
    // O(mc_samples) per candidate — the regime pricing_threads exists for.
    for (const bool monte_carlo : {false, true}) {
      core::DetectionModel::Options detection_options;
      if (monte_carlo) {
        detection_options.mode = core::DetectionModel::Mode::kMonteCarlo;
        detection_options.mc_samples = mc_samples;
      }
      auto detection =
          core::DetectionModel::Create(*instance, budget, detection_options);
      if (!detection.ok()) {
        std::fprintf(stderr, "detection %s: %s\n", entry.name.c_str(),
                     detection.status().ToString().c_str());
        return 1;
      }

      auto serial = TimePricing(*compiled, *detection, thresholds, 1, reps);
      auto parallel =
          TimePricing(*compiled, *detection, thresholds, threads, reps);
      if (!serial.ok() || !parallel.ok()) {
        std::fprintf(stderr, "solve %s: %s\n", entry.name.c_str(),
                     (serial.ok() ? parallel.status() : serial.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      const bool identical = BitIdentical(serial->result, parallel->result);
      all_identical = all_identical && identical;
      const double speedup =
          serial->pricing_seconds / std::max(1e-12, parallel->pricing_seconds);

      util::JsonValue::Object json_case;
      json_case["scenario"] = entry.name;
      json_case["detection"] = monte_carlo ? "mc" : "exact";
      json_case["types"] = entry.spec.num_types;
      json_case["utility_rows"] = compiled->num_rows();
      json_case["budget"] = budget;
      json_case["columns_generated"] = serial->result.columns_generated;
      json_case["objective"] = serial->result.objective;
      json_case["serial_pricing_seconds"] = serial->pricing_seconds;
      json_case["parallel_pricing_seconds"] = parallel->pricing_seconds;
      json_case["pricing_speedup_parallel_over_serial"] = speedup;
      json_case["serial_total_seconds"] = serial->total_seconds;
      json_case["parallel_total_seconds"] = parallel->total_seconds;
      json_case["serial_parallel_identical"] = identical;
      std::printf(
          "%-10s (%5s) types=%d rows=%d cols=%d pricing %.4fs -> %.4fs at "
          "%d threads (%.2fx) identical=%s\n",
          entry.name.c_str(), monte_carlo ? "mc" : "exact",
          entry.spec.num_types, compiled->num_rows(),
          serial->result.columns_generated, serial->pricing_seconds,
          parallel->pricing_seconds, threads, speedup,
          identical ? "yes" : "NO");
      cases.push_back(std::move(json_case));
    }
  }

  auto adversary_drill = RunAdversaryDrill(flags.GetInt("adversary_cycles"));
  if (!adversary_drill.ok()) {
    std::fprintf(stderr, "adversary drill: %s\n",
                 adversary_drill.status().ToString().c_str());
    return 1;
  }
  const util::JsonValue* within =
      [&]() -> const util::JsonValue* {
    const auto it = adversary_drill->find("tracking_within_2x");
    return it == adversary_drill->end() ? nullptr : &it->second;
  }();
  const bool tracking_ok = within != nullptr && within->as_bool();
  std::printf(
      "adversary  (zipf ) best-response loop: tracking within 2x of exact "
      "floor: %s\n",
      tracking_ok ? "yes" : "NO");

  util::JsonValue::Object report;
  report["bench"] = "scenario_suite";
  report["mode"] = "smoke";
  report["pricing_threads"] = threads;
  report["hardware_threads"] =
      static_cast<int>(std::thread::hardware_concurrency());
  report["serial_parallel_identical"] = all_identical;
  report["cases"] = std::move(cases);
  report["adversary"] = util::JsonValue(std::move(*adversary_drill));

  const std::string json_path = flags.GetString("json");
  std::ofstream out(json_path);
  int write_status = bench::kSmokeExitOk;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    write_status = bench::kSmokeExitIoError;
  } else {
    out << util::JsonValue(std::move(report)).Dump(2) << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  // Disagreement outranks a report-write failure: it is the signal CI must
  // not mistake for an infrastructure problem. The adversary drill's
  // within-2x bit is gated the same way — a warm re-solve falling behind
  // the exact floor is a correctness regression, not noise.
  if (!all_identical || !tracking_ok) return bench::kSmokeExitDisagreement;
  return write_status;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
