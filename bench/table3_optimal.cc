// Reproduces Table III: the optimal OAP solution on Syn A under budgets
// B = 2..20, found by brute force over integer threshold vectors with the
// full LP (all 4! = 24 orderings) solved exactly for each.
//
// Columns: budget, optimal objective, optimal thresholds, support size,
// effective pure strategies and the optimal mixed strategy.
#include <cmath>
#include <iostream>
#include <string>

#include "core/detection.h"
#include "data/syn_a.h"
#include "solver/registry.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budgets", "2,4,6,8,10,12,14,16,18,20",
               "comma-separated audit budgets B");
  flags.Define("semantics", "ratio",
               "detection semantics: ratio | inclusive | roe");
  flags.Define("consumption", "realized",
               "budget consumed by earlier types: realized | reserved");
  flags.Define("gauss_shift", "0",
               "Gaussian discretization window shift (0 = midpoint)");
  flags.Define("benign", "optout",
               "benign '-' accesses: cost | optout | global");
  const auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  data::SynAOptions syn_options;
  syn_options.gauss_shift = flags.GetDouble("gauss_shift");
  const std::string benign = flags.GetString("benign");
  if (benign == "cost") {
    syn_options.benign_mode = data::SynABenignMode::kCostlyAccess;
  } else if (benign == "optout") {
    syn_options.benign_mode = data::SynABenignMode::kFreeOptOut;
  } else if (benign == "global") {
    syn_options.benign_mode = data::SynABenignMode::kGlobalOptOut;
  } else {
    std::cerr << "unknown --benign value: " << benign << "\n";
    return 1;
  }
  auto instance = data::MakeSynAVariant(syn_options);
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }

  std::cout << "# Table III: optimal OAP solution on Syn A (brute force)\n";
  std::cout << "budget,objective,thresholds,support,orderings,mixed_strategy,"
               "vectors_evaluated,search_space,seconds\n";
  core::DetectionModel::Options detection_options;
  const std::string semantics = flags.GetString("semantics");
  if (semantics == "ratio") {
    detection_options.semantics =
        core::DetectionModel::Semantics::kExpectedRatio;
  } else if (semantics == "inclusive") {
    detection_options.semantics =
        core::DetectionModel::Semantics::kInclusiveAttack;
  } else if (semantics == "roe") {
    detection_options.semantics =
        core::DetectionModel::Semantics::kRatioOfExpectations;
  } else {
    std::cerr << "unknown --semantics value: " << semantics << "\n";
    return 1;
  }
  detection_options.consumption =
      flags.GetString("consumption") == "reserved"
          ? core::DetectionModel::Consumption::kReserved
          : core::DetectionModel::Consumption::kRealized;

  auto brute = solver::Create("brute-force");
  if (!brute.ok()) {
    std::cerr << brute.status() << "\n";
    return 1;
  }
  auto compiled = core::Compile(*instance);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }
  for (int budget : flags.GetIntList("budgets")) {
    util::Timer timer;
    auto detection =
        core::DetectionModel::Create(*instance, budget, detection_options);
    if (!detection.ok()) {
      std::cerr << detection.status() << "\n";
      return 1;
    }
    solver::SolveRequest request;
    request.instance = &*instance;
    auto result = (*brute)->Solve(*compiled, *detection, request);
    if (!result.ok()) {
      std::cerr << "budget " << budget << ": " << result.status() << "\n";
      return 1;
    }
    std::string orderings;
    for (const auto& o : result->policy.orderings) {
      std::string text;
      for (int t : o) text += std::to_string(t + 1);  // paper is 1-based
      orderings += "[" + text + "]";
    }
    std::vector<int> audits(static_cast<size_t>(instance->num_types()));
    for (int t = 0; t < instance->num_types(); ++t) {
      audits[static_cast<size_t>(t)] = static_cast<int>(
          std::llround(result->thresholds[static_cast<size_t>(t)] /
                       instance->audit_costs[static_cast<size_t>(t)]));
    }
    std::cout << budget << "," << result->objective << ",\""
              << util::FormatIntVector(audits) << "\","
              << result->policy.orderings.size() << ",\"" << orderings
              << "\",\""
              << util::FormatDoubleVector(result->policy.probabilities)
              << "\"," << result->stats.vectors_evaluated << ","
              << result->stats.search_space << "," << timer.ElapsedSeconds()
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
