// Microbenchmarks for the LP substrate: the dense full-tableau two-phase
// simplex against the bounded-variable revised simplex, on random feasible
// LPs of increasing size and on the structured game LP.
//
// Two entry points:
//  * Google Benchmark (default): per-backend timing curves.
//  * --smoke_json=PATH: a quick self-contained dense-vs-revised comparison
//    that writes a BENCH_*.json report (iteration and wall-time ratios plus
//    objective agreement) — the form CI runs and archives per PR.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/alloc_count.h"
#include "bench/smoke_common.h"
#include "core/detection.h"
#include "core/game_lp.h"
#include "data/syn_a.h"
#include "lp/model.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "util/arena.h"
#include "util/combinatorics.h"
#include "util/json.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

// Random LP with rows constructed around a known feasible point, so every
// instance is feasible and bounded. Variables are doubly bounded, which
// costs the dense backend one extra row each and the revised backend
// nothing.
lp::LpModel RandomFeasibleLp(int n, int m, uint64_t seed) {
  util::Rng rng(seed);
  lp::LpModel model;
  std::vector<double> x0(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    x0[static_cast<size_t>(j)] = rng.Uniform(0.0, 5.0);
    model.AddVariable(rng.Uniform(-2.0, 2.0), 0.0, 10.0);
  }
  for (int i = 0; i < m; ++i) {
    double activity = 0.0;
    std::vector<double> coeffs(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      coeffs[static_cast<size_t>(j)] = rng.Uniform(-3.0, 3.0);
      activity += coeffs[static_cast<size_t>(j)] * x0[static_cast<size_t>(j)];
    }
    const int row = model.AddConstraint(lp::Sense::kLessEqual,
                                        activity + rng.Uniform(0.0, 2.0));
    for (int j = 0; j < n; ++j) {
      model.AddCoefficient(row, j, coeffs[static_cast<size_t>(j)]);
    }
  }
  return model;
}

lp::SimplexSolver::Options BackendOptions(lp::SimplexBackend backend) {
  lp::SimplexSolver::Options options;
  options.backend = backend;
  return options;
}

void BM_SimplexRandomLp(benchmark::State& state, lp::SimplexBackend backend) {
  const int n = static_cast<int>(state.range(0));
  const lp::LpModel model = RandomFeasibleLp(n, n, 1234);
  const lp::SimplexSolver::Options options = BackendOptions(backend);
  for (auto _ : state) {
    auto solution = lp::SimplexSolver::Solve(model, options);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK_CAPTURE(BM_SimplexRandomLp, dense,
                  lp::SimplexBackend::kDenseTableau)
    ->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(200);
BENCHMARK_CAPTURE(BM_SimplexRandomLp, revised, lp::SimplexBackend::kRevised)
    ->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

// The structured restricted game LP on Syn A with all 24 orderings.
void BM_GameLpSynA(benchmark::State& state) {
  const auto instance = data::MakeSynA();
  const auto compiled = core::Compile(*instance);
  auto detection = core::DetectionModel::Create(*instance, 10.0);
  (void)detection->SetThresholds({3.0, 3.0, 3.0, 3.0});
  const auto orderings = util::AllPermutations(4);
  for (auto _ : state) {
    auto solution =
        core::SolveRestrictedGameLp(*compiled, *detection, orderings);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_GameLpSynA);

// ---- Smoke mode ----------------------------------------------------------

struct BackendRun {
  double seconds = 0.0;
  long iterations = 0;
  double objective = 0.0;
  double allocations_per_solve = 0.0;
};

BackendRun TimeBackend(const lp::LpModel& model, lp::SimplexBackend backend,
                       int reps) {
  lp::SimplexSolver::Options options = BackendOptions(backend);
  // The revised backend draws its working memory from a caller workspace
  // when given one — the serving configuration (the incremental master LP
  // shares one across re-solves). The measured loop is then the steady
  // state: the warmup solve sizes the arenas, the counted solves reuse
  // them.
  util::WorkspacePool workspace;
  if (backend == lp::SimplexBackend::kRevised) {
    options.workspace = &workspace;
  }
  BackendRun run;
  auto solve_once = [&](BackendRun& into) {
    const auto solution = lp::SimplexSolver::Solve(model, options);
    if (!solution.ok() ||
        solution->status != lp::SolveStatus::kOptimal) {
      std::fprintf(stderr, "%s backend failed: %s\n",
                   lp::SimplexBackendToString(backend),
                   solution.ok()
                       ? lp::SolveStatusToString(solution->status)
                       : solution.status().ToString().c_str());
      std::exit(1);
    }
    into.objective = solution->objective;
    into.iterations =
        solution->phase1_iterations + solution->phase2_iterations;
  };
  solve_once(run);  // warmup, untimed and uncounted
  const uint64_t alloc_before = bench::HeapAllocationCount();
  util::Timer timer;
  for (int r = 0; r < reps; ++r) solve_once(run);
  run.seconds = timer.ElapsedSeconds() / reps;
  run.allocations_per_solve =
      static_cast<double>(bench::HeapAllocationCount() - alloc_before) / reps;
  return run;
}

int RunSmoke(const std::string& json_path) {
  util::JsonValue::Array cases;
  bool all_agree = true;
  for (const int n : {20, 50, 100}) {
    const lp::LpModel model = RandomFeasibleLp(n, n, 1234);
    const int reps = n <= 50 ? 20 : 5;
    const BackendRun dense =
        TimeBackend(model, lp::SimplexBackend::kDenseTableau, reps);
    const BackendRun revised =
        TimeBackend(model, lp::SimplexBackend::kRevised, reps);
    const double gap = std::fabs(dense.objective - revised.objective);
    all_agree = all_agree && gap <= 1e-6 * (1.0 + std::fabs(dense.objective));
    util::JsonValue::Object json_case;
    json_case["n"] = n;
    json_case["m"] = n;
    json_case["dense_seconds"] = dense.seconds;
    json_case["revised_seconds"] = revised.seconds;
    json_case["speedup_revised_over_dense"] = dense.seconds / revised.seconds;
    json_case["dense_iterations"] = static_cast<double>(dense.iterations);
    json_case["revised_iterations"] = static_cast<double>(revised.iterations);
    json_case["iteration_ratio"] =
        static_cast<double>(dense.iterations) /
        static_cast<double>(std::max(1L, revised.iterations));
    json_case["objective_gap"] = gap;
    json_case["dense_allocations_per_solve"] = dense.allocations_per_solve;
    json_case["revised_allocations_per_solve"] =
        revised.allocations_per_solve;
    std::printf("n=%d dense %.6fs (%ld it, %.0f allocs) revised %.6fs "
                "(%ld it, %.0f allocs) speedup %.2fx gap %.2e\n",
                n, dense.seconds, dense.iterations,
                dense.allocations_per_solve, revised.seconds,
                revised.iterations, revised.allocations_per_solve,
                dense.seconds / revised.seconds, gap);
    cases.push_back(std::move(json_case));
  }

  util::JsonValue::Object report;
  report["bench"] = "micro_simplex";
  report["mode"] = "smoke";
  report["backends_agree_1e6"] = all_agree;
  report["cases"] = std::move(cases);
  const int write_status =
      bench::WriteSmokeReport(json_path, std::move(report));
  // Disagreement outranks a report-write failure: it is the signal CI must
  // not mistake for an infrastructure problem.
  return all_agree ? write_status : bench::kSmokeExitDisagreement;
}

}  // namespace

int main(int argc, char** argv) {
  return auditgame::bench::SmokeOrBenchmarkMain(argc, argv, RunSmoke);
}
