// Microbenchmarks for the LP substrate: dense two-phase simplex on random
// feasible LPs of increasing size, and on the structured game LP.
#include <benchmark/benchmark.h>

#include "core/detection.h"
#include "core/game_lp.h"
#include "data/syn_a.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/combinatorics.h"
#include "util/random.h"

namespace {

using namespace auditgame;  // NOLINT

// Random LP with rows constructed around a known feasible point, so every
// instance is feasible and bounded.
lp::LpModel RandomFeasibleLp(int n, int m, uint64_t seed) {
  util::Rng rng(seed);
  lp::LpModel model;
  std::vector<double> x0(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    x0[static_cast<size_t>(j)] = rng.Uniform(0.0, 5.0);
    model.AddVariable(rng.Uniform(-2.0, 2.0), 0.0, 10.0);
  }
  for (int i = 0; i < m; ++i) {
    double activity = 0.0;
    std::vector<double> coeffs(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      coeffs[static_cast<size_t>(j)] = rng.Uniform(-3.0, 3.0);
      activity += coeffs[static_cast<size_t>(j)] * x0[static_cast<size_t>(j)];
    }
    const int row = model.AddConstraint(lp::Sense::kLessEqual,
                                        activity + rng.Uniform(0.0, 2.0));
    for (int j = 0; j < n; ++j) {
      model.AddCoefficient(row, j, coeffs[static_cast<size_t>(j)]);
    }
  }
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::LpModel model = RandomFeasibleLp(n, n, 1234);
  for (auto _ : state) {
    auto solution = lp::SimplexSolver::Solve(model);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

// The structured restricted game LP on Syn A with all 24 orderings.
void BM_GameLpSynA(benchmark::State& state) {
  const auto instance = data::MakeSynA();
  const auto compiled = core::Compile(*instance);
  auto detection = core::DetectionModel::Create(*instance, 10.0);
  (void)detection->SetThresholds({3.0, 3.0, 3.0, 3.0});
  const auto orderings = util::AllPermutations(4);
  for (auto _ : state) {
    auto solution =
        core::SolveRestrictedGameLp(*compiled, *detection, orderings);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_GameLpSynA);

}  // namespace

BENCHMARK_MAIN();
