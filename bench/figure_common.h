#ifndef AUDIT_GAME_BENCH_FIGURE_COMMON_H_
#define AUDIT_GAME_BENCH_FIGURE_COMMON_H_

// Shared sweep harness for Figures 1 and 2: auditor loss vs budget for the
// proposed model (ISHM + CGGS at several step sizes) against the three
// baselines of Section V-B.

#include <iostream>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/cggs.h"
#include "core/detection.h"
#include "core/game.h"
#include "core/ishm.h"
#include "util/status.h"
#include "util/timer.h"

namespace auditgame::bench {

struct FigureSweepOptions {
  std::vector<int> budgets;
  std::vector<double> step_sizes = {0.1, 0.2, 0.3};
  /// Distinct random orderings mixed by the random-order baseline
  /// (paper: 2000).
  int random_orders = 2000;
  /// Draws of the random-threshold baseline (paper: 5000; the default is
  /// lower because every draw solves a full CGGS — see DESIGN.md).
  int random_threshold_draws = 100;
  uint64_t seed = 20180113;
};

/// Runs the sweep and prints one CSV row per budget:
///   budget, proposed@eps..., random_thresholds, random_orders,
///   greedy_benefit, seconds
inline util::Status RunFigureSweep(const core::GameInstance& instance,
                                   const FigureSweepOptions& options,
                                   std::ostream& out) {
  ASSIGN_OR_RETURN(core::CompiledGame game, core::Compile(instance));

  out << "budget";
  for (double eps : options.step_sizes) out << ",proposed_eps" << eps;
  out << ",random_thresholds,random_orders,greedy_benefit,seconds\n";

  for (int budget : options.budgets) {
    util::Timer timer;
    ASSIGN_OR_RETURN(core::DetectionModel detection,
                     core::DetectionModel::Create(instance, budget));

    // --- Proposed model at each step size ------------------------------
    std::vector<double> proposed;
    std::vector<double> first_eps_thresholds;
    for (double eps : options.step_sizes) {
      core::IshmOptions ishm_options;
      ishm_options.step_size = eps;
      core::CggsOptions cggs_options;
      cggs_options.seed = options.seed;
      auto evaluator =
          core::MakeCggsEvaluator(game, detection, cggs_options);
      ASSIGN_OR_RETURN(core::IshmResult result,
                       core::SolveIshm(instance, evaluator, ishm_options));
      proposed.push_back(result.objective);
      if (first_eps_thresholds.empty()) {
        first_eps_thresholds = result.effective_thresholds;
      }
    }

    // --- Baseline: random thresholds (auditor still optimizes orders) ---
    double random_thresholds_loss = 0.0;
    if (options.random_threshold_draws > 0) {
      ASSIGN_OR_RETURN(
          core::RandomThresholdResult rt,
          core::RandomThresholdBaseline(instance, game, detection,
                                        options.random_threshold_draws,
                                        options.seed + 1));
      random_thresholds_loss = rt.mean_auditor_loss;
    }

    // --- Baseline: random orders with the proposed thresholds -----------
    ASSIGN_OR_RETURN(core::RandomOrderResult ro,
                     core::RandomOrderBaseline(game, detection,
                                               first_eps_thresholds,
                                               options.random_orders,
                                               options.seed + 2));

    // --- Baseline: greedy by benefit ------------------------------------
    ASSIGN_OR_RETURN(core::GreedyBenefitResult gb,
                     core::GreedyByBenefitBaseline(game, detection));

    out << budget;
    for (double loss : proposed) out << "," << loss;
    out << "," << random_thresholds_loss << "," << ro.auditor_loss << ","
        << gb.auditor_loss << "," << timer.ElapsedSeconds() << "\n";
    out.flush();
  }
  return util::OkStatus();
}

}  // namespace auditgame::bench

#endif  // AUDIT_GAME_BENCH_FIGURE_COMMON_H_
