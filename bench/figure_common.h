#ifndef AUDIT_GAME_BENCH_FIGURE_COMMON_H_
#define AUDIT_GAME_BENCH_FIGURE_COMMON_H_

// Shared sweep harness for Figures 1 and 2: auditor loss vs budget for the
// proposed model (ISHM + CGGS at several step sizes) against the three
// baselines of Section V-B.
//
// The proposed-model cells — one per (budget, step size) — are independent
// solves, so the harness fans all of them through solver::SolverEngine in
// one batch and assembles rows from the ordered results. Alongside the CSV
// on `out`, the sweep can emit a machine-readable BENCH_*.json (util/json)
// so the perf trajectory is trackable across commits.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/detection.h"
#include "core/game.h"
#include "solver/engine.h"
#include "util/json.h"
#include "util/status.h"
#include "util/timer.h"

namespace auditgame::bench {

struct FigureSweepOptions {
  std::vector<int> budgets;
  std::vector<double> step_sizes = {0.1, 0.2, 0.3};
  /// Distinct random orderings mixed by the random-order baseline
  /// (paper: 2000).
  int random_orders = 2000;
  /// Draws of the random-threshold baseline (paper: 5000; the default is
  /// lower because every draw solves a full CGGS — see docs/DESIGN.md).
  int random_threshold_draws = 100;
  uint64_t seed = 20180113;
  /// Worker threads for the proposed-model batch (0 = one per core).
  int num_threads = 0;
  /// Short name recorded in the JSON report (e.g. "fig1_emr").
  std::string bench_name;
  /// When non-empty, write the JSON report here (e.g. "BENCH_fig1_emr.json").
  std::string json_path;
};

/// Runs the sweep and prints one CSV row per budget:
///   budget, proposed@eps..., random_thresholds, random_orders,
///   greedy_benefit, seconds
/// `seconds` is the solver time summed over the row's step sizes (measured
/// inside the workers) plus the wall time of the row's baselines.
inline util::Status RunFigureSweep(const core::GameInstance& instance,
                                   const FigureSweepOptions& options,
                                   std::ostream& out) {
  ASSIGN_OR_RETURN(core::CompiledGame game, core::Compile(instance));

  // --- Proposed model: every (budget, eps) cell in one parallel batch ---
  std::vector<solver::EngineRequest> requests;
  requests.reserve(options.budgets.size() * options.step_sizes.size());
  for (int budget : options.budgets) {
    for (double eps : options.step_sizes) {
      solver::EngineRequest request;
      request.solver = "ishm-cggs";
      request.instance = &instance;
      request.budget = budget;
      request.options.ishm.step_size = eps;
      request.options.cggs.seed = options.seed;
      requests.push_back(std::move(request));
    }
  }
  solver::SolverEngine engine(options.num_threads);
  const std::vector<util::StatusOr<solver::SolveResult>> proposed =
      engine.SolveAll(requests);

  out << "budget";
  for (double eps : options.step_sizes) out << ",proposed_eps" << eps;
  out << ",random_thresholds,random_orders,greedy_benefit,seconds\n";

  util::JsonValue::Array json_rows;
  for (size_t b = 0; b < options.budgets.size(); ++b) {
    const int budget = options.budgets[b];
    double solver_seconds = 0.0;
    std::vector<double> losses;
    std::vector<double> first_eps_thresholds;
    util::JsonValue::Array json_proposed;
    for (size_t e = 0; e < options.step_sizes.size(); ++e) {
      const auto& cell = proposed[b * options.step_sizes.size() + e];
      RETURN_IF_ERROR(cell.status());
      losses.push_back(cell->objective);
      solver_seconds += cell->stats.seconds;
      if (first_eps_thresholds.empty()) {
        first_eps_thresholds = cell->thresholds;
      }
      util::JsonValue::Object json_cell;
      json_cell["eps"] = options.step_sizes[e];
      json_cell["objective"] = cell->objective;
      json_cell["seconds"] = cell->stats.seconds;
      json_proposed.push_back(std::move(json_cell));
    }

    util::Timer baseline_timer;
    ASSIGN_OR_RETURN(core::DetectionModel detection,
                     core::DetectionModel::Create(instance, budget));

    // --- Baseline: random thresholds (auditor still optimizes orders) ---
    double random_thresholds_loss = 0.0;
    if (options.random_threshold_draws > 0) {
      ASSIGN_OR_RETURN(
          core::RandomThresholdResult rt,
          core::RandomThresholdBaseline(instance, game, detection,
                                        options.random_threshold_draws,
                                        options.seed + 1));
      random_thresholds_loss = rt.mean_auditor_loss;
    }

    // --- Baseline: random orders with the proposed thresholds -----------
    ASSIGN_OR_RETURN(core::RandomOrderResult ro,
                     core::RandomOrderBaseline(game, detection,
                                               first_eps_thresholds,
                                               options.random_orders,
                                               options.seed + 2));

    // --- Baseline: greedy by benefit ------------------------------------
    ASSIGN_OR_RETURN(core::GreedyBenefitResult gb,
                     core::GreedyByBenefitBaseline(game, detection));

    const double seconds = solver_seconds + baseline_timer.ElapsedSeconds();
    out << budget;
    for (double loss : losses) out << "," << loss;
    out << "," << random_thresholds_loss << "," << ro.auditor_loss << ","
        << gb.auditor_loss << "," << seconds << "\n";
    out.flush();

    util::JsonValue::Object json_row;
    json_row["budget"] = budget;
    json_row["proposed"] = std::move(json_proposed);
    json_row["random_thresholds"] = random_thresholds_loss;
    json_row["random_orders"] = ro.auditor_loss;
    json_row["greedy_benefit"] = gb.auditor_loss;
    json_row["seconds"] = seconds;
    json_rows.push_back(std::move(json_row));
  }

  if (!options.json_path.empty()) {
    util::JsonValue::Object report;
    report["bench"] = options.bench_name;
    util::JsonValue::Array eps_array;
    for (double eps : options.step_sizes) eps_array.push_back(eps);
    report["step_sizes"] = std::move(eps_array);
    report["random_orders"] = options.random_orders;
    report["random_threshold_draws"] = options.random_threshold_draws;
    report["seed"] = static_cast<double>(options.seed);
    report["engine_threads"] = engine.num_threads();
    report["rows"] = std::move(json_rows);
    std::ofstream json_out(options.json_path);
    if (!json_out) {
      return util::InvalidArgumentError("cannot write " + options.json_path);
    }
    json_out << util::JsonValue(std::move(report)).Dump(2) << "\n";
  }
  return util::OkStatus();
}

}  // namespace auditgame::bench

#endif  // AUDIT_GAME_BENCH_FIGURE_COMMON_H_
