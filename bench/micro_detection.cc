// Microbenchmarks for the detection-probability estimators: exact
// (prefix-convolution) vs Monte Carlo across instance sizes, plus the
// incremental prefix operations CGGS relies on.
//
// Two entry points:
//  * Google Benchmark (default): timing curves.
//  * --smoke_json=PATH: runs the detection hot path (the Into-style calls
//    CGGS prices with) under the scalar and SIMD kernel backends and
//    writes a BENCH_*.json report — bit-identity of the two backends,
//    allocations-per-solve in steady state (the arena/kernel refactor
//    gate), and timings for the archive.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/alloc_count.h"
#include "bench/smoke_common.h"
#include "core/detection.h"
#include "data/credit.h"
#include "data/emr.h"
#include "data/syn_a.h"
#include "math/kernels.h"
#include "util/json.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

const core::GameInstance& EmrInstance() {
  static const core::GameInstance* const kInstance = [] {
    auto instance = data::MakeEmrGame();
    return new core::GameInstance(*instance);
  }();
  return *kInstance;
}

std::vector<double> HalfMeanThresholds(const core::GameInstance& instance) {
  std::vector<double> thresholds;
  for (int t = 0; t < instance.num_types(); ++t) {
    thresholds.push_back(
        std::floor(instance.alert_distributions[t].Mean() / 2));
  }
  return thresholds;
}

std::vector<int> IdentityOrdering(int n) {
  std::vector<int> o(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) o[static_cast<size_t>(i)] = i;
  return o;
}

void BM_ExactPalEmr(benchmark::State& state) {
  const auto& instance = EmrInstance();
  const double budget = static_cast<double>(state.range(0));
  auto model = core::DetectionModel::Create(instance, budget);
  (void)model->SetThresholds(HalfMeanThresholds(instance));
  const auto ordering = IdentityOrdering(instance.num_types());
  for (auto _ : state) {
    auto pal = model->DetectionProbabilities(ordering);
    benchmark::DoNotOptimize(pal);
  }
}
BENCHMARK(BM_ExactPalEmr)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_MonteCarloPalEmr(benchmark::State& state) {
  const auto& instance = EmrInstance();
  core::DetectionModel::Options options;
  options.mode = core::DetectionModel::Mode::kMonteCarlo;
  options.mc_samples = static_cast<int>(state.range(0));
  auto model = core::DetectionModel::Create(instance, 100.0, options);
  (void)model->SetThresholds(HalfMeanThresholds(instance));
  const auto ordering = IdentityOrdering(instance.num_types());
  for (auto _ : state) {
    auto pal = model->DetectionProbabilities(ordering);
    benchmark::DoNotOptimize(pal);
  }
}
BENCHMARK(BM_MonteCarloPalEmr)->Arg(500)->Arg(2000)->Arg(10000);

void BM_SetThresholdsEmr(benchmark::State& state) {
  const auto& instance = EmrInstance();
  auto model = core::DetectionModel::Create(instance, 100.0);
  const auto thresholds = HalfMeanThresholds(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->SetThresholds(thresholds));
  }
}
BENCHMARK(BM_SetThresholdsEmr);

void BM_PrefixExtendAndQuery(benchmark::State& state) {
  const auto& instance = EmrInstance();
  auto model = core::DetectionModel::Create(instance, 100.0);
  (void)model->SetThresholds(HalfMeanThresholds(instance));
  for (auto _ : state) {
    core::DetectionModel::Prefix prefix = model->EmptyPrefix();
    double total = 0.0;
    for (int t = 0; t < instance.num_types(); ++t) {
      total += model->PalGivenPrefix(prefix, t);
      model->ExtendPrefix(prefix, t);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PrefixExtendAndQuery);

// Accuracy study (reported as a counter): max |exact - MC| over types.
void BM_MonteCarloError(benchmark::State& state) {
  const auto& instance = EmrInstance();
  auto exact = core::DetectionModel::Create(instance, 100.0);
  (void)exact->SetThresholds(HalfMeanThresholds(instance));
  core::DetectionModel::Options options;
  options.mode = core::DetectionModel::Mode::kMonteCarlo;
  options.mc_samples = static_cast<int>(state.range(0));
  auto mc = core::DetectionModel::Create(instance, 100.0, options);
  (void)mc->SetThresholds(HalfMeanThresholds(instance));
  const auto ordering = IdentityOrdering(instance.num_types());
  double max_error = 0.0;
  for (auto _ : state) {
    const auto pal_exact = exact->DetectionProbabilities(ordering);
    const auto pal_mc = mc->DetectionProbabilities(ordering);
    for (int t = 0; t < instance.num_types(); ++t) {
      max_error = std::max(max_error,
                           std::fabs((*pal_exact)[t] - (*pal_mc)[t]));
    }
  }
  state.counters["max_abs_error"] = max_error;
}
BENCHMARK(BM_MonteCarloError)->Arg(500)->Arg(2000)->Arg(10000);

// ---- Smoke mode ----------------------------------------------------------

struct BackendRun {
  double seconds = 0.0;
  double allocations_per_solve = 0.0;
  std::vector<double> pal;
};

// One "solve" is the steady-state pricing unit: a full detection-
// probability sweep over an ordering through the caller-scratch API
// (DetectionProbabilitiesInto), exactly how CGGS evaluates candidates.
BackendRun RunDetection(core::DetectionModel& model, int t_count, int reps) {
  BackendRun run;
  const auto ordering = IdentityOrdering(t_count);
  core::DetectionModel::Prefix prefix = model.EmptyPrefix();
  std::vector<double> pal;
  // Warm up so every buffer reaches steady-state capacity before counting.
  for (int r = 0; r < 3; ++r) {
    (void)model.DetectionProbabilitiesInto(ordering, prefix, pal);
  }
  const uint64_t alloc_before = bench::HeapAllocationCount();
  util::Timer timer;
  for (int r = 0; r < reps; ++r) {
    const util::Status status =
        model.DetectionProbabilitiesInto(ordering, prefix, pal);
    if (!status.ok()) {
      std::fprintf(stderr, "DetectionProbabilitiesInto failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  run.seconds = timer.ElapsedSeconds() / reps;
  run.allocations_per_solve =
      static_cast<double>(bench::HeapAllocationCount() - alloc_before) / reps;
  run.pal = pal;
  return run;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

int RunSmoke(const std::string& json_path) {
  const bool simd = math::SimdAvailable();
  util::JsonValue::Array cases;
  bool all_identical = true;

  struct Case {
    const char* mode;
    core::DetectionModel::Mode model_mode;
    int mc_samples;
    int reps;
  };
  const Case kCases[] = {
      {"exact", core::DetectionModel::Mode::kExact, 0, 400},
      {"monte_carlo", core::DetectionModel::Mode::kMonteCarlo, 2000, 400},
  };

  const auto& instance = EmrInstance();
  const auto thresholds = HalfMeanThresholds(instance);
  for (const Case& c : kCases) {
    core::DetectionModel::Options options;
    options.mode = c.model_mode;
    if (c.mc_samples > 0) options.mc_samples = c.mc_samples;
    auto model = core::DetectionModel::Create(instance, 100.0, options);
    if (!model.ok() || !model->SetThresholds(thresholds).ok()) {
      std::fprintf(stderr, "detection model setup failed (%s)\n", c.mode);
      return 1;
    }

    if (!math::SetBackend(math::Backend::kScalar)) return 1;
    const BackendRun scalar =
        RunDetection(*model, instance.num_types(), c.reps);
    BackendRun vectorized;
    if (simd) {
      if (!math::SetBackend(math::Backend::kSimd)) return 1;
      vectorized = RunDetection(*model, instance.num_types(), c.reps);
      math::SetBackend(math::Backend::kSimd);
    }

    const bool identical =
        !simd || BitIdentical(scalar.pal, vectorized.pal);
    all_identical = all_identical && identical;
    util::JsonValue::Object json_case;
    json_case["game"] = "emr";
    json_case["mode"] = c.mode;
    json_case["scalar_seconds"] = scalar.seconds;
    json_case["allocations_per_solve"] = scalar.allocations_per_solve;
    json_case["pal_bit_identical_scalar_simd"] = identical;
    if (simd) {
      json_case["simd_backend"] = math::BackendName();
      json_case["simd_seconds"] = vectorized.seconds;
      json_case["speedup_simd_over_scalar"] =
          scalar.seconds / vectorized.seconds;
    }
    std::printf("%s scalar %.6fs%s allocs/solve %.2f identical=%d\n", c.mode,
                scalar.seconds,
                simd ? (" simd " + std::to_string(vectorized.seconds) + "s")
                           .c_str()
                     : "",
                scalar.allocations_per_solve, identical ? 1 : 0);
    cases.push_back(std::move(json_case));
  }

  util::JsonValue::Object report;
  report["bench"] = "micro_detection";
  report["mode"] = "smoke";
  report["simd_compared"] = simd;
  report["pal_bit_identical_scalar_simd"] = all_identical;
  report["cases"] = std::move(cases);
  const int write_status =
      bench::WriteSmokeReport(json_path, std::move(report));
  // Backend disagreement outranks a report-write failure: it is the signal
  // CI must not mistake for an infrastructure problem.
  return all_identical ? write_status : bench::kSmokeExitDisagreement;
}

}  // namespace

int main(int argc, char** argv) {
  return auditgame::bench::SmokeOrBenchmarkMain(argc, argv, RunSmoke);
}
