// Microbenchmarks for the detection-probability estimators: exact
// (prefix-convolution) vs Monte Carlo across instance sizes, plus the
// incremental prefix operations CGGS relies on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "core/detection.h"
#include "data/credit.h"
#include "data/emr.h"
#include "data/syn_a.h"

namespace {

using namespace auditgame;  // NOLINT

const core::GameInstance& EmrInstance() {
  static const core::GameInstance* const kInstance = [] {
    auto instance = data::MakeEmrGame();
    return new core::GameInstance(*instance);
  }();
  return *kInstance;
}

std::vector<double> HalfMeanThresholds(const core::GameInstance& instance) {
  std::vector<double> thresholds;
  for (int t = 0; t < instance.num_types(); ++t) {
    thresholds.push_back(
        std::floor(instance.alert_distributions[t].Mean() / 2));
  }
  return thresholds;
}

std::vector<int> IdentityOrdering(int n) {
  std::vector<int> o(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) o[static_cast<size_t>(i)] = i;
  return o;
}

void BM_ExactPalEmr(benchmark::State& state) {
  const auto& instance = EmrInstance();
  const double budget = static_cast<double>(state.range(0));
  auto model = core::DetectionModel::Create(instance, budget);
  (void)model->SetThresholds(HalfMeanThresholds(instance));
  const auto ordering = IdentityOrdering(instance.num_types());
  for (auto _ : state) {
    auto pal = model->DetectionProbabilities(ordering);
    benchmark::DoNotOptimize(pal);
  }
}
BENCHMARK(BM_ExactPalEmr)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_MonteCarloPalEmr(benchmark::State& state) {
  const auto& instance = EmrInstance();
  core::DetectionModel::Options options;
  options.mode = core::DetectionModel::Mode::kMonteCarlo;
  options.mc_samples = static_cast<int>(state.range(0));
  auto model = core::DetectionModel::Create(instance, 100.0, options);
  (void)model->SetThresholds(HalfMeanThresholds(instance));
  const auto ordering = IdentityOrdering(instance.num_types());
  for (auto _ : state) {
    auto pal = model->DetectionProbabilities(ordering);
    benchmark::DoNotOptimize(pal);
  }
}
BENCHMARK(BM_MonteCarloPalEmr)->Arg(500)->Arg(2000)->Arg(10000);

void BM_SetThresholdsEmr(benchmark::State& state) {
  const auto& instance = EmrInstance();
  auto model = core::DetectionModel::Create(instance, 100.0);
  const auto thresholds = HalfMeanThresholds(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->SetThresholds(thresholds));
  }
}
BENCHMARK(BM_SetThresholdsEmr);

void BM_PrefixExtendAndQuery(benchmark::State& state) {
  const auto& instance = EmrInstance();
  auto model = core::DetectionModel::Create(instance, 100.0);
  (void)model->SetThresholds(HalfMeanThresholds(instance));
  for (auto _ : state) {
    core::DetectionModel::Prefix prefix = model->EmptyPrefix();
    double total = 0.0;
    for (int t = 0; t < instance.num_types(); ++t) {
      total += model->PalGivenPrefix(prefix, t);
      model->ExtendPrefix(prefix, t);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PrefixExtendAndQuery);

// Accuracy study (reported as a counter): max |exact - MC| over types.
void BM_MonteCarloError(benchmark::State& state) {
  const auto& instance = EmrInstance();
  auto exact = core::DetectionModel::Create(instance, 100.0);
  (void)exact->SetThresholds(HalfMeanThresholds(instance));
  core::DetectionModel::Options options;
  options.mode = core::DetectionModel::Mode::kMonteCarlo;
  options.mc_samples = static_cast<int>(state.range(0));
  auto mc = core::DetectionModel::Create(instance, 100.0, options);
  (void)mc->SetThresholds(HalfMeanThresholds(instance));
  const auto ordering = IdentityOrdering(instance.num_types());
  double max_error = 0.0;
  for (auto _ : state) {
    const auto pal_exact = exact->DetectionProbabilities(ordering);
    const auto pal_mc = mc->DetectionProbabilities(ordering);
    for (int t = 0; t < instance.num_types(); ++t) {
      max_error = std::max(max_error,
                           std::fabs((*pal_exact)[t] - (*pal_mc)[t]));
    }
  }
  state.counters["max_abs_error"] = max_error;
}
BENCHMARK(BM_MonteCarloError)->Arg(500)->Arg(2000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
