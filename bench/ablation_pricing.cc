// Ablation: CGGS pricing strategies. The paper's Algorithm 1 builds each
// new column greedily from the master duals. This bench compares, on
// Syn A across budgets:
//   * greedy   — Algorithm 1 as published (+ random probes disabled);
//   * greedy+r — Algorithm 1 with 2 random probe columns per round
//                (this library's default);
//   * exact    — exact pricing by enumerating all |T|! orderings per round
//                (optimal column generation, feasible only for small |T|);
//   * random   — random columns only (no dual guidance), same column count.
// Reported: final objective and number of LP solves.
#include <iostream>
#include <numeric>
#include <set>
#include <vector>

#include "core/detection.h"
#include "core/game_lp.h"
#include "data/syn_a.h"
#include "solver/registry.h"
#include "util/combinatorics.h"
#include "util/flags.h"
#include "util/random.h"

namespace {

using namespace auditgame;  // NOLINT

// Exact column generation: price every permutation against the duals.
util::StatusOr<std::pair<double, int>> ExactColumnGeneration(
    const core::CompiledGame& game, core::DetectionModel& detection,
    const std::vector<double>& thresholds) {
  RETURN_IF_ERROR(detection.SetThresholds(thresholds));
  std::vector<std::vector<int>> columns;
  std::vector<int> identity(game.num_types);
  std::iota(identity.begin(), identity.end(), 0);
  columns.push_back(identity);
  std::set<std::vector<int>> column_set(columns.begin(), columns.end());
  const auto all_orderings = util::AllPermutations(game.num_types);

  int lp_solves = 0;
  for (;;) {
    ASSIGN_OR_RETURN(core::RestrictedLpSolution master,
                     core::SolveRestrictedGameLp(game, detection, columns));
    ++lp_solves;
    double best_rc = -1e-7;
    const std::vector<int>* best = nullptr;
    for (const auto& ordering : all_orderings) {
      if (column_set.count(ordering)) continue;
      ASSIGN_OR_RETURN(std::vector<double> pal,
                       detection.DetectionProbabilities(ordering));
      double rc = -master.convexity_dual;
      for (size_t g = 0; g < game.groups.size(); ++g) {
        const auto& victims = game.groups[g].victims;
        for (size_t v = 0; v < victims.size(); ++v) {
          rc += master.victim_duals[g][v] *
                core::AdversaryUtility(victims[v], pal);
        }
      }
      if (rc < best_rc) {
        best_rc = rc;
        best = &ordering;
      }
    }
    if (best == nullptr) {
      return std::make_pair(master.objective, lp_solves);
    }
    column_set.insert(*best);
    columns.push_back(*best);
  }
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budgets", "2,6,10,14,18", "budgets to probe");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto instance = data::MakeSynA();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }
  auto compiled = core::Compile(*instance);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }
  const std::vector<double> thresholds = {3.0, 3.0, 2.0, 2.0};

  std::cout << "# Ablation: CGGS pricing strategies on Syn A, b = [3,3,2,2]\n";
  std::cout << "budget,strategy,objective,lp_solves,columns\n";
  for (int budget : flags.GetIntList("budgets")) {
    auto detection = core::DetectionModel::Create(*instance, budget);
    if (!detection.ok()) {
      std::cerr << detection.status() << "\n";
      return 1;
    }

    // The greedy variants are the "cggs" backend with random probes off/on.
    solver::SolveRequest request;
    request.thresholds = thresholds;
    solver::SolverOptions greedy;
    greedy.cggs.random_probes = 0;
    auto greedy_solver = solver::Create("cggs", greedy);
    solver::SolverOptions greedy_random;
    greedy_random.cggs.random_probes = 2;
    auto greedy_random_solver = solver::Create("cggs", greedy_random);
    if (!greedy_solver.ok() || !greedy_random_solver.ok()) {
      std::cerr << greedy_solver.status() << " / "
                << greedy_random_solver.status() << "\n";
      return 1;
    }
    auto greedy_result = (*greedy_solver)->Solve(*compiled, *detection, request);
    auto greedy_random_result =
        (*greedy_random_solver)->Solve(*compiled, *detection, request);
    auto exact = ExactColumnGeneration(*compiled, *detection, thresholds);
    if (!greedy_result.ok() || !greedy_random_result.ok() || !exact.ok()) {
      std::cerr << greedy_result.status() << " / "
                << greedy_random_result.status() << " / " << exact.status()
                << "\n";
      return 1;
    }
    // Random-only: uniform random distinct columns, one LP at the end with
    // the same number of columns exact pricing used.
    util::Rng rng(99);
    std::set<std::vector<int>> random_columns;
    std::vector<int> ordering(static_cast<size_t>(instance->num_types()));
    std::iota(ordering.begin(), ordering.end(), 0);
    // Q at termination = the identity seed column + the generated ones.
    const size_t want = static_cast<size_t>(
        greedy_random_result->stats.columns_generated + 1);
    while (random_columns.size() < want) {
      rng.Shuffle(ordering);
      random_columns.insert(ordering);
    }
    auto random_result = core::SolveRestrictedGameLp(
        *compiled, *detection,
        std::vector<std::vector<int>>(random_columns.begin(),
                                      random_columns.end()));
    if (!random_result.ok()) {
      std::cerr << random_result.status() << "\n";
      return 1;
    }

    std::cout << budget << ",greedy," << greedy_result->objective << ","
              << greedy_result->stats.lp_solves << ","
              << greedy_result->stats.columns_generated + 1 << "\n";
    std::cout << budget << ",greedy+r," << greedy_random_result->objective
              << "," << greedy_random_result->stats.lp_solves << ","
              << greedy_random_result->stats.columns_generated + 1 << "\n";
    std::cout << budget << ",exact," << exact->first << "," << exact->second
              << "," << exact->second << "\n";
    std::cout << budget << ",random," << random_result->objective << ",1,"
              << want << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
