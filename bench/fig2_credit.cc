// Reproduces Figure 2: auditor's loss versus audit budget on the credit
// application game (synthetic Rea B; see docs/DESIGN.md for the substitution),
// comparing the proposed model (ISHM + CGGS) with the three baselines.
#include <iostream>

#include "bench/figure_common.h"
#include "data/credit.h"
#include "util/flags.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budgets", "10,30,50,70,90,110,130,150,170,190,210,230,250",
               "audit budgets");
  flags.Define("eps", "0.1,0.2,0.3", "ISHM step sizes for the proposed model");
  flags.Define("random_orders", "2000", "orderings in the random-order mix");
  flags.Define("rt_draws", "100", "random-threshold baseline draws");
  flags.Define("seed", "20180114", "experiment seed");
  flags.Define("threads", "0", "solver engine workers (0 = one per core)");
  flags.Define("json", "BENCH_fig2_credit.json",
               "machine-readable report path (empty = none)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto instance = data::MakeCreditGame();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }

  bench::FigureSweepOptions options;
  options.budgets = flags.GetIntList("budgets");
  options.step_sizes = flags.GetDoubleList("eps");
  options.random_orders = flags.GetInt("random_orders");
  options.random_threshold_draws = flags.GetInt("rt_draws");
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.num_threads = flags.GetInt("threads");
  options.bench_name = "fig2_credit";
  options.json_path = flags.GetString("json");

  std::cout << "# Figure 2: auditor loss vs budget (credit / Rea B synthetic)\n";
  const auto run = bench::RunFigureSweep(*instance, options, std::cout);
  if (!run.ok()) {
    std::cerr << run << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
