// Extension benches (the paper's Discussion section, Section VII):
//  1. Bounded rationality — auditor loss against quantal-response
//     adversaries as the rationality parameter lambda grows, for the
//     game-theoretic policy vs. the greedy baseline.
//  2. Non-zero-sum gap — the auditor's "true" loss (damage of successful
//     violations only) under the zero-sum-optimized policy.
//  3. Parameter sensitivity — the proposed-vs-greedy gap as all benefits
//     are scaled by a multiplier (does the comparative result survive
//     parameter misestimation?).
#include <iostream>

#include "core/baselines.h"
#include "core/detection.h"
#include "core/extensions.h"
#include "data/syn_a.h"
#include "solver/engine.h"
#include "util/flags.h"

namespace {

using namespace auditgame;  // NOLINT

util::StatusOr<core::AuditPolicy> SolveProposed(
    const core::GameInstance& instance, double budget) {
  solver::EngineRequest request;
  request.solver = "ishm-cggs";
  request.instance = &instance;
  request.budget = budget;
  request.options.ishm.step_size = 0.1;
  ASSIGN_OR_RETURN(solver::SolveResult result,
                   solver::SolverEngine::SolveOne(request));
  return result.policy;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budget", "10", "audit budget");
  flags.Define("lambdas", "0,0.25,0.5,1,2,4,8,16", "QR rationality sweep");
  flags.Define("benefit_scales", "0.5,0.75,1,1.5,2,3",
               "benefit multiplier sweep");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }
  const double budget = flags.GetDouble("budget");

  auto instance = data::MakeSynA();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }
  auto compiled = core::Compile(*instance);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }
  auto policy = SolveProposed(*instance, budget);
  if (!policy.ok()) {
    std::cerr << policy.status() << "\n";
    return 1;
  }
  auto detection = core::DetectionModel::Create(*instance, budget);
  if (!detection.ok()) {
    std::cerr << detection.status() << "\n";
    return 1;
  }
  auto greedy = core::GreedyByBenefitBaseline(*compiled, *detection);
  if (!greedy.ok()) {
    std::cerr << greedy.status() << "\n";
    return 1;
  }

  std::cout << "# Extension 1: quantal-response adversaries (Syn A, B = "
            << budget << ")\n";
  std::cout << "lambda,proposed_loss,greedy_loss,proposed_opt_out_mass\n";
  for (double lambda : flags.GetDoubleList("lambdas")) {
    auto qr_proposed =
        core::EvaluateQuantalResponse(*compiled, *detection, *policy, lambda);
    auto qr_greedy = core::EvaluateQuantalResponse(*compiled, *detection,
                                                   greedy->policy, lambda);
    if (!qr_proposed.ok() || !qr_greedy.ok()) {
      std::cerr << qr_proposed.status() << " / " << qr_greedy.status() << "\n";
      return 1;
    }
    double opt_out_mass = 0.0;
    for (double p : qr_proposed->opt_out_probability) opt_out_mass += p;
    std::cout << lambda << "," << qr_proposed->auditor_loss << ","
              << qr_greedy->auditor_loss << "," << opt_out_mass << "\n";
  }

  std::cout << "\n# Extension 2: non-zero-sum evaluation of the zero-sum "
               "policy\n";
  std::cout << "policy,zero_sum_loss,violation_loss\n";
  auto nzs_proposed = core::EvaluateNonZeroSum(*compiled, *detection, *policy);
  auto nzs_greedy =
      core::EvaluateNonZeroSum(*compiled, *detection, greedy->policy);
  if (!nzs_proposed.ok() || !nzs_greedy.ok()) {
    std::cerr << nzs_proposed.status() << " / " << nzs_greedy.status() << "\n";
    return 1;
  }
  std::cout << "proposed," << nzs_proposed->zero_sum_loss << ","
            << nzs_proposed->auditor_loss << "\n";
  std::cout << "greedy," << nzs_greedy->zero_sum_loss << ","
            << nzs_greedy->auditor_loss << "\n";

  std::cout << "\n# Extension 3: sensitivity to the benefit scale\n";
  std::cout << "benefit_scale,proposed_loss,greedy_loss\n";
  for (double scale : flags.GetDoubleList("benefit_scales")) {
    const core::GameInstance scaled =
        core::ScaleUtilities(*instance, scale, 1.0, 1.0);
    auto compiled_scaled = core::Compile(scaled);
    if (!compiled_scaled.ok()) {
      std::cerr << compiled_scaled.status() << "\n";
      return 1;
    }
    auto policy_scaled = SolveProposed(scaled, budget);
    auto detection_scaled = core::DetectionModel::Create(scaled, budget);
    if (!policy_scaled.ok() || !detection_scaled.ok()) {
      std::cerr << policy_scaled.status() << " / "
                << detection_scaled.status() << "\n";
      return 1;
    }
    auto eval = core::EvaluatePolicy(*compiled_scaled, *detection_scaled,
                                     *policy_scaled);
    auto greedy_scaled =
        core::GreedyByBenefitBaseline(*compiled_scaled, *detection_scaled);
    if (!eval.ok() || !greedy_scaled.ok()) {
      std::cerr << eval.status() << " / " << greedy_scaled.status() << "\n";
      return 1;
    }
    std::cout << scale << "," << eval->auditor_loss << ","
              << greedy_scaled->auditor_loss << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
