// Microbenchmark for the wire codecs of the audit server's hot verbs:
// the JSON path (server/protocol.h) against the compact binary path
// (server/binary_codec.h), on the two payloads that dominate serving
// traffic — an `ingest` request carrying per-type alert distributions and
// a `solve_cycle` response carrying the cycle's policies.
//
// Two kinds of numbers come out. The deterministic ones gate in CI via
// tools/bench_compare.py: `round_trip_identical` (the binary decode
// returns the request/response bit-exactly) and the byte-size ratios
// (`*_json_binary_size_ratio` = JSON bytes / binary bytes, higher is
// better, a pure function of the codec). The encode/decode wall-clock
// throughputs ride along as `*_seconds` fields — archived, not gated.
//
// Measured numbers land in BENCH_micro_frame.json.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/exit_codes.h"
#include "prob/count_distribution.h"
#include "server/binary_codec.h"
#include "server/protocol.h"
#include "service/audit_service.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

std::vector<prob::CountDistribution> MakeDistributions(int types,
                                                       int support) {
  std::vector<prob::CountDistribution> dists;
  for (int t = 0; t < types; ++t) {
    std::vector<double> pmf(static_cast<size_t>(support));
    for (int z = 0; z < support; ++z) {
      // Deterministic ragged shape: distinct per type, nothing uniform.
      pmf[static_cast<size_t>(z)] = 1.0 + ((z * 7 + t * 3) % 11);
    }
    auto dist = prob::CountDistribution::FromPmf(t, std::move(pmf));
    if (!dist.ok()) {
      std::cerr << dist.status() << "\n";
      std::exit(1);
    }
    dists.push_back(*std::move(dist));
  }
  return dists;
}

service::AuditService::CycleReport MakeReport(int budgets, int types) {
  service::AuditService::CycleReport report;
  report.cycle = 41;
  report.seconds = 0.015625;
  for (int b = 0; b < budgets; ++b) {
    service::AuditService::CyclePolicy policy;
    policy.budget = 5.0 + b;
    policy.source = service::AuditService::Source::kWarmSolve;
    policy.drift = 0.03125 * b;
    policy.result.objective = -1.25 - b;
    for (int t = 0; t < types; ++t) {
      policy.result.thresholds.push_back(static_cast<double>(t + b));
    }
    report.policies.push_back(std::move(policy));
  }
  return report;
}

// The wire carries IEEE-754 bits unchanged; the one place precision can
// move is CountDistribution's constructor, which renormalizes the decoded
// pmf (a divide by a sum within a few ULPs of 1). So "identical" here
// means support-exact and value-equal to 4 ULPs — the same contract the
// codec unit tests assert — while the JSON path, which prints decimal,
// drifts orders of magnitude more.
bool SameDistributions(const std::vector<prob::CountDistribution>& a,
                       const std::vector<prob::CountDistribution>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].min_value() != b[i].min_value() ||
        a[i].support_size() != b[i].support_size()) {
      return false;
    }
    for (int z = a[i].min_value(); z <= a[i].max_value(); ++z) {
      const double x = a[i].Pmf(z), y = b[i].Pmf(z);
      if (std::abs(x - y) > 4 * std::abs(x) * 2.220446049250313e-16) {
        return false;
      }
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("types", "5", "alert types per ingest payload");
  flags.Define("support", "24", "pmf entries per distribution");
  flags.Define("budgets", "2", "policies per solve_cycle response");
  flags.Define("reps", "2000", "encode+decode repetitions per codec");
  flags.Define("json", "BENCH_micro_frame.json",
               "machine-readable report path (empty = none)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }
  const int types = std::max(1, flags.GetInt("types"));
  const int support = std::max(1, flags.GetInt("support"));
  const int budgets = std::max(1, flags.GetInt("budgets"));
  const int reps = std::max(1, flags.GetInt("reps"));

  const auto dists = MakeDistributions(types, support);
  const auto report = MakeReport(budgets, types);

  // --- correctness: the binary codec must round-trip the ingest (see
  // SameDistributions for what "identical" means here) ---
  const std::string ingest_json = server::MakeIngestRequest(7, "bench", dists);
  const std::string ingest_binary =
      server::EncodeBinaryIngestRequest(7, "bench", dists);
  bool round_trip_identical;
  {
    auto decoded = server::DecodeBinaryRequest(ingest_binary);
    round_trip_identical = decoded.ok() && decoded->id == 7 &&
                           decoded->tenant == "bench" &&
                           SameDistributions(decoded->distributions, dists);
  }
  const std::string response_json =
      server::MakeSolveCycleResponse(7, "bench", 0, report);
  const std::string response_binary =
      server::EncodeBinarySolveCycleResponse(7, 0, report);
  {
    auto decoded = server::DecodeBinaryResponse(response_binary);
    round_trip_identical =
        round_trip_identical && decoded.ok() &&
        decoded->cycle == report.cycle &&
        decoded->policies.size() == report.policies.size();
  }

  // --- timing: encode and decode throughput per codec ---
  util::Timer timer;
  for (int i = 0; i < reps; ++i) {
    volatile size_t sink =
        server::MakeIngestRequest(i, "bench", dists).size();
    (void)sink;
  }
  const double json_encode_seconds = timer.ElapsedSeconds();
  timer = util::Timer();
  for (int i = 0; i < reps; ++i) {
    volatile size_t sink =
        server::EncodeBinaryIngestRequest(i, "bench", dists).size();
    (void)sink;
  }
  const double binary_encode_seconds = timer.ElapsedSeconds();
  timer = util::Timer();
  size_t decoded_types = 0;
  for (int i = 0; i < reps; ++i) {
    auto doc = util::JsonValue::Parse(ingest_json);
    auto parsed = server::ParseRequest(*doc);
    decoded_types += parsed->distributions.size();
  }
  const double json_decode_seconds = timer.ElapsedSeconds();
  timer = util::Timer();
  for (int i = 0; i < reps; ++i) {
    auto parsed = server::DecodeBinaryRequest(ingest_binary);
    decoded_types += parsed->distributions.size();
  }
  const double binary_decode_seconds = timer.ElapsedSeconds();
  if (decoded_types !=
      static_cast<size_t>(2 * reps) * static_cast<size_t>(types)) {
    std::cerr << "decode sink mismatch\n";
    return bench::kSmokeExitDisagreement;
  }

  const double ingest_size_ratio =
      static_cast<double>(ingest_json.size()) /
      static_cast<double>(ingest_binary.size());
  const double response_size_ratio =
      static_cast<double>(response_json.size()) /
      static_cast<double>(response_binary.size());
  const bool binary_smaller =
      ingest_binary.size() < ingest_json.size() &&
      response_binary.size() < response_json.size();

  std::cerr << "micro_frame: ingest " << ingest_json.size() << "B json vs "
            << ingest_binary.size() << "B binary (ratio "
            << ingest_size_ratio << "), response " << response_json.size()
            << "B vs " << response_binary.size() << "B (ratio "
            << response_size_ratio << ")\n"
            << "  encode: json " << json_encode_seconds << "s, binary "
            << binary_encode_seconds << "s; decode: json "
            << json_decode_seconds << "s, binary " << binary_decode_seconds
            << "s (" << reps << " reps)\n"
            << "  round_trip_identical=" << round_trip_identical
            << " binary_smaller=" << binary_smaller << "\n";

  if (const std::string path = flags.GetString("json"); !path.empty()) {
    util::JsonValue::Object out;
    out["bench"] = "micro_frame";
    out["types"] = types;
    out["support"] = support;
    out["budgets"] = budgets;
    out["reps"] = reps;
    out["ingest_json_bytes"] = static_cast<double>(ingest_json.size());
    out["ingest_binary_bytes"] = static_cast<double>(ingest_binary.size());
    out["response_json_bytes"] = static_cast<double>(response_json.size());
    out["response_binary_bytes"] =
        static_cast<double>(response_binary.size());
    // Gated (deterministic): the booleans and the size ratios.
    out["round_trip_identical"] = round_trip_identical;
    out["binary_smaller_than_json"] = binary_smaller;
    out["ingest_json_binary_size_ratio"] = ingest_size_ratio;
    out["response_json_binary_size_ratio"] = response_size_ratio;
    // Archived (machine-dependent): wall-clock per codec.
    out["json_encode_seconds"] = json_encode_seconds;
    out["binary_encode_seconds"] = binary_encode_seconds;
    out["json_decode_seconds"] = json_decode_seconds;
    out["binary_decode_seconds"] = binary_decode_seconds;
    std::ofstream stream(path);
    if (!stream) {
      std::cerr << "cannot write " << path << "\n";
      return bench::kSmokeExitIoError;
    }
    stream << util::JsonValue(std::move(out)).Dump(2) << "\n";
  }
  return (round_trip_identical && binary_smaller)
             ? bench::kSmokeExitOk
             : bench::kSmokeExitDisagreement;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
