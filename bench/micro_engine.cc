// Microbenchmark for solver::SolverEngine: a batch of independent
// ishm-cggs solves on Syn A (one per budget), run once serially on the
// calling thread and once fanned across the engine's worker pool. Reports
// wall-clock for both, the speedup, and verifies the parallel results are
// bit-for-bit identical to the serial ones (per-request RNG and detection
// state, so scheduling cannot change any result).
//
// On a 4+ core machine the default batch of 8 requests shows >= 2x
// speedup; the measured numbers land in BENCH_engine.json so the
// trajectory is trackable across commits.
#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "data/syn_a.h"
#include "solver/engine.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("requests", "8", "independent solve requests in the batch");
  flags.Define("eps", "0.1", "ISHM step size for every request");
  flags.Define("threads", "0", "engine workers (0 = one per core)");
  flags.Define("json", "BENCH_engine.json",
               "machine-readable report path (empty = none)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto instance = data::MakeSynA();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }

  // One request per budget, sweeping 2, 4, 6, ... — the shape of every
  // figure/table budget sweep in this repo.
  const int num_requests = flags.GetInt("requests");
  std::vector<solver::EngineRequest> requests;
  for (int i = 0; i < num_requests; ++i) {
    solver::EngineRequest request;
    request.solver = "ishm-cggs";
    request.instance = &*instance;
    request.budget = 2.0 * (1 + i % 10);
    request.options.ishm.step_size = flags.GetDouble("eps");
    requests.push_back(std::move(request));
  }

  util::Timer serial_timer;
  std::vector<util::StatusOr<solver::SolveResult>> serial;
  serial.reserve(requests.size());
  for (const auto& request : requests) {
    serial.push_back(solver::SolverEngine::SolveOne(request));
  }
  const double serial_seconds = serial_timer.ElapsedSeconds();

  solver::SolverEngine engine(flags.GetInt("threads"));
  util::Timer parallel_timer;
  const auto parallel = engine.SolveAll(requests);
  const double parallel_seconds = parallel_timer.ElapsedSeconds();

  int mismatches = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!serial[i].ok() || !parallel[i].ok()) {
      std::cerr << "request " << i << ": " << serial[i].status() << " / "
                << parallel[i].status() << "\n";
      return 1;
    }
    if (serial[i]->objective != parallel[i]->objective ||
        serial[i]->thresholds != parallel[i]->thresholds) {
      ++mismatches;
    }
  }

  const double speedup = parallel_seconds > 0.0
                             ? serial_seconds / parallel_seconds
                             : 0.0;
  std::cout << "# SolverEngine batch: " << num_requests
            << " x ishm-cggs on Syn A\n";
  std::cout << "requests,threads,serial_seconds,parallel_seconds,speedup,"
               "mismatches\n";
  std::cout << num_requests << "," << engine.num_threads() << ","
            << serial_seconds << "," << parallel_seconds << "," << speedup
            << "," << mismatches << "\n";
  if (mismatches > 0) {
    std::cerr << "parallel results diverged from serial results\n";
    return 1;
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    util::JsonValue::Object report;
    report["bench"] = "micro_engine";
    report["requests"] = num_requests;
    report["threads"] = engine.num_threads();
    report["hardware_threads"] = util::ThreadPool::DefaultThreadCount();
    report["serial_seconds"] = serial_seconds;
    report["parallel_seconds"] = parallel_seconds;
    report["speedup"] = speedup;
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << util::JsonValue(std::move(report)).Dump(2) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
