// Reproduces Table VII and the T / T' vectors of Section IV-C: the number
// of threshold vectors ISHM checks per (budget, step size), the per-eps
// average over budgets (T), and that average as a fraction of the
// brute-force search space (T').
#include <iostream>
#include <map>
#include <vector>

#include "core/brute_force.h"
#include "core/detection.h"
#include "core/ishm.h"
#include "data/syn_a.h"
#include "util/flags.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budgets", "2,4,6,8,10,12,14,16,18,20", "audit budgets B");
  flags.Define("eps", "0.05,0.10,0.15,0.20,0.25,0.30,0.35,0.40,0.45,0.50",
               "ISHM step sizes");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto instance = data::MakeSynA();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }
  auto compiled = core::Compile(*instance);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }
  const std::vector<int> budgets = flags.GetIntList("budgets");
  const std::vector<double> eps_list = flags.GetDoubleList("eps");

  // Brute-force search-space size: prod_t (J_t + 1).
  uint64_t search_space = 1;
  for (int t = 0; t < instance->num_types(); ++t) {
    search_space *= static_cast<uint64_t>(
                        instance->alert_distributions[t].max_value()) + 1;
  }

  std::cout << "# Table VII: threshold vectors checked by ISHM\n";
  std::cout << "eps";
  for (int budget : budgets) std::cout << ",B" << budget;
  std::cout << ",T_mean,T_ratio\n";
  for (double eps : eps_list) {
    std::cout << eps;
    double total = 0.0;
    for (int budget : budgets) {
      auto detection = core::DetectionModel::Create(*instance, budget);
      if (!detection.ok()) {
        std::cerr << detection.status() << "\n";
        return 1;
      }
      core::IshmOptions options;
      options.step_size = eps;
      auto result = core::SolveIshm(
          *instance, core::MakeFullLpEvaluator(*compiled, *detection), options);
      if (!result.ok()) {
        std::cerr << result.status() << "\n";
        return 1;
      }
      std::cout << "," << result->stats.evaluations;
      total += static_cast<double>(result->stats.evaluations);
    }
    const double mean = total / budgets.size();
    std::cout << "," << mean << ","
              << mean / static_cast<double>(search_space) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
