// Reproduces Table VII and the T / T' vectors of Section IV-C: the number
// of threshold vectors ISHM checks per (budget, step size), the per-eps
// average over budgets (T), and that average as a fraction of the
// brute-force search space (T'). All (eps, budget) cells are independent
// ishm-full solves, fanned through solver::SolverEngine in one batch.
#include <iostream>
#include <vector>

#include "data/syn_a.h"
#include "solver/engine.h"
#include "util/flags.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budgets", "2,4,6,8,10,12,14,16,18,20", "audit budgets B");
  flags.Define("eps", "0.05,0.10,0.15,0.20,0.25,0.30,0.35,0.40,0.45,0.50",
               "ISHM step sizes");
  flags.Define("threads", "0", "solver engine workers (0 = one per core)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto instance = data::MakeSynA();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }
  const std::vector<int> budgets = flags.GetIntList("budgets");
  const std::vector<double> eps_list = flags.GetDoubleList("eps");

  // Brute-force search-space size: prod_t (J_t + 1).
  uint64_t search_space = 1;
  for (int t = 0; t < instance->num_types(); ++t) {
    search_space *= static_cast<uint64_t>(
                        instance->alert_distributions[t].max_value()) + 1;
  }

  std::vector<solver::EngineRequest> requests;
  for (double eps : eps_list) {
    for (int budget : budgets) {
      solver::EngineRequest request;
      request.solver = "ishm-full";
      request.instance = &*instance;
      request.budget = budget;
      request.options.ishm.step_size = eps;
      requests.push_back(std::move(request));
    }
  }
  solver::SolverEngine engine(flags.GetInt("threads"));
  const auto cells = engine.SolveAll(requests);

  std::cout << "# Table VII: threshold vectors checked by ISHM\n";
  std::cout << "eps";
  for (int budget : budgets) std::cout << ",B" << budget;
  std::cout << ",T_mean,T_ratio\n";
  size_t cell = 0;
  for (double eps : eps_list) {
    std::cout << eps;
    double total = 0.0;
    for (size_t b = 0; b < budgets.size(); ++b) {
      const auto& result = cells[cell++];
      if (!result.ok()) {
        std::cerr << result.status() << "\n";
        return 1;
      }
      std::cout << "," << result->stats.evaluations;
      total += static_cast<double>(result->stats.evaluations);
    }
    const double mean = total / budgets.size();
    std::cout << "," << mean << ","
              << mean / static_cast<double>(search_space) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
