#ifndef AUDIT_GAME_BENCH_ALLOC_COUNT_H_
#define AUDIT_GAME_BENCH_ALLOC_COUNT_H_

#include <cstdint>

namespace auditgame::bench {

/// Number of global operator-new calls since process start. Linking
/// bench/alloc_count.cc into a binary replaces the global allocation
/// functions with counting versions; the smoke benches read a delta around
/// a measured loop to report allocations-per-solve — the metric the arena
/// refactor gates (see docs/DESIGN.md "Numeric kernels and arenas").
/// Thread-safe (relaxed atomic).
uint64_t HeapAllocationCount();

}  // namespace auditgame::bench

#endif  // AUDIT_GAME_BENCH_ALLOC_COUNT_H_
