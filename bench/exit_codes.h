#ifndef AUDIT_GAME_BENCH_EXIT_CODES_H_
#define AUDIT_GAME_BENCH_EXIT_CODES_H_

// Exit-code convention shared by every bench that CI runs as a smoke
// gate, so the workflow can tell *why* a run tripped without parsing
// output. Kept free of other includes: the plain-main drivers
// (scenario_suite) use it without depending on Google Benchmark.
//
// 1 stays the generic "solve failed" exit used on solver errors.

namespace auditgame::bench {

inline constexpr int kSmokeExitOk = 0;
/// The report could not be written (bad path, full disk) — an
/// infrastructure failure, not a correctness signal.
inline constexpr int kSmokeExitIoError = 3;
/// The smoke's correctness gate tripped: two backends that must agree
/// (dense vs revised, cold vs incremental, serial vs parallel pricing)
/// disagreed.
inline constexpr int kSmokeExitDisagreement = 4;

}  // namespace auditgame::bench

#endif  // AUDIT_GAME_BENCH_EXIT_CODES_H_
