// Counting replacements for the global allocation functions (linked into
// the smoke-capable micro benches only — never into the library). Every
// form funnels through CountedAlloc so HeapAllocationCount() sees new,
// new[], nothrow, and aligned allocations alike.
#include "bench/alloc_count.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  if (alignment <= alignof(std::max_align_t)) {
    p = std::malloc(size);
  } else {
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t padded = (size + alignment - 1) / alignment * alignment;
    p = std::aligned_alloc(alignment, padded);
  }
  return p;
}

}  // namespace

namespace auditgame::bench {

uint64_t HeapAllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace auditgame::bench

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size, alignof(std::max_align_t));
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size, alignof(std::max_align_t));
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = CountedAlloc(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return CountedAlloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return CountedAlloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
