// Microbenchmark: CGGS (column generation) versus the full LP over all
// |T|! orderings as the number of alert types grows — the scaling argument
// that motivates column generation in the paper (Section III-A).
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/detection.h"
#include "prob/count_distribution.h"
#include "solver/registry.h"
#include "util/random.h"

namespace {

using namespace auditgame;  // NOLINT

// Synthetic game with `num_types` types and a victim per type.
core::GameInstance MakeScalableGame(int num_types, uint64_t seed) {
  util::Rng rng(seed);
  core::GameInstance instance;
  instance.audit_costs.assign(static_cast<size_t>(num_types), 1.0);
  for (int t = 0; t < num_types; ++t) {
    instance.type_names.push_back("t" + std::to_string(t));
    const double mean = 4.0 + static_cast<double>(rng.UniformInt(6));
    instance.alert_distributions.push_back(
        *prob::CountDistribution::DiscretizedGaussian(
            mean, 1.5, 1, static_cast<int>(mean) + 5));
  }
  for (int e = 0; e < 8; ++e) {
    core::Adversary adversary;
    adversary.attack_probability = 1.0;
    adversary.can_opt_out = true;
    for (int t = 0; t < num_types; ++t) {
      core::VictimProfile victim;
      victim.type_probs.assign(static_cast<size_t>(num_types), 0.0);
      victim.type_probs[static_cast<size_t>(t)] = 1.0;
      victim.benefit = 3.0 + rng.Uniform(0.0, 4.0);
      victim.penalty = 5.0;
      victim.attack_cost = 0.5;
      adversary.victims.push_back(std::move(victim));
    }
    instance.adversaries.push_back(std::move(adversary));
  }
  return instance;
}

std::vector<double> MeanThresholds(const core::GameInstance& instance) {
  std::vector<double> thresholds;
  for (int t = 0; t < instance.num_types(); ++t) {
    thresholds.push_back(std::floor(instance.alert_distributions[t].Mean()));
  }
  return thresholds;
}

void BM_CggsByTypeCount(benchmark::State& state) {
  const int num_types = static_cast<int>(state.range(0));
  const core::GameInstance instance = MakeScalableGame(num_types, 7);
  const auto compiled = core::Compile(instance);
  auto detection =
      core::DetectionModel::Create(instance, 2.0 * num_types);
  auto cggs = solver::Create("cggs");
  solver::SolveRequest request;
  request.thresholds = MeanThresholds(instance);
  double objective = 0.0;
  int columns = 0;
  for (auto _ : state) {
    auto result = (*cggs)->Solve(*compiled, *detection, request);
    objective = result->objective;
    columns = result->stats.columns_generated;
    benchmark::DoNotOptimize(result);
  }
  state.counters["objective"] = objective;
  state.counters["columns"] = columns;
}
BENCHMARK(BM_CggsByTypeCount)->DenseRange(3, 8);

void BM_FullLpByTypeCount(benchmark::State& state) {
  const int num_types = static_cast<int>(state.range(0));
  const core::GameInstance instance = MakeScalableGame(num_types, 7);
  const auto compiled = core::Compile(instance);
  auto detection =
      core::DetectionModel::Create(instance, 2.0 * num_types);
  auto full = solver::Create("full-lp");
  solver::SolveRequest request;
  request.thresholds = MeanThresholds(instance);
  double objective = 0.0;
  for (auto _ : state) {
    auto result = (*full)->Solve(*compiled, *detection, request);
    objective = result->objective;
    benchmark::DoNotOptimize(result);
  }
  // The gap between this objective and BM_CggsByTypeCount's quantifies the
  // cost of approximate pricing.
  state.counters["objective"] = objective;
}
// 8! = 40320 orderings is already minutes of work; stop at 7.
BENCHMARK(BM_FullLpByTypeCount)->DenseRange(3, 6);

}  // namespace

BENCHMARK_MAIN();
