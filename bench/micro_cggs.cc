// Microbenchmark: CGGS (column generation) versus the full LP over all
// |T|! orderings as the number of alert types grows — the scaling argument
// that motivates column generation in the paper (Section III-A) — and the
// incremental revised-simplex master against the cold dense-tableau
// reference path.
//
// Two entry points:
//  * Google Benchmark (default): timing curves per master mode.
//  * --smoke_json=PATH: a quick cold-vs-incremental comparison that writes
//    a BENCH_*.json report (total solve-time ratio, master iteration
//    counts, warm-start coverage, and Syn A objective agreement) — the
//    form CI runs and archives per PR.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/alloc_count.h"
#include "bench/smoke_common.h"
#include "core/cggs.h"
#include "core/detection.h"
#include "data/syn_a.h"
#include "prob/count_distribution.h"
#include "solver/registry.h"
#include "util/arena.h"
#include "util/json.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

// Synthetic game with `num_types` types and a victim per type.
core::GameInstance MakeScalableGame(int num_types, uint64_t seed) {
  util::Rng rng(seed);
  core::GameInstance instance;
  instance.audit_costs.assign(static_cast<size_t>(num_types), 1.0);
  for (int t = 0; t < num_types; ++t) {
    instance.type_names.push_back("t" + std::to_string(t));
    const double mean = 4.0 + static_cast<double>(rng.UniformInt(6));
    instance.alert_distributions.push_back(
        *prob::CountDistribution::DiscretizedGaussian(
            mean, 1.5, 1, static_cast<int>(mean) + 5));
  }
  for (int e = 0; e < 8; ++e) {
    core::Adversary adversary;
    adversary.attack_probability = 1.0;
    adversary.can_opt_out = true;
    for (int t = 0; t < num_types; ++t) {
      core::VictimProfile victim;
      victim.type_probs.assign(static_cast<size_t>(num_types), 0.0);
      victim.type_probs[static_cast<size_t>(t)] = 1.0;
      victim.benefit = 3.0 + rng.Uniform(0.0, 4.0);
      victim.penalty = 5.0;
      victim.attack_cost = 0.5;
      adversary.victims.push_back(std::move(victim));
    }
    instance.adversaries.push_back(std::move(adversary));
  }
  return instance;
}

std::vector<double> MeanThresholds(const core::GameInstance& instance) {
  std::vector<double> thresholds;
  for (int t = 0; t < instance.num_types(); ++t) {
    thresholds.push_back(std::floor(instance.alert_distributions[t].Mean()));
  }
  return thresholds;
}

void BM_CggsByTypeCount(benchmark::State& state,
                        core::CggsOptions::MasterMode master_mode,
                        int pricing_threads = 1) {
  const int num_types = static_cast<int>(state.range(0));
  const core::GameInstance instance = MakeScalableGame(num_types, 7);
  const auto compiled = core::Compile(instance);
  auto detection =
      core::DetectionModel::Create(instance, 2.0 * num_types);
  solver::SolverOptions options;
  options.cggs.master_mode = master_mode;
  options.cggs.pricing_threads = pricing_threads;
  // Pool spawn/join stays outside the timed region so the parallel
  // variant measures pricing, not thread startup.
  std::unique_ptr<util::ThreadPool> pricing_pool;
  if (pricing_threads > 1) {
    pricing_pool = std::make_unique<util::ThreadPool>(pricing_threads);
    options.cggs.pricing_pool = pricing_pool.get();
  }
  auto cggs = solver::Create("cggs", options);
  solver::SolveRequest request;
  request.thresholds = MeanThresholds(instance);
  double objective = 0.0;
  int columns = 0;
  int warm = 0;
  for (auto _ : state) {
    auto result = (*cggs)->Solve(*compiled, *detection, request);
    objective = result->objective;
    columns = result->stats.columns_generated;
    warm = result->stats.warm_lp_solves;
    benchmark::DoNotOptimize(result);
  }
  state.counters["objective"] = objective;
  state.counters["columns"] = columns;
  state.counters["warm_lp_solves"] = warm;
}
BENCHMARK_CAPTURE(BM_CggsByTypeCount, incremental_revised,
                  core::CggsOptions::MasterMode::kIncrementalRevised)
    ->DenseRange(3, 8);
BENCHMARK_CAPTURE(BM_CggsByTypeCount, cold_dense,
                  core::CggsOptions::MasterMode::kColdDense)
    ->DenseRange(3, 8);
// Parallel pricing (bit-for-bit identical results; see
// CggsOptions::pricing_threads): the timing delta against
// incremental_revised is pure pricing-phase speedup.
BENCHMARK_CAPTURE(BM_CggsByTypeCount, incremental_revised_pricing4,
                  core::CggsOptions::MasterMode::kIncrementalRevised, 4)
    ->DenseRange(3, 8);

void BM_FullLpByTypeCount(benchmark::State& state) {
  const int num_types = static_cast<int>(state.range(0));
  const core::GameInstance instance = MakeScalableGame(num_types, 7);
  const auto compiled = core::Compile(instance);
  auto detection =
      core::DetectionModel::Create(instance, 2.0 * num_types);
  auto full = solver::Create("full-lp");
  solver::SolveRequest request;
  request.thresholds = MeanThresholds(instance);
  double objective = 0.0;
  for (auto _ : state) {
    auto result = (*full)->Solve(*compiled, *detection, request);
    objective = result->objective;
    benchmark::DoNotOptimize(result);
  }
  // The gap between this objective and BM_CggsByTypeCount's quantifies the
  // cost of approximate pricing.
  state.counters["objective"] = objective;
}
// 8! = 40320 orderings is already minutes of work; stop at 7.
BENCHMARK(BM_FullLpByTypeCount)->DenseRange(3, 6);

// ---- Smoke mode ----------------------------------------------------------

struct ModeRun {
  double seconds = 0.0;
  double objective = 0.0;
  int lp_solves = 0;
  int warm_lp_solves = 0;
  long master_iterations = 0;
  /// Steady-state heap allocations per SolveCggs call with a shared
  /// workspace (the serving configuration) — the arena refactor gate.
  double allocations_per_solve = 0.0;
};

ModeRun TimeMode(const core::GameInstance& instance,
                 const core::CompiledGame& compiled,
                 core::CggsOptions::MasterMode master_mode, double budget,
                 const std::vector<double>& thresholds, int reps) {
  ModeRun run;
  auto detection = core::DetectionModel::Create(instance, budget);
  if (!detection.ok()) {
    std::fprintf(stderr, "DetectionModel::Create failed: %s\n",
                 detection.status().ToString().c_str());
    std::exit(1);
  }
  core::CggsOptions options;
  options.master_mode = master_mode;
  // One workspace across the reps, like a serving loop (result-neutral;
  // see CggsOptions::workspace). The first solve sizes the arenas — warm
  // up before counting so the reported number is the steady state.
  util::WorkspacePool workspace;
  options.workspace = &workspace;
  auto solve_once = [&]() {
    auto result = core::SolveCggs(compiled, *detection, thresholds, options);
    if (!result.ok()) {
      std::fprintf(stderr, "SolveCggs (mode %d) failed: %s\n",
                   static_cast<int>(master_mode),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    run.objective = result->objective;
    run.lp_solves = result->lp_solves;
    run.warm_lp_solves = result->warm_lp_solves;
    run.master_iterations = result->master_lp_iterations;
  };
  solve_once();  // warmup, untimed and uncounted
  const uint64_t alloc_before = bench::HeapAllocationCount();
  util::Timer timer;
  for (int r = 0; r < reps; ++r) solve_once();
  run.seconds = timer.ElapsedSeconds() / reps;
  run.allocations_per_solve =
      static_cast<double>(bench::HeapAllocationCount() - alloc_before) / reps;
  return run;
}

int RunSmoke(const std::string& json_path) {
  util::JsonValue::Array cases;

  // Scaling cases: synthetic games of growing type count.
  for (const int types : {5, 6, 7}) {
    const core::GameInstance instance = MakeScalableGame(types, 7);
    const auto compiled = core::Compile(instance);
    const std::vector<double> thresholds = MeanThresholds(instance);
    const double budget = 2.0 * types;
    const int reps = types <= 6 ? 10 : 5;
    const ModeRun cold =
        TimeMode(instance, *compiled, core::CggsOptions::MasterMode::kColdDense,
                 budget, thresholds, reps);
    const ModeRun incremental = TimeMode(
        instance, *compiled,
        core::CggsOptions::MasterMode::kIncrementalRevised, budget,
        thresholds, reps);
    util::JsonValue::Object json_case;
    json_case["game"] = "scalable";
    json_case["types"] = types;
    json_case["cold_dense_seconds"] = cold.seconds;
    json_case["incremental_seconds"] = incremental.seconds;
    json_case["speedup_incremental_over_cold"] =
        cold.seconds / incremental.seconds;
    json_case["cold_master_iterations"] =
        static_cast<double>(cold.master_iterations);
    json_case["incremental_master_iterations"] =
        static_cast<double>(incremental.master_iterations);
    json_case["iteration_ratio"] =
        static_cast<double>(cold.master_iterations) /
        static_cast<double>(std::max(1L, incremental.master_iterations));
    json_case["incremental_warm_lp_solves"] = incremental.warm_lp_solves;
    json_case["incremental_lp_solves"] = incremental.lp_solves;
    json_case["incremental_allocations_per_solve"] =
        incremental.allocations_per_solve;
    std::printf("types=%d cold %.4fs incremental %.4fs speedup %.2fx "
                "(iterations %ld vs %ld, warm %d/%d, %.0f allocs/solve)\n",
                types, cold.seconds, incremental.seconds,
                cold.seconds / incremental.seconds, cold.master_iterations,
                incremental.master_iterations, incremental.warm_lp_solves,
                incremental.lp_solves, incremental.allocations_per_solve);
    cases.push_back(std::move(json_case));
  }

  // Agreement cases: both master modes must land on the same Syn A
  // objectives (the controlled instance has a well-separated optimum).
  bool syn_a_agree = true;
  const auto syn_a = data::MakeSynA();
  const auto syn_a_compiled = core::Compile(*syn_a);
  for (const double budget : {4.0, 10.0}) {
    const std::vector<double> thresholds = {3.0, 3.0, 2.0, 2.0};
    const ModeRun cold = TimeMode(*syn_a, *syn_a_compiled,
                                  core::CggsOptions::MasterMode::kColdDense,
                                  budget, thresholds, 3);
    const ModeRun incremental =
        TimeMode(*syn_a, *syn_a_compiled,
                 core::CggsOptions::MasterMode::kIncrementalRevised, budget,
                 thresholds, 3);
    const double gap = std::fabs(cold.objective - incremental.objective);
    syn_a_agree = syn_a_agree && gap <= 1e-6;
    util::JsonValue::Object json_case;
    json_case["game"] = "syn_a";
    json_case["budget"] = budget;
    json_case["cold_dense_objective"] = cold.objective;
    json_case["incremental_objective"] = incremental.objective;
    json_case["objective_gap"] = gap;
    json_case["speedup_incremental_over_cold"] =
        cold.seconds / incremental.seconds;
    std::printf("syn_a budget=%.0f cold obj %.9f incremental obj %.9f "
                "gap %.2e speedup %.2fx\n",
                budget, cold.objective, incremental.objective, gap,
                cold.seconds / incremental.seconds);
    cases.push_back(std::move(json_case));
  }

  util::JsonValue::Object report;
  report["bench"] = "micro_cggs";
  report["mode"] = "smoke";
  report["syn_a_objectives_agree_1e6"] = syn_a_agree;
  report["cases"] = std::move(cases);
  const int write_status =
      bench::WriteSmokeReport(json_path, std::move(report));
  // Disagreement outranks a report-write failure: it is the signal CI must
  // not mistake for an infrastructure problem.
  return syn_a_agree ? write_status : bench::kSmokeExitDisagreement;
}

}  // namespace

int main(int argc, char** argv) {
  return auditgame::bench::SmokeOrBenchmarkMain(argc, argv, RunSmoke);
}
