// Reproduces Table VI: average approximation precision of ISHM (gamma^1)
// and ISHM+CGGS (gamma^2) over the budget range, per step size eps:
//   gamma = 1 - (1/|B|) sum_B |approx_B - opt_B| / |opt_B|.
// Ground truth comes from the brute-force solver (Table III).
//
// Every cell — the per-budget ground truth and each (eps, budget, variant)
// ISHM run — is an independent solve, so the whole table is fanned through
// solver::SolverEngine in two batches.
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "data/syn_a.h"
#include "solver/engine.h"
#include "util/flags.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budgets", "2,4,6,8,10,12,14,16,18,20", "audit budgets B");
  flags.Define("eps", "0.05,0.10,0.15,0.20,0.25,0.30,0.35,0.40,0.45,0.50",
               "ISHM step sizes");
  flags.Define("threads", "0", "solver engine workers (0 = one per core)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto instance = data::MakeSynA();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }
  const std::vector<int> budgets = flags.GetIntList("budgets");
  const std::vector<double> eps_list = flags.GetDoubleList("eps");
  solver::SolverEngine engine(flags.GetInt("threads"));

  // Ground truth per budget.
  std::vector<solver::EngineRequest> truth_requests;
  for (int budget : budgets) {
    solver::EngineRequest request;
    request.solver = "brute-force";
    request.instance = &*instance;
    request.budget = budget;
    truth_requests.push_back(std::move(request));
  }
  const auto truth = engine.SolveAll(truth_requests);
  std::map<int, double> optimal;
  for (size_t b = 0; b < budgets.size(); ++b) {
    if (!truth[b].ok()) {
      std::cerr << truth[b].status() << "\n";
      return 1;
    }
    optimal[budgets[b]] = truth[b]->objective;
  }

  // Every (eps, budget) cell for both evaluators, in one batch.
  std::vector<solver::EngineRequest> requests;
  for (double eps : eps_list) {
    for (int budget : budgets) {
      for (const char* name : {"ishm-full", "ishm-cggs"}) {
        solver::EngineRequest request;
        request.solver = name;
        request.instance = &*instance;
        request.budget = budget;
        request.options.ishm.step_size = eps;
        requests.push_back(std::move(request));
      }
    }
  }
  const auto cells = engine.SolveAll(requests);

  std::cout << "# Table VI: mean precision over budgets (gamma1 = ISHM, "
               "gamma2 = ISHM+CGGS)\n";
  std::cout << "eps,gamma1,gamma2\n";
  size_t cell = 0;
  for (double eps : eps_list) {
    double err1 = 0.0, err2 = 0.0;
    for (int budget : budgets) {
      const auto& full = cells[cell++];
      const auto& cggs = cells[cell++];
      if (!full.ok() || !cggs.ok()) {
        std::cerr << full.status() << " / " << cggs.status() << "\n";
        return 1;
      }
      const double opt = optimal[budget];
      err1 += std::fabs(full->objective - opt) / std::fabs(opt);
      err2 += std::fabs(cggs->objective - opt) / std::fabs(opt);
    }
    std::cout << eps << "," << 1.0 - err1 / budgets.size() << ","
              << 1.0 - err2 / budgets.size() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
