// Reproduces Table VI: average approximation precision of ISHM (gamma^1)
// and ISHM+CGGS (gamma^2) over the budget range, per step size eps:
//   gamma = 1 - (1/|B|) sum_B |approx_B - opt_B| / |opt_B|.
// Ground truth comes from the brute-force solver (Table III).
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "core/brute_force.h"
#include "core/detection.h"
#include "core/ishm.h"
#include "data/syn_a.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budgets", "2,4,6,8,10,12,14,16,18,20", "audit budgets B");
  flags.Define("eps", "0.05,0.10,0.15,0.20,0.25,0.30,0.35,0.40,0.45,0.50",
               "ISHM step sizes");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto instance = data::MakeSynA();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }
  auto compiled = core::Compile(*instance);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }
  const std::vector<int> budgets = flags.GetIntList("budgets");
  const std::vector<double> eps_list = flags.GetDoubleList("eps");

  // Ground truth per budget.
  std::map<int, double> optimal;
  for (int budget : budgets) {
    auto result = core::SolveBruteForce(*instance, budget);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    optimal[budget] = result->objective;
  }

  std::cout << "# Table VI: mean precision over budgets (gamma1 = ISHM, "
               "gamma2 = ISHM+CGGS)\n";
  std::cout << "eps,gamma1,gamma2\n";
  for (double eps : eps_list) {
    double err1 = 0.0, err2 = 0.0;
    for (int budget : budgets) {
      auto detection = core::DetectionModel::Create(*instance, budget);
      if (!detection.ok()) {
        std::cerr << detection.status() << "\n";
        return 1;
      }
      core::IshmOptions options;
      options.step_size = eps;
      auto full = core::SolveIshm(
          *instance, core::MakeFullLpEvaluator(*compiled, *detection), options);
      auto cggs = core::SolveIshm(
          *instance, core::MakeCggsEvaluator(*compiled, *detection), options);
      if (!full.ok() || !cggs.ok()) {
        std::cerr << full.status() << " / " << cggs.status() << "\n";
        return 1;
      }
      const double opt = optimal[budget];
      err1 += std::fabs(full->objective - opt) / std::fabs(opt);
      err2 += std::fabs(cggs->objective - opt) / std::fabs(opt);
    }
    std::cout << eps << "," << 1.0 - err1 / budgets.size() << ","
              << 1.0 - err2 / budgets.size() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
