// Ablation: how the modeling conventions left ambiguous by the paper's text
// change the optimal objective on Syn A (Table III). Sweeps:
//   * detection semantics — E[n/Z] (Eq. 1 literal) vs inclusive-attack
//     n/(Z+1) vs ratio-of-expectations E[n]/E[Z];
//   * budget consumption of earlier types — realized min(b, Z*C) vs
//     reserved b;
//   * treatment of the benign "-" accesses — costly access vs free opt-out.
// The (ratio, realized, optout) cell is the configuration that reproduces
// Table III within ~1% (see docs/DESIGN.md "Calibration notes").
//
// Every cell is an independent brute-force solve; the full grid is fanned
// through solver::SolverEngine in one batch.
#include <iostream>
#include <string>
#include <vector>

#include "data/syn_a.h"
#include "solver/engine.h"
#include "util/flags.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budgets", "2,8,14,20", "budgets to probe");
  flags.Define("threads", "0", "solver engine workers (0 = one per core)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }
  const std::vector<int> budgets = flags.GetIntList("budgets");

  struct SemanticsCase {
    const char* name;
    core::DetectionModel::Semantics value;
  };
  struct ConsumptionCase {
    const char* name;
    core::DetectionModel::Consumption value;
  };
  struct BenignCase {
    const char* name;
    data::SynABenignMode value;
  };
  const SemanticsCase semantics_cases[] = {
      {"ratio", core::DetectionModel::Semantics::kExpectedRatio},
      {"inclusive", core::DetectionModel::Semantics::kInclusiveAttack},
      {"roe", core::DetectionModel::Semantics::kRatioOfExpectations},
  };
  const ConsumptionCase consumption_cases[] = {
      {"realized", core::DetectionModel::Consumption::kRealized},
      {"reserved", core::DetectionModel::Consumption::kReserved},
  };
  const BenignCase benign_cases[] = {
      {"optout", data::SynABenignMode::kFreeOptOut},
      {"cost", data::SynABenignMode::kCostlyAccess},
  };

  // The two benign variants are distinct instances; the requests keep
  // pointers into this list, so build it first.
  std::vector<core::GameInstance> instances;
  for (const auto& benign : benign_cases) {
    data::SynAOptions syn_options;
    syn_options.benign_mode = benign.value;
    auto instance = data::MakeSynAVariant(syn_options);
    if (!instance.ok()) {
      std::cerr << instance.status() << "\n";
      return 1;
    }
    instances.push_back(std::move(*instance));
  }

  std::vector<solver::EngineRequest> requests;
  for (const auto& semantics : semantics_cases) {
    for (const auto& consumption : consumption_cases) {
      for (size_t benign = 0; benign < instances.size(); ++benign) {
        for (int budget : budgets) {
          solver::EngineRequest request;
          request.solver = "brute-force";
          request.instance = &instances[benign];
          request.budget = budget;
          request.detection_options.semantics = semantics.value;
          request.detection_options.consumption = consumption.value;
          requests.push_back(std::move(request));
        }
      }
    }
  }
  solver::SolverEngine engine(flags.GetInt("threads"));
  const auto cells = engine.SolveAll(requests);

  std::cout << "# Ablation: optimal Syn A objective under modeling variants\n";
  std::cout << "semantics,consumption,benign";
  for (int b : budgets) std::cout << ",B" << b;
  std::cout << "\n";
  size_t cell = 0;
  for (const auto& semantics : semantics_cases) {
    for (const auto& consumption : consumption_cases) {
      for (const auto& benign : benign_cases) {
        std::cout << semantics.name << "," << consumption.name << ","
                  << benign.name;
        for (size_t b = 0; b < budgets.size(); ++b) {
          const auto& result = cells[cell++];
          if (!result.ok()) {
            std::cerr << result.status() << "\n";
            return 1;
          }
          std::cout << "," << result->objective;
        }
        std::cout << "\n";
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
