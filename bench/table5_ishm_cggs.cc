// Reproduces Table V: ISHM with CGGS (column generation) as the threshold
// evaluator on Syn A, across budgets B and step sizes eps. Comparing these
// values with Table IV quantifies how much the approximate column
// generation degrades the solution versus the exact LP over all orderings.
#include <iostream>
#include <string>
#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "data/syn_a.h"
#include "solver/registry.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budgets", "2,4,6,8,10,12,14,16,18,20", "audit budgets B");
  flags.Define("eps", "0.05,0.10,0.15,0.20,0.25,0.30,0.35,0.40,0.45,0.50",
               "ISHM step sizes");
  flags.Define("random_probes", "2", "random pricing probes per CGGS round");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto instance = data::MakeSynA();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }
  auto compiled = core::Compile(*instance);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }

  std::cout << "# Table V: ISHM + CGGS on Syn A\n";
  std::cout << "budget,eps,objective,thresholds,evaluations,"
               "distinct_evaluations,improvements,seconds\n";
  for (int budget : flags.GetIntList("budgets")) {
    auto detection = core::DetectionModel::Create(*instance, budget);
    if (!detection.ok()) {
      std::cerr << detection.status() << "\n";
      return 1;
    }
    for (double eps : flags.GetDoubleList("eps")) {
      util::Timer timer;
      solver::SolverOptions options;
      options.ishm.step_size = eps;
      options.cggs.random_probes = flags.GetInt("random_probes");
      auto ishm = solver::Create("ishm-cggs", options);
      if (!ishm.ok()) {
        std::cerr << ishm.status() << "\n";
        return 1;
      }
      solver::SolveRequest request;
      request.instance = &*instance;
      auto result = (*ishm)->Solve(*compiled, *detection, request);
      if (!result.ok()) {
        std::cerr << "B=" << budget << " eps=" << eps << ": "
                  << result.status() << "\n";
        return 1;
      }
      std::vector<int> audits(static_cast<size_t>(instance->num_types()));
      for (int t = 0; t < instance->num_types(); ++t) {
        audits[static_cast<size_t>(t)] = static_cast<int>(
            result->thresholds[static_cast<size_t>(t)] /
            instance->audit_costs[static_cast<size_t>(t)]);
      }
      std::cout << budget << "," << eps << "," << result->objective << ",\""
                << util::FormatIntVector(audits) << "\","
                << result->stats.evaluations << ","
                << result->stats.distinct_evaluations << ","
                << result->stats.improvements << "," << timer.ElapsedSeconds()
                << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
