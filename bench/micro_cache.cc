// Microbenchmark for the serving layer's cold-vs-warm re-solve split.
//
// Scenario: the Syn A instance is solved cold, its alert-count
// distributions drift slightly (the daily refit of a live deployment), and
// the drifted instance is re-solved twice — cold from the full-coverage
// upper bounds, and warm-started from the pre-drift policy (seed
// thresholds + ordering pool, single-type shrink repair). Reports both
// latencies and the speedup, verifies the warm objective stays within
// `--quality_tol` of the cold objective on the same drifted instance, and
// checks the zero-drift path: an AuditService cycle repeated without any
// distribution update must be served from the PolicyCache with a
// bit-for-bit identical policy.
//
// Measured numbers land in BENCH_cache.json so the cold/warm trajectory is
// trackable across commits.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "data/syn_a.h"
#include "prob/count_distribution.h"
#include "service/audit_service.h"
#include "solver/engine.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("budget", "10", "audit budget B");
  flags.Define("eps", "0.1", "ISHM step size");
  flags.Define("drift", "0.02", "pmf jitter amplitude for the drifted cycle");
  flags.Define("reps", "3", "timing repetitions per variant (median-free avg)");
  flags.Define("seed", "11", "jitter RNG seed");
  flags.Define("quality_tol", "0.05",
               "max |warm - cold| objective gap on the drifted instance");
  flags.Define("min_speedup", "0",
               "fail unless warm is at least this many times faster than a "
               "cold solve of the drifted instance (0 = report only)");
  flags.Define("json", "BENCH_cache.json",
               "machine-readable report path (empty = none)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto baseline = data::MakeSynA();
  if (!baseline.ok()) {
    std::cerr << baseline.status() << "\n";
    return 1;
  }
  const double budget = flags.GetDouble("budget");
  const int reps = std::max(1, flags.GetInt("reps"));

  auto make_request = [&](const core::GameInstance& instance) {
    solver::EngineRequest request;
    request.solver = "ishm-cggs";
    request.instance = &instance;
    request.budget = budget;
    request.options.ishm.step_size = flags.GetDouble("eps");
    return request;
  };

  // Cold solve of the baseline: the pre-drift policy every later variant
  // seeds from.
  const solver::EngineRequest base_request = make_request(*baseline);
  auto pre_drift = solver::SolverEngine::SolveOne(base_request);
  if (!pre_drift.ok()) {
    std::cerr << pre_drift.status() << "\n";
    return 1;
  }

  // Drift the alert-count distributions.
  core::GameInstance drifted = *baseline;
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  for (auto& dist : drifted.alert_distributions) {
    auto jittered = prob::JitterPmf(dist, flags.GetDouble("drift"), rng);
    if (!jittered.ok()) {
      std::cerr << jittered.status() << "\n";
      return 1;
    }
    dist = std::move(*jittered);
  }

  // Variant A: cold re-solve of the drifted instance.
  const solver::EngineRequest cold_request = make_request(drifted);
  double cold_seconds = 0.0;
  util::StatusOr<solver::SolveResult> cold = util::InternalError("never ran");
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    cold = solver::SolverEngine::SolveOne(cold_request);
    cold_seconds += timer.ElapsedSeconds();
    if (!cold.ok()) {
      std::cerr << cold.status() << "\n";
      return 1;
    }
  }
  cold_seconds /= reps;

  // Variant B: warm-started re-solve seeded from the pre-drift policy.
  solver::EngineRequest warm_request = make_request(drifted);
  warm_request.options.ishm.max_subset_size = 1;
  warm_request.warm_start.thresholds = pre_drift->thresholds;
  warm_request.warm_start.orderings = pre_drift->policy.orderings;
  double warm_seconds = 0.0;
  util::StatusOr<solver::SolveResult> warm = util::InternalError("never ran");
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    warm = solver::SolverEngine::SolveOne(warm_request);
    warm_seconds += timer.ElapsedSeconds();
    if (!warm.ok()) {
      std::cerr << warm.status() << "\n";
      return 1;
    }
  }
  warm_seconds /= reps;

  const double speedup = warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  const double quality_gap = std::fabs(warm->objective - cold->objective);

  // Zero-drift identity: the second cycle of an unchanged service must be a
  // cache hit carrying the identical policy.
  service::AuditServiceOptions service_options;
  service_options.budgets = {budget};
  service_options.solver_options.ishm.step_size = flags.GetDouble("eps");
  service::AuditService service(*baseline, service_options);
  auto first = service.RunCycle();
  auto second = service.RunCycle();
  bool identity_ok = first.ok() && second.ok();
  if (identity_ok) {
    const auto& a = first->policies[0];
    const auto& b = second->policies[0];
    identity_ok =
        a.source == service::AuditService::Source::kColdSolve &&
        b.source == service::AuditService::Source::kCache &&
        a.result.objective == b.result.objective &&
        a.result.thresholds == b.result.thresholds &&
        a.result.policy.orderings == b.result.policy.orderings &&
        a.result.policy.probabilities == b.result.policy.probabilities;
  }

  std::cout << "# cold vs warm re-solve after drift, ishm-cggs on Syn A\n";
  std::cout << "budget,eps,drift,cold_seconds,warm_seconds,speedup,"
               "cold_objective,warm_objective,quality_gap,"
               "cold_evaluations,warm_evaluations,zero_drift_identity\n";
  std::cout << budget << "," << flags.GetDouble("eps") << ","
            << flags.GetDouble("drift") << "," << cold_seconds << ","
            << warm_seconds << "," << speedup << "," << cold->objective << ","
            << warm->objective << "," << quality_gap << ","
            << cold->stats.evaluations << "," << warm->stats.evaluations << ","
            << (identity_ok ? "ok" : "FAIL") << "\n";

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    util::JsonValue::Object report;
    report["bench"] = "micro_cache";
    report["budget"] = budget;
    report["drift"] = flags.GetDouble("drift");
    report["cold_seconds"] = cold_seconds;
    report["warm_seconds"] = warm_seconds;
    report["speedup"] = speedup;
    report["cold_objective"] = cold->objective;
    report["warm_objective"] = warm->objective;
    report["quality_gap"] = quality_gap;
    report["zero_drift_identity"] = identity_ok;
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << util::JsonValue(std::move(report)).Dump(2) << "\n";
  }

  if (!identity_ok) {
    std::cerr << "zero-drift cycle was not served as an identical cache hit\n";
    return 1;
  }
  if (quality_gap > flags.GetDouble("quality_tol")) {
    std::cerr << "warm-started objective drifted " << quality_gap
              << " from the cold objective (tol "
              << flags.GetDouble("quality_tol") << ")\n";
    return 1;
  }
  const double min_speedup = flags.GetDouble("min_speedup");
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "warm speedup " << speedup << " below required "
              << min_speedup << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
