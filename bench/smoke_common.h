#ifndef AUDIT_GAME_BENCH_SMOKE_COMMON_H_
#define AUDIT_GAME_BENCH_SMOKE_COMMON_H_

// Shared scaffolding for the Google-Benchmark micro benches that also
// expose a --smoke_json=PATH mode: a quick self-contained comparison run
// that writes a BENCH_*.json report (the form CI runs and archives per
// PR). Keeping the dispatch and the report writer here means the smoke
// contract evolves in one place.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "bench/exit_codes.h"
#include "util/json.h"

namespace auditgame::bench {

/// Writes `report` (pretty-printed) to `path`. Returns kSmokeExitOk on
/// success, kSmokeExitIoError on an unwritable path.
inline int WriteSmokeReport(const std::string& path,
                            util::JsonValue::Object report) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return kSmokeExitIoError;
  }
  out << util::JsonValue(std::move(report)).Dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());
  return kSmokeExitOk;
}

/// main() body for a smoke-capable bench: dispatches --smoke_json=PATH to
/// `run_smoke(PATH)` and everything else to Google Benchmark.
template <typename RunSmoke>
int SmokeOrBenchmarkMain(int argc, char** argv, RunSmoke run_smoke) {
  const std::string smoke_prefix = "--smoke_json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(smoke_prefix, 0) == 0) {
      return run_smoke(arg.substr(smoke_prefix.size()));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace auditgame::bench

#endif  // AUDIT_GAME_BENCH_SMOKE_COMMON_H_
