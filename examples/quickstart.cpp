// Quickstart: build a small alert-prioritization game from scratch, solve
// it with CGGS + ISHM, and print the resulting randomized audit policy.
//
// Scenario: a small clinic's TDMT raises three alert types with different
// daily volumes and severities; the privacy office can afford B = 6 audits
// per day. Which alerts should be checked first, and how many of each?
#include <iostream>

#include "core/detection.h"
#include "core/game.h"
#include "core/policy.h"
#include "prob/count_distribution.h"
#include "solver/registry.h"
#include "util/string_util.h"

using namespace auditgame;  // NOLINT

namespace {

core::GameInstance BuildClinicGame() {
  core::GameInstance game;
  game.type_names = {"vip-record", "coworker", "neighbor"};
  // Auditing a VIP access takes twice as long as the others.
  game.audit_costs = {2.0, 1.0, 1.0};
  // Daily benign alert volumes (learned from historical logs in practice;
  // see the emr_audit example for that pipeline).
  game.alert_distributions = {
      *prob::CountDistribution::DiscretizedGaussianWithCoverage(4, 1.5),
      *prob::CountDistribution::DiscretizedGaussianWithCoverage(9, 3.0),
      *prob::CountDistribution::DiscretizedGaussianWithCoverage(6, 2.0),
  };
  // Two kinds of insiders. Each may snoop on a victim whose access raises
  // one of the alert types, or behave (opt out, utility 0).
  auto victim = [](int type, double benefit) {
    core::VictimProfile v;
    v.type_probs = {0, 0, 0};
    v.type_probs[static_cast<size_t>(type)] = 1.0;
    v.benefit = benefit;
    v.penalty = 10.0;     // fired if caught
    v.attack_cost = 0.5;  // effort to snoop
    return v;
  };
  core::Adversary nurse;
  nurse.attack_probability = 1.0;
  nurse.can_opt_out = true;
  nurse.victims = {victim(0, 8.0), victim(1, 3.0), victim(2, 4.0)};
  core::Adversary clerk;
  clerk.attack_probability = 0.6;
  clerk.can_opt_out = true;
  clerk.victims = {victim(1, 5.0), victim(2, 2.0)};
  game.adversaries = {nurse, clerk};
  return game;
}

}  // namespace

int main() {
  const core::GameInstance game = BuildClinicGame();
  const double budget = 6.0;

  auto compiled = core::Compile(game);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }
  auto detection = core::DetectionModel::Create(game, budget);
  if (!detection.ok()) {
    std::cerr << detection.status() << "\n";
    return 1;
  }

  // The "ishm-cggs" backend: ISHM searches the per-type budget thresholds,
  // CGGS finds the optimal randomized ordering for each candidate vector.
  // Swap the name for "brute-force" (exact, small games only) or
  // "ishm-full" without touching the rest of this program.
  solver::SolverOptions solver_options;
  solver_options.ishm.step_size = 0.1;
  auto ishm = solver::Create("ishm-cggs", solver_options);
  if (!ishm.ok()) {
    std::cerr << ishm.status() << "\n";
    return 1;
  }
  solver::SolveRequest request;
  request.instance = &game;
  auto result = (*ishm)->Solve(*compiled, *detection, request);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  std::cout << "=== Clinic audit policy (budget " << budget << ") ===\n";
  std::cout << "Expected auditor loss: " << result->objective << "\n";
  std::cout << "Per-type audit thresholds (budget units):\n";
  for (int t = 0; t < game.num_types(); ++t) {
    std::cout << "  " << game.type_names[static_cast<size_t>(t)] << ": "
              << result->thresholds[static_cast<size_t>(t)] << "\n";
  }
  std::cout << "Randomized inspection order (draw one each day):\n";
  for (size_t o = 0; o < result->policy.orderings.size(); ++o) {
    std::cout << "  with p = " << result->policy.probabilities[o] << ": ";
    for (int t : result->policy.orderings[o]) {
      std::cout << game.type_names[static_cast<size_t>(t)] << " ";
    }
    std::cout << "\n";
  }

  // How likely is each alert type to be audited under the mixture?
  auto mixed = core::MixedDetectionProbabilities(*detection, result->policy);
  if (mixed.ok()) {
    std::cout << "Detection probability per alert type:\n";
    for (int t = 0; t < game.num_types(); ++t) {
      std::cout << "  " << game.type_names[static_cast<size_t>(t)] << ": "
                << (*mixed)[static_cast<size_t>(t)] << "\n";
    }
  }
  return 0;
}
