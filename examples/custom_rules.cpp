// Custom rules: shows how a downstream user plugs their OWN alert taxonomy
// into the library — define predicates over access events, register them in
// a RuleEngine, classify a stream of events, learn alert volumes, and solve
// for an audit policy. The domain here is a SaaS database with three
// home-grown alert types (off-hours access, bulk export, cross-tenant
// read).
#include <iostream>

#include "audit/event.h"
#include "audit/log.h"
#include "audit/rules.h"
#include "core/detection.h"
#include "core/game.h"
#include "solver/registry.h"
#include "util/random.h"

using namespace auditgame;  // NOLINT

namespace {

audit::RuleEngine BuildSaasRules() {
  audit::RuleEngine engine;
  // Cross-tenant read: subject's tenant differs from the object's tenant.
  auto cross_tenant = audit::Not(
      audit::StringAttrsMatch("subject_tenant", "object_tenant"));
  // Bulk export: more than 5000 rows touched.
  auto bulk = audit::NumericAttrGreater("rows", 5000);
  // Off-hours: hour outside 8..18.
  auto off_hours = audit::Or(audit::NumericAttrLess("hour", 8),
                             audit::NumericAttrGreater("hour", 18));
  // Most severe first; each event maps to at most one type.
  (void)engine.AddRule({"cross_tenant", 2, 1.0, cross_tenant});
  (void)engine.AddRule({"bulk_export", 1, 1.0, bulk});
  // Off-hours access is noisy: only 60% of matches raise an alert.
  (void)engine.AddRule({"off_hours", 0, 0.6, off_hours});
  return engine;
}

audit::AccessEvent RandomEvent(util::Rng& rng) {
  audit::AccessEvent event;
  event.subject_id = "user" + std::to_string(rng.UniformInt(40));
  event.object_id = "table" + std::to_string(rng.UniformInt(12));
  event.string_attrs["subject_tenant"] =
      "T" + std::to_string(rng.UniformInt(6));
  event.string_attrs["object_tenant"] =
      rng.Uniform() < 0.97 ? event.string_attrs["subject_tenant"]
                           : "T" + std::to_string(rng.UniformInt(6));
  event.numeric_attrs["rows"] = rng.Uniform() < 0.05
                                    ? rng.Uniform(5000, 50000)
                                    : rng.Uniform(1, 2000);
  event.numeric_attrs["hour"] = static_cast<double>(rng.UniformInt(24));
  return event;
}

}  // namespace

int main() {
  const audit::RuleEngine rules = BuildSaasRules();
  util::Rng rng(4242);

  // Classify 30 days of events into an alert log.
  audit::AlertLog log(3);
  for (int day = 0; day < 30; ++day) {
    log.StartPeriod();
    for (int e = 0; e < 600; ++e) {
      const auto type = rules.Trigger(RandomEvent(rng), rng);
      if (type.has_value()) (void)log.Record(*type);
    }
  }
  std::cout << "=== Learned alert volumes (30 days, 600 events/day) ===\n";
  core::GameInstance game;
  game.type_names = {"off_hours", "bulk_export", "cross_tenant"};
  game.audit_costs = {1.0, 3.0, 2.0};  // bulk exports take longest to vet
  for (int t = 0; t < 3; ++t) {
    auto dist = log.LearnGaussianFit(t);
    if (!dist.ok()) {
      auto fallback = log.LearnDistribution(t);
      if (!fallback.ok()) {
        std::cerr << fallback.status() << "\n";
        return 1;
      }
      dist = fallback;
    }
    std::cout << "  " << game.type_names[static_cast<size_t>(t)] << ": mean "
              << dist->Mean() << ", support [" << dist->min_value() << ", "
              << dist->max_value() << "]\n";
    game.alert_distributions.push_back(*std::move(dist));
  }

  // One class of malicious insiders who may trigger any of the types.
  auto victim = [](int type, double benefit) {
    core::VictimProfile v;
    v.type_probs = {0, 0, 0};
    v.type_probs[static_cast<size_t>(type)] = 1.0;
    v.benefit = benefit;
    v.penalty = 25.0;
    v.attack_cost = 1.0;
    return v;
  };
  core::Adversary insider;
  insider.attack_probability = 1.0;
  insider.can_opt_out = true;
  insider.victims = {victim(0, 6.0), victim(1, 30.0), victim(2, 18.0)};
  game.adversaries.assign(10, insider);

  const double budget = 40.0;
  auto compiled = core::Compile(game);
  auto detection = core::DetectionModel::Create(game, budget);
  if (!compiled.ok() || !detection.ok()) {
    std::cerr << compiled.status() << " / " << detection.status() << "\n";
    return 1;
  }
  solver::SolverOptions solver_options;
  solver_options.ishm.step_size = 0.1;
  auto ishm = solver::Create("ishm-cggs", solver_options);
  if (!ishm.ok()) {
    std::cerr << ishm.status() << "\n";
    return 1;
  }
  solver::SolveRequest request;
  request.instance = &game;
  auto result = (*ishm)->Solve(*compiled, *detection, request);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  std::cout << "\n=== Audit policy for budget " << budget << " ===\n";
  std::cout << "Expected loss: " << result->objective << "\n";
  for (int t = 0; t < 3; ++t) {
    std::cout << "  " << game.type_names[static_cast<size_t>(t)]
              << ": up to "
              << static_cast<int>(
                     result->thresholds[static_cast<size_t>(t)] /
                     game.audit_costs[static_cast<size_t>(t)])
              << " audits/day\n";
  }
  std::cout << "Ordering mixture has " << result->policy.orderings.size()
            << " pure orderings.\n";
  return 0;
}
