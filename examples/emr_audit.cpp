// EMR auditing end to end — the workload the paper's introduction
// motivates. This example runs the complete operational pipeline:
//
//   1. Generate a hospital population and 28 days of access events.
//   2. Classify every access with the Table VIII rule engine and
//      accumulate an alert log.
//   3. LEARN the per-type alert-volume distributions F_t from that log
//      (the paper's "obtained from historical alert logs").
//   4. Solve the Stackelberg game (ISHM + CGGS) for a daily audit policy.
//   5. Replay 2000 simulated audit days with strategic insiders
//      best-responding to the policy and report the empirical detection
//      rate against the analytic prediction.
#include <iostream>

#include "audit/executor.h"
#include "core/detection.h"
#include "core/policy.h"
#include "data/emr.h"
#include "solver/registry.h"
#include "util/random.h"

using namespace auditgame;  // NOLINT

int main() {
  data::EmrConfig config;
  config.num_employees = 25;
  config.num_patients = 25;

  // --- 1-2: population, access stream, alert log ------------------------
  auto world = data::GenerateEmrWorld(config);
  if (!world.ok()) {
    std::cerr << world.status() << "\n";
    return 1;
  }
  auto log = data::SimulateAccessLog(*world, /*days=*/28,
                                     /*accesses_per_employee_per_day=*/40,
                                     config.seed);
  if (!log.ok()) {
    std::cerr << log.status() << "\n";
    return 1;
  }
  std::cout << "=== 28 days of EMR alerts (learned from simulated logs) ===\n";
  for (int t = 0; t < data::kEmrNumTypes; ++t) {
    auto counts = log->PeriodCounts(t);
    double mean = 0;
    for (int c : *counts) mean += c;
    mean /= counts->size();
    std::cout << "  type " << t + 1 << ": mean " << mean << " alerts/day\n";
  }

  // --- 3: game with learned distributions --------------------------------
  auto game = data::MakeEmrGameFromLogs(config, 28, 40);
  if (!game.ok()) {
    std::cerr << game.status() << "\n";
    return 1;
  }

  // --- 4: solve for the audit policy --------------------------------------
  const double budget = 30.0;
  auto compiled = core::Compile(*game);
  auto detection = core::DetectionModel::Create(*game, budget);
  if (!compiled.ok() || !detection.ok()) {
    std::cerr << compiled.status() << " / " << detection.status() << "\n";
    return 1;
  }
  solver::SolverOptions solver_options;
  solver_options.ishm.step_size = 0.2;
  auto ishm = solver::Create("ishm-cggs", solver_options);
  if (!ishm.ok()) {
    std::cerr << ishm.status() << "\n";
    return 1;
  }
  solver::SolveRequest request;
  request.instance = &*game;
  auto policy = (*ishm)->Solve(*compiled, *detection, request);
  if (!policy.ok()) {
    std::cerr << policy.status() << "\n";
    return 1;
  }
  std::cout << "\n=== Daily audit policy (budget " << budget << ") ===\n"
            << "Expected auditor loss: " << policy->objective << "\n"
            << "Support size: " << policy->policy.orderings.size()
            << " orderings\n";

  // --- 5: adversarial replay ----------------------------------------------
  // Each strategic insider picks the victim class maximizing expected
  // utility; days are replayed with the attack alert injected.
  auto eval = core::EvaluatePolicy(*compiled, *detection, policy->policy);
  auto mixed = core::MixedDetectionProbabilities(*detection, policy->policy);
  if (!eval.ok() || !mixed.ok()) {
    std::cerr << eval.status() << " / " << mixed.status() << "\n";
    return 1;
  }
  // Find an undeterred group (if all are deterred, report and exit).
  int attack_type = -1;
  for (size_t g = 0; g < compiled->groups.size(); ++g) {
    const int victim_index = eval->best_response_victim[g];
    if (victim_index < 0) continue;
    const auto& victim =
        compiled->groups[g].victims[static_cast<size_t>(victim_index)];
    for (int t = 0; t < game->num_types(); ++t) {
      if (victim.type_probs[static_cast<size_t>(t)] > 0) attack_type = t;
    }
    if (attack_type >= 0) break;
  }
  if (attack_type < 0) {
    std::cout << "All insiders are deterred at this budget — nothing to "
                 "replay.\n";
    return 0;
  }

  util::Rng rng(777);
  const int days = 2000;
  int detected = 0;
  for (int day = 0; day < days; ++day) {
    // Draw an ordering from the mixture, then realize the day.
    const size_t o = rng.Categorical(policy->policy.probabilities);
    audit::AuditConfiguration audit_config;
    audit_config.ordering = policy->policy.orderings[o];
    audit_config.thresholds = policy->policy.thresholds;
    audit_config.audit_costs = game->audit_costs;
    audit_config.budget = budget;
    const std::vector<int> benign =
        prob::SampleJoint(game->alert_distributions, rng);
    auto outcome = audit::SimulateDay(audit_config, benign, attack_type, rng);
    if (outcome.ok() && outcome->attack_detected) ++detected;
  }
  std::cout << "\n=== Adversarial replay (" << days << " days) ===\n"
            << "Best-response attack raises alert type " << attack_type + 1
            << "\n"
            << "Analytic detection probability: "
            << (*mixed)[static_cast<size_t>(attack_type)] << "\n"
            << "Empirical detection rate:        "
            << static_cast<double>(detected) / days << "\n";
  return 0;
}
