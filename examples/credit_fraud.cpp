// Credit-card fraud auditing — the paper's second motivating workload.
// A bank screens 100 applications against the Table IX alert rules and must
// decide which fraud alerts to investigate retrospectively under a budget.
// The example sweeps the budget and prints the deterrence frontier: the
// loss of the bank, which types the optimal policy prioritizes, and the
// budget at which strategic applicants are fully deterred.
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/baselines.h"
#include "core/detection.h"
#include "data/credit.h"
#include "solver/engine.h"

using namespace auditgame;  // NOLINT

int main() {
  auto game = data::MakeCreditGame();
  if (!game.ok()) {
    std::cerr << game.status() << "\n";
    return 1;
  }
  auto compiled = core::Compile(*game);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }

  std::cout << "=== Applicant pool ===\n";
  std::cout << compiled->groups.size()
            << " distinct applicant risk classes (from "
            << game->adversaries.size() << " applicants)\n\n";

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "budget | bank loss | greedy-baseline loss | thresholds "
               "(audits per type)\n";

  // Each budget is an independent game-theoretic solve; fan the whole
  // frontier across the cores in one SolverEngine batch.
  std::vector<int> budgets;
  for (int budget = 25; budget <= 250; budget += 25) budgets.push_back(budget);
  std::vector<solver::EngineRequest> requests;
  for (int budget : budgets) {
    solver::EngineRequest request;
    request.solver = "ishm-cggs";
    request.instance = &*game;
    request.budget = budget;
    request.options.ishm.step_size = 0.2;
    requests.push_back(std::move(request));
  }
  solver::SolverEngine engine;
  const auto results = engine.SolveAll(requests);

  double deterrence_budget = -1;
  for (size_t b = 0; b < budgets.size(); ++b) {
    const int budget = budgets[b];
    const auto& result = results[b];
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    auto detection = core::DetectionModel::Create(*game, budget);
    if (!detection.ok()) {
      std::cerr << detection.status() << "\n";
      return 1;
    }
    auto greedy = core::GreedyByBenefitBaseline(*compiled, *detection);
    if (!greedy.ok()) {
      std::cerr << greedy.status() << "\n";
      return 1;
    }
    std::cout << std::setw(6) << budget << " | " << std::setw(9)
              << result->objective << " | " << std::setw(20)
              << greedy->auditor_loss << " | [";
    for (int t = 0; t < game->num_types(); ++t) {
      if (t > 0) std::cout << ", ";
      std::cout << static_cast<int>(
          result->thresholds[static_cast<size_t>(t)]);
    }
    std::cout << "]\n";
    if (deterrence_budget < 0 && result->objective <= 1e-9) {
      deterrence_budget = budget;
    }
  }
  if (deterrence_budget > 0) {
    std::cout << "\nFull deterrence reached at budget " << deterrence_budget
              << ": every strategic applicant prefers not to commit fraud.\n";
  } else {
    std::cout << "\nNo budget in the sweep fully deters all applicants.\n";
  }
  return 0;
}
